//! The §5.1 system-impact model (Figure 7).
//!
//! The paper logged the Caltech distributed controller with `top` every
//! 10–11 seconds for a week (57,149 samples) and found: mean CPU 0.02 %
//! per CPU with 99.7 % of samples under 2 %; mean memory 35 MB — the
//! 18 MB daemon plus one ~17 MB fork — with 97.6 % of samples under
//! 107 MB, and a single incident where "an unknown bug caused the
//! memory usage to jump to 1 GB … because of a large number of forks
//! in the controller".
//!
//! We cannot run a 2004 Perl daemon under `top`, so this module is the
//! documented substitution: a process-accounting model whose parameters
//! come straight from those observations (18 MB + 17 MB/fork, an
//! optional fork-storm incident) driven by the *real* process table the
//! simulated daemon produced. The sampling pipeline — 10–11 s cadence,
//! horizontal histograms — is identical to the paper's methodology.

use inca_report::Timestamp;

use crate::exec::ProcessTable;

/// One `top`-style sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImpactSample {
    /// Sample time.
    pub t: Timestamp,
    /// CPU utilization, percent of one CPU.
    pub cpu_pct: f64,
    /// Resident memory in MB (daemon + live forks).
    pub mem_mb: f64,
}

/// The impact model parameters.
#[derive(Debug, Clone, Copy)]
pub struct ImpactModel {
    /// Daemon base RSS (paper: 18 MB).
    pub daemon_mb: f64,
    /// RSS per live forked reporter (paper: ~17 MB).
    pub per_fork_mb: f64,
    /// Optional fork-storm incident: `(start, duration_secs)` during
    /// which memory ramps toward [`ImpactModel::storm_peak_mb`].
    pub storm: Option<(Timestamp, u64)>,
    /// Peak memory during the storm (paper: 1 GB).
    pub storm_peak_mb: f64,
    /// Noise seed.
    pub seed: u64,
}

impl ImpactModel {
    /// The paper-parameterized model without a storm.
    pub fn paper_defaults(seed: u64) -> ImpactModel {
        ImpactModel {
            daemon_mb: 18.0,
            per_fork_mb: 17.0,
            storm: None,
            storm_peak_mb: 1_024.0,
            seed,
        }
    }

    /// Adds the §5.1 fork-storm incident.
    pub fn with_storm(mut self, start: Timestamp, duration_secs: u64) -> ImpactModel {
        self.storm = Some((start, duration_secs));
        self
    }

    /// Samples the controller every 10–11 s over `[start, end)`,
    /// exactly as the paper's `top` logging did.
    ///
    /// Liveness is computed with sorted start/end lists so a week of
    /// ~57k samples over tens of thousands of forks stays fast.
    pub fn sample_week(
        &self,
        table: &ProcessTable,
        start: Timestamp,
        end: Timestamp,
    ) -> Vec<ImpactSample> {
        let mut starts: Vec<u64> = table.records().iter().map(|r| r.start.as_secs()).collect();
        let mut ends: Vec<u64> = table.records().iter().map(|r| r.end.as_secs()).collect();
        starts.sort_unstable();
        ends.sort_unstable();
        let mut samples = Vec::new();
        let mut t = start;
        let mut i = 0u64;
        while t < end {
            let secs = t.as_secs();
            // live = processes started at or before t and not yet ended.
            let started = starts.partition_point(|&s| s <= secs);
            let ended = ends.partition_point(|&e| e <= secs);
            let live = started - ended;
            // forks within the last 11 s: starts in (secs-11, secs].
            let recent = started - starts.partition_point(|&s| s + 11 <= secs);
            samples.push(self.sample_at(t, i, live, recent));
            // Alternate 10 and 11 second gaps (mean 10.5 s).
            t = t + if i % 2 == 0 { 10 } else { 11 };
            i += 1;
        }
        samples
    }

    /// One sample at `t` given the live/recent-fork counts.
    fn sample_at(&self, t: Timestamp, i: u64, live: usize, recent_forks: usize) -> ImpactSample {
        let live = live as f64;
        let recent_forks = recent_forks as f64;
        let u1 = self.unit(t, i, 1);
        let u2 = self.unit(t, i, 2);
        let u3 = self.unit(t, i, 3);

        // CPU: an idle daemon, small cost per live (mostly I/O-bound)
        // reporter, a blip when forking, and a rare heavy sample (a
        // compute-bound unit test caught mid-burn).
        let mut cpu = 0.004 + live * 0.01 * u1 + recent_forks * 0.02 * u2;
        if u3 < 0.001 {
            cpu += 2.0 + u1 * 23.0; // rare 2–25% spike
        }

        // Memory: daemon + live forks, plus the storm ramp if active.
        let mut mem = self.daemon_mb + live * self.per_fork_mb;
        if let Some((storm_start, dur)) = self.storm {
            if t >= storm_start && t < storm_start + dur {
                let progress = (t - storm_start) as f64 / dur as f64;
                // Ramp up over the first 80% of the incident, then a
                // sharp recovery when the daemon was restarted.
                let ramp = (progress / 0.8).min(1.0);
                mem += ramp * (self.storm_peak_mb - mem).max(0.0);
            }
        }
        ImpactSample { t, cpu_pct: cpu, mem_mb: mem }
    }

    fn unit(&self, t: Timestamp, i: u64, salt: u64) -> f64 {
        let mut h = self.seed ^ t.as_secs() ^ i.rotate_left(17) ^ salt.wrapping_mul(0x9E37_79B9);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Bucket counts of `values` over `edges` (the horizontal-histogram
/// rendering of Figures 7 and 8). Returns `(lo, hi, count)` with the
/// final bucket open-ended.
pub fn histogram(values: impl Iterator<Item = f64>, edges: &[f64]) -> Vec<(f64, f64, usize)> {
    let mut buckets: Vec<(f64, f64, usize)> = edges
        .windows(2)
        .map(|w| (w[0], w[1], 0))
        .chain(std::iter::once((
            *edges.last().expect("at least one edge"),
            f64::INFINITY,
            0,
        )))
        .collect();
    for v in values {
        for bucket in buckets.iter_mut() {
            if v >= bucket.0 && v < bucket.1 {
                bucket.2 += 1;
                break;
            }
        }
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecRecord;

    fn week() -> (Timestamp, Timestamp) {
        let start = Timestamp::from_gmt(2004, 6, 29, 0, 0, 0);
        (start, start + 7 * 86_400)
    }

    /// A synthetic week of 128 hourly reporters like Caltech's.
    fn caltech_like_table(start: Timestamp, end: Timestamp) -> ProcessTable {
        let mut table = ProcessTable::new();
        let model = crate::exec::DurationModel::new(11);
        let mut t = start;
        while t < end {
            for r in 0..128u64 {
                // Spread starts across the hour like the random-offset
                // scheduler does.
                let offset = (r * 28 + 13) % 3_600;
                let begin = t + offset;
                let name = if r % 40 == 0 { "benchmark.grasp.flops" } else { "version.pkg" };
                let dur = model.duration_secs(name, begin).min(600);
                table.record(ExecRecord { start: begin, end: begin + dur, killed: false });
            }
            t = t + 3_600;
        }
        table
    }

    #[test]
    fn sample_count_matches_paper_order() {
        let (start, end) = week();
        let table = ProcessTable::new();
        let samples = ImpactModel::paper_defaults(1).sample_week(&table, start, end);
        // 7 days at a 10.5 s cadence ≈ 57.6k samples (paper: 57,149).
        assert!((56_000..59_000).contains(&samples.len()), "{}", samples.len());
    }

    #[test]
    fn idle_daemon_is_18_mb() {
        let (start, _) = week();
        let table = ProcessTable::new();
        let model = ImpactModel::paper_defaults(1);
        let s = model.sample_week(&table, start, start + 100);
        assert!(s.iter().all(|x| x.mem_mb == 18.0));
        assert!(s.iter().all(|x| x.cpu_pct < 2.0 || x.cpu_pct < 30.0));
    }

    #[test]
    fn memory_statistics_match_figure7b() {
        let (start, end) = week();
        let table = caltech_like_table(start, end);
        let model = ImpactModel::paper_defaults(42)
            .with_storm(start + 3 * 86_400 + 7 * 3_600, 4 * 3_600);
        let samples = model.sample_week(&table, start, end);
        let n = samples.len() as f64;
        let mean_mem = samples.iter().map(|s| s.mem_mb).sum::<f64>() / n;
        // Paper: mean 35 MB (daemon + ~1 fork).
        assert!((25.0..60.0).contains(&mean_mem), "mean mem {mean_mem}");
        let under_107 = samples.iter().filter(|s| s.mem_mb < 107.0).count() as f64 / n;
        // Paper: 97.6% under 107 MB.
        assert!((0.93..0.995).contains(&under_107), "under-107 fraction {under_107}");
        let peak = samples.iter().map(|s| s.mem_mb).fold(0.0, f64::max);
        assert!(peak > 900.0, "storm must reach ~1 GB, peaked at {peak}");
    }

    #[test]
    fn cpu_statistics_match_figure7a() {
        let (start, end) = week();
        let table = caltech_like_table(start, end);
        let model = ImpactModel::paper_defaults(42);
        let samples = model.sample_week(&table, start, end);
        let n = samples.len() as f64;
        let mean_cpu = samples.iter().map(|s| s.cpu_pct).sum::<f64>() / n;
        // Paper: mean 0.02% per CPU. Same order of magnitude required.
        assert!(mean_cpu < 0.2, "mean cpu {mean_cpu}");
        let under_2 = samples.iter().filter(|s| s.cpu_pct < 2.0).count() as f64 / n;
        // Paper: 99.7% under 2%.
        assert!(under_2 > 0.99, "under-2% fraction {under_2}");
        // But spikes exist.
        assert!(samples.iter().any(|s| s.cpu_pct > 2.0));
    }

    #[test]
    fn histogram_buckets() {
        let values = [0.5, 1.5, 2.5, 10.0, 100.0];
        let h = histogram(values.iter().copied(), &[0.0, 1.0, 2.0, 4.0]);
        assert_eq!(h.len(), 4);
        assert_eq!(h[0], (0.0, 1.0, 1));
        assert_eq!(h[1], (1.0, 2.0, 1));
        assert_eq!(h[2], (2.0, 4.0, 1));
        assert_eq!(h[3].2, 2); // open-ended tail
    }

    #[test]
    fn samples_are_deterministic() {
        let (start, _) = week();
        let table = ProcessTable::new();
        let a = ImpactModel::paper_defaults(5).sample_week(&table, start, start + 1_000);
        let b = ImpactModel::paper_defaults(5).sample_week(&table, start, start + 1_000);
        assert_eq!(a, b);
    }
}
