//! The distributed controller daemon.
//!
//! Drives the full §3.1.3 behaviour: wake on cron fire, fork a process
//! per due reporter, kill processes that exceed their expected run
//! time (submitting the special error report), forward completed
//! reports with their branch identifiers, and keep the process table
//! that the §5.1 impact model samples.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;

use inca_obs::metrics::{Counter, Gauge};
use inca_obs::{Obs, Severity, TraceContext};
use inca_report::{Header, Report, Timestamp};
use inca_reporters::catalog::CatalogEntry;
use inca_reporters::{Reporter, ReporterContext};
use inca_sim::Vo;
use inca_wire::message::{ClientMessage, ServerResponse};

use crate::exec::{DurationModel, ExecRecord, ProcessTable};
use crate::forwarder::Transport;
use crate::scheduler::Scheduler;
use crate::spec::Spec;
use crate::spool::{Spool, SpoolConfig, SpoolEntry};

/// Counters the daemon keeps over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Reporter processes forked.
    pub executed: u64,
    /// Runs that completed with a successful report.
    pub succeeded: u64,
    /// Runs that completed with a failed report.
    pub failed: u64,
    /// Runs killed for exceeding expected runtime.
    pub killed: u64,
    /// Runs skipped because a dependency's last run failed.
    pub skipped_dependency: u64,
    /// Submissions the server rejected *permanently*. Transient
    /// transport failures are no longer counted here: the spool
    /// retries them (see `inca_daemon_retries_total`) until the server
    /// answers one way or the other.
    pub forward_errors: u64,
    /// Fires swallowed because the daemon's own host was down (only
    /// when offline-when-down modelling is enabled).
    pub offline_skips: u64,
}

/// The per-resource client daemon.
pub struct DistributedController {
    spec: Spec,
    scheduler: Scheduler,
    registry: BTreeMap<String, Box<dyn Reporter>>,
    transport: Box<dyn Transport>,
    duration_model: DurationModel,
    processes: ProcessTable,
    stats: RunStats,
    /// Pending fires as `(time, entry)` — the daemon's wake-up queue.
    /// Lazily primed; kept in sync by `run_next_batch`.
    pending: BinaryHeap<Reverse<(u64, usize)>>,
    primed_after: Option<Timestamp>,
    obs: Obs,
    /// Killed runs (`inca_daemon_kills_total`) — the §3.1.3 timeout
    /// path.
    kills: Arc<Counter>,
    /// Entries dropped from the wake-up queue because no next cron
    /// fire could be computed (`inca_daemon_missed_schedules_total`).
    missed: Arc<Counter>,
    /// Dependency-gated skips (`inca_daemon_skipped_dependency_total`).
    skipped: Arc<Counter>,
    /// Rejected or failed forwards (`inca_daemon_forward_errors_total`).
    forward_errs: Arc<Counter>,
    /// Fires swallowed while the host was down
    /// (`inca_daemon_offline_skips_total`).
    offline: Arc<Counter>,
    /// When set, a fire on a down host (per the VO's failure model) is
    /// swallowed instead of executed — the daemon process lives on the
    /// resource it monitors, so an outage silences it. Off by default:
    /// the paper's availability experiments measure the *reporters*
    /// detecting the outage, which requires the daemon to keep running.
    offline_when_down: bool,
    /// The durable delivery queue: every fire's report is enqueued
    /// (stamped `(daemon_id, seq)`) before any delivery attempt.
    spool: Spool,
    /// When set, `forward` only enqueues; an external driver (the
    /// simulation's drain loop) pulls due entries and resolves them.
    /// When clear, the daemon drains its own spool through its
    /// transport after every fire.
    deferred_delivery: bool,
    /// Aggregate spool depth across daemons sharing the registry
    /// (`inca_daemon_spool_depth`), maintained by per-daemon deltas.
    spool_depth: Arc<Gauge>,
    /// Delivery retry attempts (`inca_daemon_retries_total`).
    retries: Arc<Counter>,
    /// Spooled reports dropped at capacity
    /// (`inca_daemon_spool_dropped_total`).
    spool_drops: Arc<Counter>,
    /// Last depth/drop readings pushed to the shared metrics, for the
    /// delta sync after each spool mutation.
    last_depth: usize,
    last_dropped: u64,
}

impl DistributedController {
    /// Creates a daemon for `spec`, forwarding through `transport` and
    /// observing into [`Obs::global`].
    pub fn new(spec: Spec, transport: Box<dyn Transport>, seed: u64) -> DistributedController {
        DistributedController::with_obs(spec, transport, seed, Obs::global())
    }

    /// Like [`DistributedController::new`], with spans and metrics
    /// going to `obs`. Counters aggregate across every daemon sharing
    /// the handle (one registry per simulated VO, typically).
    pub fn with_obs(
        spec: Spec,
        transport: Box<dyn Transport>,
        seed: u64,
        obs: Obs,
    ) -> DistributedController {
        let scheduler = Scheduler::from_spec(&spec);
        let metrics = obs.metrics();
        let kills = metrics.counter(
            "inca_daemon_kills_total",
            "Reporter runs killed for exceeding their expected run time.",
        );
        let missed = metrics.counter(
            "inca_daemon_missed_schedules_total",
            "Spec entries dropped from the wake-up queue (no next cron fire).",
        );
        let skipped = metrics.counter(
            "inca_daemon_skipped_dependency_total",
            "Runs skipped because a dependency's last run failed.",
        );
        let forward_errs = metrics.counter(
            "inca_daemon_forward_errors_total",
            "Report submissions rejected by the server or lost in transit.",
        );
        let offline = metrics.counter(
            "inca_daemon_offline_skips_total",
            "Reporter fires swallowed because the daemon's host was down.",
        );
        let spool_depth = metrics.gauge(
            "inca_daemon_spool_depth",
            "Reports queued in daemon spools awaiting server acknowledgement.",
        );
        let retries = metrics.counter(
            "inca_daemon_retries_total",
            "Report delivery retry attempts (second and later sends of one report).",
        );
        let spool_drops = metrics.counter(
            "inca_daemon_spool_dropped_total",
            "Spooled reports dropped oldest-first at spool capacity.",
        );
        let spool = Spool::new(spec.resource.clone(), SpoolConfig::default());
        DistributedController {
            spec,
            scheduler,
            registry: BTreeMap::new(),
            transport,
            duration_model: DurationModel::new(seed),
            processes: ProcessTable::new(),
            stats: RunStats::default(),
            pending: BinaryHeap::new(),
            primed_after: None,
            obs,
            kills,
            missed,
            skipped,
            forward_errs,
            offline,
            offline_when_down: false,
            spool,
            deferred_delivery: false,
            spool_depth,
            retries,
            spool_drops,
            last_depth: 0,
            last_dropped: 0,
        }
    }

    /// Makes the daemon go silent while its host is down (per the VO's
    /// failure model): due fires are swallowed and counted instead of
    /// executed, so no report — not even an error report — reaches the
    /// server until the host recovers. This is the realistic outage
    /// shape the health subsystem's staleness rules detect.
    pub fn set_offline_when_down(&mut self, offline: bool) {
        self.offline_when_down = offline;
    }

    /// Registers a runnable reporter under its own name.
    pub fn register(&mut self, reporter: Box<dyn Reporter>) {
        self.registry.insert(reporter.name().to_string(), reporter);
    }

    /// Instantiates and registers every catalog entry referenced by the
    /// spec, using each spec entry's `target` for cross-site kinds.
    pub fn register_from_catalog(&mut self, catalog: &[CatalogEntry]) {
        let by_name: BTreeMap<&str, &CatalogEntry> =
            catalog.iter().map(|e| (e.name.as_str(), e)).collect();
        for entry in &self.spec.entries {
            if self.registry.contains_key(&entry.reporter) {
                continue;
            }
            // A spec may deploy several instances of one reporter with
            // different targets (Table 2 counts instances); instance
            // names carry a `#n` suffix stripped for catalog lookup.
            let program = entry.reporter.split('#').next().unwrap_or(&entry.reporter);
            if let Some(cat) = by_name.get(program) {
                let target = entry.target.as_deref().unwrap_or("");
                self.registry.insert(entry.reporter.clone(), cat.instantiate(target));
            }
        }
    }

    /// The spec this daemon executes.
    pub fn spec(&self) -> &Spec {
        &self.spec
    }

    /// Lifetime counters.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// The forked-process history (input to the impact model).
    pub fn processes(&self) -> &ProcessTable {
        &self.processes
    }

    /// Earliest cron fire strictly after `t` (full cron scan; for the
    /// incremental event loop use [`DistributedController::prime`] and
    /// [`DistributedController::peek_next`]).
    pub fn next_fire(&self, t: Timestamp) -> Option<Timestamp> {
        self.scheduler.next_fire(t)
    }

    /// Builds the wake-up queue with each entry's first fire strictly
    /// after `t`. Idempotent for the same `t`.
    pub fn prime(&mut self, t: Timestamp) {
        if self.primed_after == Some(t) {
            return;
        }
        self.pending.clear();
        for (idx, entry) in self.spec.entries.iter().enumerate() {
            match entry.cron.next_after(t) {
                Ok(fire) => self.pending.push(Reverse((fire.as_secs(), idx))),
                Err(_) => self.missed.inc(),
            }
        }
        self.primed_after = Some(t);
    }

    /// The earliest pending fire in the wake-up queue.
    pub fn peek_next(&self) -> Option<Timestamp> {
        self.pending.peek().map(|Reverse((secs, _))| Timestamp::from_secs(*secs))
    }

    /// Executes every queue entry scheduled at the earliest pending
    /// time, reschedules them, and returns that time. `None` when the
    /// queue is empty (unprimed daemon or no live cron entries).
    pub fn run_next_batch(&mut self, vo: &Vo) -> Option<Timestamp> {
        let Reverse((secs, _)) = *self.pending.peek()?;
        let t = Timestamp::from_secs(secs);
        while let Some(&Reverse((s, idx))) = self.pending.peek() {
            if s != secs {
                break;
            }
            self.pending.pop();
            if self.scheduler.dependency_satisfied(&self.spec, idx) {
                self.execute_entry(idx, t, vo);
            } else {
                self.stats.skipped_dependency += 1;
                self.skipped.inc();
            }
            match self.spec.entries[idx].cron.next_after(t) {
                Ok(next) => self.pending.push(Reverse((next.as_secs(), idx))),
                Err(_) => self.missed.inc(),
            }
        }
        Some(t)
    }

    /// Executes every entry due at `t` against the VO; returns how many
    /// processes were forked.
    pub fn run_due(&mut self, t: Timestamp, vo: &Vo) -> usize {
        let due = self.scheduler.due_at(t);
        let mut forked = 0;
        for idx in due {
            if !self.scheduler.dependency_satisfied(&self.spec, idx) {
                self.stats.skipped_dependency += 1;
                self.skipped.inc();
                continue;
            }
            self.execute_entry(idx, t, vo);
            forked += 1;
        }
        forked
    }

    fn execute_entry(&mut self, idx: usize, t: Timestamp, vo: &Vo) {
        let entry = self.spec.entries[idx].clone();
        if self.offline_when_down
            && vo.resource(&self.spec.resource).is_some_and(|r| !r.is_up(t))
        {
            self.stats.offline_skips += 1;
            self.offline.inc();
            self.obs
                .event("daemon.offline_skip")
                .severity(Severity::Warn)
                .field("reporter", &entry.reporter)
                .field("resource", &self.spec.resource)
                .field("fired_at", t.as_secs())
                .finish();
            return;
        }
        self.stats.executed += 1;
        let duration = self.duration_model.duration_secs(&entry.reporter, t);
        let expected = entry.expected_runtime_secs.max(1);
        // The report's lifecycle trace starts here: the root context is
        // minted per fire and carried on the wire so the server and
        // depot spans (and histogram exemplars) join the same trace.
        let ctx = TraceContext::root();
        let span = self
            .obs
            .span("daemon.run")
            .trace_ctx(ctx)
            .field("reporter", &entry.reporter)
            .field("resource", &self.spec.resource)
            .field("fired_at", t.as_secs())
            .field("sim_duration_s", duration);
        let wire_ctx = span.child_ctx().unwrap_or(ctx);

        if duration > expected {
            // Killed: the daemon terminates the fork at t + expected
            // and submits the special error report (§3.1.3).
            let end = t + expected;
            self.processes.record(ExecRecord { start: t, end, killed: true });
            self.stats.killed += 1;
            self.kills.inc();
            span.severity(Severity::Warn).field("outcome", "killed").finish();
            let header = Header::new(&entry.reporter, "1.0", &self.spec.resource, end);
            let report = Report::execution_error(
                header,
                format!(
                    "{}: exceeded expected run time of {expected}s; process killed",
                    entry.reporter
                ),
            );
            self.scheduler.record_outcome(&entry.reporter, false);
            self.forward(
                ClientMessage::error_report(
                    self.spec.resource.clone(),
                    entry.branch.clone(),
                    &report,
                )
                .with_trace(wire_ctx),
                t,
            );
            return;
        }

        let end = t + duration;
        self.processes.record(ExecRecord { start: t, end, killed: false });
        let mut report = match (self.registry.get(&entry.reporter), vo.resource(&self.spec.resource)) {
            (Some(reporter), Some(resource)) => {
                let ctx = ReporterContext::new(vo, resource, t);
                reporter.run(&ctx)
            }
            (None, _) => {
                let header = Header::new(&entry.reporter, "1.0", &self.spec.resource, end);
                Report::execution_error(
                    header,
                    format!("{}: reporter not installed on resource", entry.reporter),
                )
            }
            (_, None) => {
                let header = Header::new(&entry.reporter, "1.0", &self.spec.resource, end);
                Report::execution_error(
                    header,
                    format!("{}: resource unknown to VO", self.spec.resource),
                )
            }
        };
        // The spec's input arguments are "supplied at run time" and
        // recorded in the header (§3.1.2).
        if !entry.args.is_empty() {
            report.header.args.extend(entry.args.iter().cloned());
        }
        let success = report.is_success();
        if success {
            self.stats.succeeded += 1;
        } else {
            self.stats.failed += 1;
        }
        span.field("outcome", if success { "succeeded" } else { "failed" }).finish();
        self.scheduler.record_outcome(&entry.reporter, success);
        self.forward(
            ClientMessage::report(self.spec.resource.clone(), entry.branch.clone(), &report)
                .with_trace(wire_ctx),
            t,
        );
    }

    /// Queues `message` in the spool (stamping its `(daemon_id, seq)`
    /// identity) and — unless delivery is deferred to an external
    /// driver — immediately drains every due entry through the
    /// transport.
    fn forward(&mut self, message: ClientMessage, t: Timestamp) {
        self.spool.enqueue(message);
        self.sync_spool_metrics();
        if !self.deferred_delivery {
            self.deliver_pending(t);
        }
    }

    /// Drains the spool head-of-line at simulated/wall time `t`: sends
    /// each due entry in seq order, acking on success, dropping (and
    /// counting a forward error) on permanent rejection, and backing
    /// off — which stops the drain, preserving per-branch order — on a
    /// transport failure.
    pub fn deliver_pending(&mut self, t: Timestamp) {
        let now = t.as_secs();
        loop {
            let head = match self.spool.head_if_due(now) {
                Some(entry) => entry,
                None => break,
            };
            if head.attempts > 0 {
                self.retries.inc();
            }
            match self.transport.send(&head.message) {
                Ok(ServerResponse::Ack) => {
                    self.spool.ack(head.seq);
                }
                Ok(ServerResponse::Rejected(_)) => {
                    self.spool.reject(head.seq);
                    self.note_forward_error();
                }
                Err(_) => {
                    self.spool.nack(head.seq, now);
                    break;
                }
            }
        }
        self.sync_spool_metrics();
    }

    /// Pushes the spool's depth/drop deltas into the shared metrics
    /// (the gauge aggregates every daemon on the registry, so each
    /// daemon applies only its own change).
    fn sync_spool_metrics(&mut self) {
        let depth = self.spool.depth();
        if depth > self.last_depth {
            self.spool_depth.add((depth - self.last_depth) as f64);
        } else if depth < self.last_depth {
            self.spool_depth.sub((self.last_depth - depth) as f64);
        }
        self.last_depth = depth;
        let dropped = self.spool.dropped();
        if dropped > self.last_dropped {
            self.spool_drops.add(dropped - self.last_dropped);
        }
        self.last_dropped = dropped;
    }

    /// Records one rejected or lost forward after the fact. Batched
    /// submission paths (the simulation drains buffered reports into
    /// one server call per tick) learn the server's verdict only once
    /// the batch returns, so the transport acks optimistically and the
    /// driver reconciles rejections through this.
    pub fn note_forward_error(&mut self) {
        self.stats.forward_errors += 1;
        self.forward_errs.inc();
    }

    /// Hands delivery to an external driver: `forward` only enqueues,
    /// and the driver pulls due entries with
    /// [`DistributedController::due_deliveries`] and resolves each via
    /// the `delivery_*` methods. The simulation uses this so all
    /// delivery (and fault-injection) decisions happen in its
    /// sequential drain phase, keeping multi-threaded runs
    /// deterministic.
    pub fn set_deferred_delivery(&mut self, deferred: bool) {
        self.deferred_delivery = deferred;
    }

    /// Read access to the delivery spool.
    pub fn spool(&self) -> &Spool {
        &self.spool
    }

    /// The longest deliverable prefix of the spool at `now` (the whole
    /// queue when `ignore_backoff`), in seq order. Counts a retry for
    /// every returned entry already attempted once. The caller must
    /// resolve each entry through [`DistributedController::delivery_acked`],
    /// [`delivery_rejected`](DistributedController::delivery_rejected),
    /// [`delivery_lost`](DistributedController::delivery_lost) or
    /// [`delivery_delayed`](DistributedController::delivery_delayed).
    pub fn due_deliveries(&mut self, now: Timestamp, ignore_backoff: bool) -> Vec<SpoolEntry> {
        let due = self.spool.due_prefix(now.as_secs(), ignore_backoff);
        for entry in &due {
            if entry.attempts > 0 {
                self.retries.inc();
            }
        }
        due
    }

    /// The server acked `seq`: it left the spool for good.
    pub fn delivery_acked(&mut self, seq: u64) {
        self.spool.ack(seq);
        self.sync_spool_metrics();
    }

    /// The server permanently rejected `seq`: dropped from the spool
    /// and counted as a forward error (retrying would only be rejected
    /// again).
    pub fn delivery_rejected(&mut self, seq: u64) {
        self.spool.reject(seq);
        self.note_forward_error();
        self.sync_spool_metrics();
    }

    /// The send (or its reply) was lost at time `now`: `seq` stays
    /// spooled with one more failed attempt and a backoff deadline.
    pub fn delivery_lost(&mut self, seq: u64, now: Timestamp) {
        self.spool.nack(seq, now.as_secs());
        self.sync_spool_metrics();
    }

    /// The send is delayed in flight: `seq` stays spooled, without a
    /// failed attempt, until `until`.
    pub fn delivery_delayed(&mut self, seq: u64, until: Timestamp) {
        self.spool.defer(seq, until.as_secs());
        self.sync_spool_metrics();
    }

    /// Earliest second any spooled delivery is next due (`None` when
    /// the spool is empty) — the event the driver's wake-up queue
    /// must include.
    pub fn next_delivery_due(&self) -> Option<Timestamp> {
        self.spool.next_due_secs().map(Timestamp::from_secs)
    }

    /// Simulates a daemon restart mid-spool: the spool is dumped to
    /// bytes and restored exactly as a freshly started daemon would,
    /// proving the WAL round-trip preserves the sequence counter and
    /// queued reports (backoff deadlines reset — a restarted daemon
    /// retries immediately).
    pub fn restart_spool(&mut self, t: Timestamp) {
        let bytes = self.spool.dump();
        self.spool = Spool::restore(&bytes, self.spool.config())
            .expect("a dumped spool always restores");
        self.obs
            .event("daemon.restart")
            .severity(Severity::Warn)
            .field("resource", &self.spec.resource)
            .field("at", t.as_secs())
            .field("spool_depth", self.spool.depth() as u64)
            .finish();
    }

    /// Drives the daemon over `[from, to)` of simulated time.
    pub fn run_until(&mut self, vo: &Vo, from: Timestamp, to: Timestamp) {
        self.prime(from);
        while let Some(next) = self.peek_next() {
            if next >= to {
                break;
            }
            self.run_next_batch(vo);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forwarder::CollectingTransport;
    use crate::spec::SpecEntry;
    use inca_report::BranchId;
    use inca_reporters::catalog::teragrid_catalog;
    use inca_sim::{NetworkModel, ResourceSpec, VoResource};
    use std::sync::Arc;

    struct SharedTransport(Arc<CollectingTransport>);
    impl Transport for SharedTransport {
        fn send(&self, m: &ClientMessage) -> Result<ServerResponse, String> {
            self.0.send(m)
        }
    }

    fn test_vo() -> Vo {
        let mut vo = Vo::new("tg", vec![], NetworkModel::new(0));
        vo.add_resource(VoResource::healthy(ResourceSpec::new(
            "host.sdsc.edu",
            "sdsc",
            2,
            "x",
            1000,
            2.0,
        )));
        vo
    }

    fn branch_for(reporter: &str) -> BranchId {
        format!("reporter={reporter},resource=host,site=sdsc,vo=tg").parse().unwrap()
    }

    fn spec_with(entries: Vec<SpecEntry>) -> Spec {
        let mut spec = Spec::new("host.sdsc.edu");
        for e in entries {
            spec.push(e);
        }
        spec
    }

    #[test]
    fn fires_and_forwards_reports() {
        let transport = Arc::new(CollectingTransport::new());
        let spec = spec_with(vec![SpecEntry::new(
            "version.globus",
            "20 * * * *".parse().unwrap(),
            600,
            branch_for("version.globus"),
        )]);
        let mut daemon =
            DistributedController::new(spec, Box::new(SharedTransport(transport.clone())), 7);
        daemon.register_from_catalog(&teragrid_catalog());
        let vo = test_vo();
        let start = Timestamp::from_gmt(2004, 7, 7, 0, 0, 0);
        daemon.run_until(&vo, start, start + 3 * 3_600);
        assert_eq!(daemon.stats().executed, 3, "hourly entry fires three times");
        let sent = transport.take_sent();
        assert_eq!(sent.len(), 3);
        for m in &sent {
            assert_eq!(m.resource, "host.sdsc.edu");
            assert!(!m.is_error_report);
            let report = Report::parse(&m.report_xml).unwrap();
            assert!(report.is_success());
            assert_eq!(report.header.reporter, "version.globus");
        }
    }

    #[test]
    fn every_forward_carries_a_fresh_trace_context() {
        let transport = Arc::new(CollectingTransport::new());
        let spec = spec_with(vec![SpecEntry::new(
            "version.globus",
            "20 * * * *".parse().unwrap(),
            600,
            branch_for("version.globus"),
        )]);
        let mut daemon =
            DistributedController::new(spec, Box::new(SharedTransport(transport.clone())), 7);
        daemon.register_from_catalog(&teragrid_catalog());
        let vo = test_vo();
        let start = Timestamp::from_gmt(2004, 7, 7, 0, 0, 0);
        daemon.run_until(&vo, start, start + 3 * 3_600);
        let sent = transport.take_sent();
        assert_eq!(sent.len(), 3);
        let mut trace_ids = std::collections::HashSet::new();
        for m in &sent {
            let ctx = m.trace.expect("every forwarded report carries a trace context");
            assert_ne!(ctx.trace_id, 0);
            assert!(trace_ids.insert(ctx.trace_id), "each fire mints its own trace");
        }
    }

    #[test]
    fn offline_when_down_swallows_fires_silently() {
        use inca_sim::{FailureModel, OutageSchedule};
        let transport = Arc::new(CollectingTransport::new());
        let spec = spec_with(vec![SpecEntry::new(
            "version.globus",
            "20 * * * *".parse().unwrap(),
            600,
            branch_for("version.globus"),
        )]);
        let mut daemon =
            DistributedController::new(spec, Box::new(SharedTransport(transport.clone())), 7);
        daemon.register_from_catalog(&teragrid_catalog());
        daemon.set_offline_when_down(true);

        let start = Timestamp::from_gmt(2004, 7, 7, 0, 0, 0);
        let mut vo = Vo::new("tg", vec![], NetworkModel::new(0));
        let mut res = VoResource::healthy(ResourceSpec::new("host.sdsc.edu", "sdsc", 2, "x", 1000, 2.0));
        res.failure = FailureModel {
            resource_outages: OutageSchedule::from_intervals(vec![(start, start + 2 * 3_600)]),
            ..FailureModel::none()
        };
        vo.add_resource(res);

        // Fires at 00:20 and 01:20 hit the outage; 02:20 runs normally.
        daemon.run_until(&vo, start, start + 3 * 3_600);
        let stats = daemon.stats();
        assert_eq!(stats.offline_skips, 2, "{stats:?}");
        assert_eq!(stats.executed, 1, "{stats:?}");
        assert_eq!(
            transport.take_sent().len(),
            1,
            "a down host sends nothing, not even error reports"
        );
    }

    #[test]
    fn kills_over_budget_runs_and_sends_error_report() {
        let transport = Arc::new(CollectingTransport::new());
        // expected runtime 1 s: almost every run exceeds it.
        let spec = spec_with(vec![SpecEntry::new(
            "benchmark.grasp.flops",
            "0 * * * *".parse().unwrap(),
            1,
            branch_for("benchmark.grasp.flops"),
        )]);
        let mut daemon =
            DistributedController::new(spec, Box::new(SharedTransport(transport.clone())), 7);
        daemon.register_from_catalog(&teragrid_catalog());
        let vo = test_vo();
        let start = Timestamp::from_gmt(2004, 7, 7, 0, 0, 0);
        daemon.run_until(&vo, start, start + 2 * 3_600);
        assert!(daemon.stats().killed >= 1);
        assert_eq!(daemon.processes().kill_count(), daemon.stats().killed as usize);
        let sent = transport.take_sent();
        assert!(sent.iter().any(|m| m.is_error_report));
        let err = sent.iter().find(|m| m.is_error_report).unwrap();
        let report = Report::parse(&err.report_xml).unwrap();
        assert!(report
            .footer
            .error_message
            .as_deref()
            .unwrap()
            .contains("exceeded expected run time"));
    }

    #[test]
    fn unregistered_reporter_yields_error_report() {
        let transport = Arc::new(CollectingTransport::new());
        let spec = spec_with(vec![SpecEntry::new(
            "version.mystery",
            "5 * * * *".parse().unwrap(),
            600,
            branch_for("version.mystery"),
        )]);
        let mut daemon =
            DistributedController::new(spec, Box::new(SharedTransport(transport.clone())), 7);
        let vo = test_vo();
        let start = Timestamp::from_gmt(2004, 7, 7, 0, 0, 0);
        daemon.run_until(&vo, start, start + 3_600);
        assert_eq!(daemon.stats().failed, 1);
        let sent = transport.take_sent();
        let report = Report::parse(&sent[0].report_xml).unwrap();
        assert!(!report.is_success());
        assert!(report.footer.error_message.unwrap().contains("not installed"));
    }

    #[test]
    fn dependency_skip_counted() {
        let transport = Arc::new(CollectingTransport::new());
        let mut gated = SpecEntry::new(
            "unit.globus.smoke",
            "10 * * * *".parse().unwrap(),
            600,
            branch_for("unit.globus.smoke"),
        );
        gated.depends_on = Some("version.missingpkg".into());
        let spec = spec_with(vec![
            SpecEntry::new(
                "version.missingpkg",
                "5 * * * *".parse().unwrap(),
                600,
                branch_for("version.missingpkg"),
            ),
            gated,
        ]);
        let mut daemon =
            DistributedController::new(spec, Box::new(SharedTransport(transport.clone())), 7);
        daemon.register_from_catalog(&teragrid_catalog());
        // version.missingpkg is not in the catalog → fails each run →
        // the gated unit test is skipped from the second period on.
        let vo = test_vo();
        let start = Timestamp::from_gmt(2004, 7, 7, 0, 0, 0);
        daemon.run_until(&vo, start, start + 2 * 3_600);
        assert!(daemon.stats().skipped_dependency >= 1, "{:?}", daemon.stats());
    }

    #[test]
    fn spec_args_recorded_in_headers() {
        let transport = Arc::new(CollectingTransport::new());
        let mut entry = SpecEntry::new(
            "version.globus",
            "20 * * * *".parse().unwrap(),
            600,
            branch_for("version.globus"),
        );
        entry.args.push(("siteConfig".into(), "/etc/inca/site.conf".into()));
        let spec = spec_with(vec![entry]);
        let mut daemon =
            DistributedController::new(spec, Box::new(SharedTransport(transport.clone())), 7);
        daemon.register_from_catalog(&teragrid_catalog());
        let vo = test_vo();
        let start = Timestamp::from_gmt(2004, 7, 7, 0, 0, 0);
        daemon.run_until(&vo, start, start + 3_600);
        let sent = transport.take_sent();
        let report = Report::parse(&sent[0].report_xml).unwrap();
        assert_eq!(report.header.get_arg("siteConfig"), Some("/etc/inca/site.conf"));
        // The reporter's own args are still there too.
        assert_eq!(report.header.get_arg("package"), Some("globus"));
    }

    #[test]
    fn process_table_matches_executions() {
        let transport = Arc::new(CollectingTransport::new());
        let spec = spec_with(vec![
            SpecEntry::new("version.globus", "15 * * * *".parse().unwrap(), 600, branch_for("version.globus")),
            SpecEntry::new("unit.srb.smoke", "45 * * * *".parse().unwrap(), 600, branch_for("unit.srb.smoke")),
        ]);
        let mut daemon =
            DistributedController::new(spec, Box::new(SharedTransport(transport)), 7);
        daemon.register_from_catalog(&teragrid_catalog());
        let vo = test_vo();
        let start = Timestamp::from_gmt(2004, 7, 7, 0, 0, 0);
        daemon.run_until(&vo, start, start + 4 * 3_600);
        assert_eq!(daemon.processes().records().len(), 8);
        assert_eq!(daemon.stats().executed, 8);
    }

    #[test]
    fn lost_sends_stay_spooled_and_retry_on_next_fire() {
        use parking_lot::Mutex;
        struct Flaky {
            failures_left: Mutex<u32>,
            sent: Mutex<Vec<(Option<(String, u64)>, bool)>>,
        }
        impl Transport for Arc<Flaky> {
            fn send(&self, m: &ClientMessage) -> Result<ServerResponse, String> {
                let mut left = self.failures_left.lock();
                if *left > 0 {
                    *left -= 1;
                    self.sent.lock().push((m.origin.clone(), false));
                    return Err("connection refused".into());
                }
                self.sent.lock().push((m.origin.clone(), true));
                Ok(ServerResponse::Ack)
            }
        }
        let flaky = Arc::new(Flaky { failures_left: Mutex::new(1), sent: Mutex::new(vec![]) });
        let spec = spec_with(vec![SpecEntry::new(
            "version.globus",
            "20 * * * *".parse().unwrap(),
            600,
            branch_for("version.globus"),
        )]);
        let obs = inca_obs::Obs::new();
        let mut daemon = DistributedController::with_obs(
            spec,
            Box::new(flaky.clone()),
            7,
            obs.clone(),
        );
        daemon.register_from_catalog(&teragrid_catalog());
        let vo = test_vo();
        let start = Timestamp::from_gmt(2004, 7, 7, 0, 0, 0);
        daemon.run_until(&vo, start, start + 2 * 3_600);

        // Fire 1's send failed → spooled; fire 2 (an hour later, past
        // the backoff deadline) drains seq 1 then seq 2, in order.
        let sent = flaky.sent.lock().clone();
        let resource = "host.sdsc.edu".to_string();
        assert_eq!(
            sent,
            vec![
                (Some((resource.clone(), 1)), false),
                (Some((resource.clone(), 1)), true),
                (Some((resource, 2)), true),
            ]
        );
        assert!(daemon.spool().is_empty());
        // A transient transport failure is not a forward error...
        assert_eq!(daemon.stats().forward_errors, 0);
        // ...it is a retry.
        assert_eq!(
            obs.metrics().counter_value("inca_daemon_retries_total", &[]),
            Some(1)
        );
        assert_eq!(obs.metrics().gauge_value("inca_daemon_spool_depth", &[]), Some(0.0));
    }

    #[test]
    fn rejected_sends_drop_and_count_forward_errors() {
        let transport = Arc::new(CollectingTransport {
            respond_with: Some(ServerResponse::Rejected("allowlist".into())),
            ..CollectingTransport::new()
        });
        let spec = spec_with(vec![SpecEntry::new(
            "version.globus",
            "20 * * * *".parse().unwrap(),
            600,
            branch_for("version.globus"),
        )]);
        let mut daemon =
            DistributedController::new(spec, Box::new(SharedTransport(transport.clone())), 7);
        daemon.register_from_catalog(&teragrid_catalog());
        let vo = test_vo();
        let start = Timestamp::from_gmt(2004, 7, 7, 0, 0, 0);
        daemon.run_until(&vo, start, start + 3_600);
        // A permanent rejection is not retried: the spool drains and
        // the rejection is counted.
        assert!(daemon.spool().is_empty());
        assert_eq!(daemon.stats().forward_errors, 1);
    }

    #[test]
    fn restart_mid_spool_preserves_queued_reports_and_seq() {
        struct Dead;
        impl Transport for Dead {
            fn send(&self, _: &ClientMessage) -> Result<ServerResponse, String> {
                Err("down".into())
            }
        }
        let spec = spec_with(vec![SpecEntry::new(
            "version.globus",
            "20 * * * *".parse().unwrap(),
            600,
            branch_for("version.globus"),
        )]);
        let mut daemon = DistributedController::new(spec, Box::new(Dead), 7);
        daemon.register_from_catalog(&teragrid_catalog());
        let vo = test_vo();
        let start = Timestamp::from_gmt(2004, 7, 7, 0, 0, 0);
        daemon.run_until(&vo, start, start + 2 * 3_600);
        assert_eq!(daemon.spool().depth(), 2, "both fires stay queued");
        daemon.restart_spool(start + 2 * 3_600);
        assert_eq!(daemon.spool().depth(), 2, "restart loses nothing");
        let due = daemon.due_deliveries(start + 2 * 3_600, false);
        assert_eq!(due.len(), 2, "restart clears backoff deadlines");
        assert_eq!(due[0].seq, 1);
        assert_eq!(due[1].seq, 2);
        daemon.delivery_acked(1);
        daemon.delivery_acked(2);
        assert!(daemon.spool().is_empty());
    }

    #[test]
    fn run_stats_sum_consistently() {
        let transport = Arc::new(CollectingTransport::new());
        let spec = spec_with(vec![SpecEntry::new(
            "version.globus",
            "*/10 * * * *".parse().unwrap(),
            600,
            branch_for("version.globus"),
        )]);
        let mut daemon =
            DistributedController::new(spec, Box::new(SharedTransport(transport)), 7);
        daemon.register_from_catalog(&teragrid_catalog());
        let vo = test_vo();
        let start = Timestamp::from_gmt(2004, 7, 7, 0, 0, 0);
        daemon.run_until(&vo, start, start + 3_600);
        let s = daemon.stats();
        assert_eq!(s.succeeded + s.failed + s.killed, s.executed);
        assert_eq!(s.forward_errors, 0);
    }
}
