//! Execution modelling: how long reporters run, and the process table
//! the daemon keeps over its forked children.
//!
//! "When a reporter is scheduled to run, the daemon wakes up and forks
//! off a process to execute it. The daemon also monitors all forked
//! processes and terminates them if they exceed expected run time"
//! (§3.1.3). In the simulation, a fork is an [`ExecRecord`] interval;
//! the [`DurationModel`] assigns each reporter a deterministic synthetic
//! runtime so kill behaviour and the Figure 7 memory profile (daemon +
//! concurrently live forks) fall out of the same state.

use inca_report::Timestamp;

/// Deterministic synthetic runtimes per reporter family.
#[derive(Debug, Clone, Copy)]
pub struct DurationModel {
    /// Seed mixed into the per-execution hash.
    pub seed: u64,
}

impl DurationModel {
    /// A model with the given seed.
    pub fn new(seed: u64) -> DurationModel {
        DurationModel { seed }
    }

    /// Seconds the named reporter takes when started at `t`.
    ///
    /// Families (by name prefix) get characteristic base times:
    /// version queries are seconds, unit tests tens of seconds,
    /// cross-site probes up to a minute, benchmarks minutes. A ±50 %
    /// deterministic jitter is applied; occasionally (~1 % of runs) a
    /// run hangs for 10× its base — that is what the expected-runtime
    /// kill is for.
    pub fn duration_secs(&self, reporter: &str, t: Timestamp) -> u64 {
        let base: u64 = if reporter.starts_with("version.") {
            2
        } else if reporter.starts_with("unit.") {
            15
        } else if reporter.starts_with("grid.services.") {
            25
        } else if reporter.starts_with("network.") {
            45
        } else if reporter.starts_with("benchmark.") {
            180
        } else {
            10
        };
        let h = self.hash(reporter, t);
        let jitter = 0.5 + (h % 1_000) as f64 / 1_000.0; // 0.5–1.5
        let hang = (h >> 10) % 100 == 0; // ~1% of runs hang
        let secs = (base as f64 * jitter) as u64;
        if hang {
            secs.saturating_mul(10).max(1)
        } else {
            secs.max(1)
        }
    }

    fn hash(&self, reporter: &str, t: Timestamp) -> u64 {
        let mut h = self.seed ^ t.as_secs();
        for b in reporter.bytes() {
            h = h.wrapping_mul(0x100_0000_01B3) ^ b as u64;
        }
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^ (h >> 31)
    }
}

/// One forked reporter process (completed or killed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecRecord {
    /// Fork time.
    pub start: Timestamp,
    /// Exit or kill time.
    pub end: Timestamp,
    /// Whether the daemon killed it for exceeding expected runtime.
    pub killed: bool,
}

impl ExecRecord {
    /// Whether the process was alive at `t`.
    pub fn alive_at(&self, t: Timestamp) -> bool {
        t >= self.start && t < self.end
    }
}

/// The daemon's record of all forked processes.
#[derive(Debug, Clone, Default)]
pub struct ProcessTable {
    records: Vec<ExecRecord>,
}

impl ProcessTable {
    /// An empty table.
    pub fn new() -> ProcessTable {
        ProcessTable::default()
    }

    /// Records one execution.
    pub fn record(&mut self, record: ExecRecord) {
        self.records.push(record);
    }

    /// All executions, in fork order.
    pub fn records(&self) -> &[ExecRecord] {
        &self.records
    }

    /// Number of processes alive at `t` (drives the memory model: the
    /// §5.1 average of 35 MB was "the main controller process (18 MB)
    /// and one forked process").
    pub fn live_at(&self, t: Timestamp) -> usize {
        self.records.iter().filter(|r| r.alive_at(t)).count()
    }

    /// Number of processes forked within `(t - window, t]` (drives
    /// the CPU model: forking is when the daemon burns cycles).
    pub fn forked_within(&self, t: Timestamp, window: u64) -> usize {
        self.records
            .iter()
            .filter(|r| r.start <= t && t - r.start < window)
            .count()
    }

    /// Total kills.
    pub fn kill_count(&self) -> usize {
        self.records.iter().filter(|r| r.killed).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn durations_follow_family_bases() {
        let model = DurationModel::new(7);
        let t = ts(1_000);
        // Sample many times to dodge the 1% hang multiplier.
        let avg = |name: &str| -> f64 {
            (0..100)
                .map(|i| model.duration_secs(name, ts(1_000 + i * 3_600)) as f64)
                .sum::<f64>()
                / 100.0
        };
        let version = avg("version.globus");
        let unit = avg("unit.globus.smoke");
        let bench = avg("benchmark.grasp.flops");
        assert!(version < unit && unit < bench, "{version} {unit} {bench}");
        assert!(model.duration_secs("version.globus", t) >= 1);
    }

    #[test]
    fn durations_are_deterministic() {
        let a = DurationModel::new(7);
        let b = DurationModel::new(7);
        assert_eq!(
            a.duration_secs("unit.srb.connect", ts(42)),
            b.duration_secs("unit.srb.connect", ts(42))
        );
        let c = DurationModel::new(8);
        // Different seeds usually differ (not guaranteed for any single
        // point, so check across several).
        let differs = (0..20).any(|i| {
            a.duration_secs("unit.srb.connect", ts(i * 100))
                != c.duration_secs("unit.srb.connect", ts(i * 100))
        });
        assert!(differs);
    }

    #[test]
    fn hangs_exist_but_are_rare() {
        let model = DurationModel::new(3);
        let mut hangs = 0;
        let n = 10_000;
        for i in 0..n {
            let d = model.duration_secs("unit.globus.smoke", ts(i * 60));
            if d > 15 * 5 {
                hangs += 1;
            }
        }
        assert!(hangs > 0, "some runs must hang");
        assert!(hangs < n / 20, "hangs must be rare: {hangs}/{n}");
    }

    #[test]
    fn process_table_liveness() {
        let mut table = ProcessTable::new();
        table.record(ExecRecord { start: ts(100), end: ts(160), killed: false });
        table.record(ExecRecord { start: ts(150), end: ts(200), killed: true });
        assert_eq!(table.live_at(ts(99)), 0);
        assert_eq!(table.live_at(ts(100)), 1);
        assert_eq!(table.live_at(ts(155)), 2);
        assert_eq!(table.live_at(ts(160)), 1);
        assert_eq!(table.live_at(ts(200)), 0);
        assert_eq!(table.kill_count(), 1);
    }

    #[test]
    fn forked_within_window() {
        let mut table = ProcessTable::new();
        table.record(ExecRecord { start: ts(100), end: ts(101), killed: false });
        table.record(ExecRecord { start: ts(108), end: ts(120), killed: false });
        assert_eq!(table.forked_within(ts(110), 5), 1);
        assert_eq!(table.forked_within(ts(110), 11), 2);
        assert_eq!(table.forked_within(ts(90), 10), 0);
    }
}
