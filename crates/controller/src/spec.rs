//! Specification files.
//!
//! "Distributed controllers are designed to receive execution
//! instructions in the form of a specification file from the Inca
//! server… The specification file describes execution details for each
//! reporter including frequency, expected run time, and input
//! arguments" (§3.1.3). The file is XML; this module parses and
//! serializes it so the central configuration can be shipped to
//! resources (the paper's "central configuration" requirement).

use inca_cron::CronExpr;
use inca_report::BranchId;
use inca_xml::{Element, XmlError, XmlResult};

/// One reporter's execution instructions.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecEntry {
    /// Reporter to execute (key into the controller's registry).
    pub reporter: String,
    /// When to run (already offset-assigned within its period).
    pub cron: CronExpr,
    /// Seconds after which the forked process is killed.
    pub expected_runtime_secs: u64,
    /// Where the server should store the resulting reports.
    pub branch: BranchId,
    /// Target host for cross-site reporters.
    pub target: Option<String>,
    /// Extra input arguments recorded in report headers.
    pub args: Vec<(String, String)>,
    /// Optional dependency: run only if this reporter's most recent
    /// run succeeded (§6 future work: "more advanced test scheduling,
    /// specifically allowing for dependencies").
    pub depends_on: Option<String>,
}

impl SpecEntry {
    /// A minimal entry.
    pub fn new(
        reporter: impl Into<String>,
        cron: CronExpr,
        expected_runtime_secs: u64,
        branch: BranchId,
    ) -> SpecEntry {
        SpecEntry {
            reporter: reporter.into(),
            cron,
            expected_runtime_secs,
            branch,
            target: None,
            args: Vec::new(),
            depends_on: None,
        }
    }

    fn to_element(&self) -> Element {
        let mut e = Element::new("entry")
            .child(Element::with_text("reporter", &self.reporter))
            .child(Element::with_text("cron", self.cron.to_string()))
            .child(Element::with_text(
                "expectedRuntime",
                self.expected_runtime_secs.to_string(),
            ))
            .child(Element::with_text("branch", self.branch.to_string()));
        if let Some(target) = &self.target {
            e.push_child(Element::with_text("target", target));
        }
        if let Some(dep) = &self.depends_on {
            e.push_child(Element::with_text("dependsOn", dep));
        }
        if !self.args.is_empty() {
            let mut args = Element::new("args");
            for (n, v) in &self.args {
                args.push_child(
                    Element::new("arg")
                        .child(Element::with_text("name", n))
                        .child(Element::with_text("value", v)),
                );
            }
            e.push_child(args);
        }
        e
    }

    fn from_element(e: &Element) -> XmlResult<SpecEntry> {
        let required = |name: &str| -> XmlResult<String> {
            e.child_text(name).ok_or_else(|| XmlError::Constraint {
                message: format!("spec entry missing <{name}>"),
            })
        };
        let cron: CronExpr = required("cron")?.parse().map_err(|err| XmlError::Constraint {
            message: format!("bad cron in spec entry: {err}"),
        })?;
        let branch: BranchId =
            required("branch")?.parse().map_err(|err| XmlError::Constraint {
                message: format!("bad branch in spec entry: {err}"),
            })?;
        let expected_runtime_secs =
            required("expectedRuntime")?.parse().map_err(|err| XmlError::Constraint {
                message: format!("bad expectedRuntime: {err}"),
            })?;
        let mut args = Vec::new();
        if let Some(args_el) = e.find_child("args") {
            for arg in args_el.find_children("arg") {
                let name = arg.child_text("name").ok_or_else(|| XmlError::Constraint {
                    message: "spec arg missing <name>".into(),
                })?;
                args.push((name, arg.child_text("value").unwrap_or_default()));
            }
        }
        Ok(SpecEntry {
            reporter: required("reporter")?,
            cron,
            expected_runtime_secs,
            branch,
            target: e.child_text("target"),
            args,
            depends_on: e.child_text("dependsOn"),
        })
    }
}

/// A resource's full specification file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Spec {
    /// The resource this file configures.
    pub resource: String,
    /// Entries in file order.
    pub entries: Vec<SpecEntry>,
}

impl Spec {
    /// An empty spec for one resource.
    pub fn new(resource: impl Into<String>) -> Spec {
        Spec { resource: resource.into(), entries: Vec::new() }
    }

    /// Adds an entry.
    pub fn push(&mut self, entry: SpecEntry) {
        self.entries.push(entry);
    }

    /// Serializes as the XML file shipped to the resource.
    pub fn to_xml(&self) -> String {
        let mut root = Element::new("incaSpec").attr("resource", &self.resource);
        for entry in &self.entries {
            root.push_child(entry.to_element());
        }
        root.to_pretty_xml()
    }

    /// Parses a specification file.
    pub fn parse(xml: &str) -> XmlResult<Spec> {
        let root = Element::parse(xml)?;
        if root.name != "incaSpec" {
            return Err(XmlError::Constraint {
                message: format!("expected <incaSpec>, found <{}>", root.name),
            });
        }
        let resource = root
            .attribute("resource")
            .ok_or_else(|| XmlError::Constraint {
                message: "<incaSpec> missing resource attribute".into(),
            })?
            .to_string();
        let mut entries = Vec::new();
        for e in root.find_children("entry") {
            entries.push(SpecEntry::from_element(e)?);
        }
        Ok(Spec { resource, entries })
    }

    /// Expected reporter executions per hour (Table 2's accounting).
    pub fn runs_per_hour(&self) -> f64 {
        self.entries.iter().map(|e| 3_600.0 / e.cron.nominal_period_secs() as f64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Spec {
        let mut spec = Spec::new("tg-login1.caltech.teragrid.org");
        let mut entry = SpecEntry::new(
            "version.globus",
            "20 * * * *".parse().unwrap(),
            60,
            "reporter=version.globus,resource=tg-login1,site=caltech,vo=teragrid"
                .parse()
                .unwrap(),
        );
        entry.args.push(("package".into(), "globus".into()));
        spec.push(entry);
        let mut probe = SpecEntry::new(
            "grid.services.gram.probe",
            "31 * * * *".parse().unwrap(),
            300,
            "reporter=grid.services.gram.probe,resource=tg-login1,site=caltech,vo=teragrid"
                .parse()
                .unwrap(),
        );
        probe.target = Some("tg-login1.sdsc.teragrid.org".into());
        probe.depends_on = Some("version.globus".into());
        spec.push(probe);
        spec
    }

    #[test]
    fn roundtrip() {
        let spec = sample();
        let parsed = Spec::parse(&spec.to_xml()).unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Spec::parse("<wrong/>").is_err());
        assert!(Spec::parse("<incaSpec/>").is_err()); // missing resource
        let bad_cron = r#"<incaSpec resource="r"><entry><reporter>x</reporter><cron>nope</cron><expectedRuntime>60</expectedRuntime><branch>a=1</branch></entry></incaSpec>"#;
        assert!(Spec::parse(bad_cron).is_err());
        let bad_branch = r#"<incaSpec resource="r"><entry><reporter>x</reporter><cron>* * * * *</cron><expectedRuntime>60</expectedRuntime><branch>nope</branch></entry></incaSpec>"#;
        assert!(Spec::parse(bad_branch).is_err());
    }

    #[test]
    fn runs_per_hour() {
        let spec = sample();
        assert!((spec.runs_per_hour() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn optional_fields_survive() {
        let spec = sample();
        let parsed = Spec::parse(&spec.to_xml()).unwrap();
        assert_eq!(parsed.entries[1].target.as_deref(), Some("tg-login1.sdsc.teragrid.org"));
        assert_eq!(parsed.entries[1].depends_on.as_deref(), Some("version.globus"));
        assert_eq!(parsed.entries[0].target, None);
        assert_eq!(parsed.entries[0].args, vec![("package".to_string(), "globus".to_string())]);
    }

    #[test]
    fn empty_spec_roundtrips() {
        let spec = Spec::new("host");
        let parsed = Spec::parse(&spec.to_xml()).unwrap();
        assert!(parsed.entries.is_empty());
        assert_eq!(parsed.resource, "host");
    }
}
