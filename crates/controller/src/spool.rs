//! The daemon's durable report spool — the client half of
//! exactly-once delivery.
//!
//! §3.1.3 has the distributed controller communicate each report to
//! the Inca server over TCP; the original implementation simply lost
//! the report when that connection failed, and re-sent it blindly
//! when only the *reply* was lost (ingesting it twice). The spool
//! fixes both halves on the client side:
//!
//! * every fire's report is enqueued before any delivery attempt, so
//!   a transmit failure leaves it queued instead of dropped;
//! * every enqueued message is stamped with `(daemon_id, seq)` — the
//!   identity the server's sliding-window dedup uses to ingest
//!   retried submissions idempotently;
//! * delivery is head-of-line: a report is never allowed to overtake
//!   an earlier unacknowledged one, so per-branch "latest report
//!   wins" semantics survive retries;
//! * retry timing follows capped exponential backoff with
//!   deterministic jitter ([`BackoffPolicy`]), so a dead server is
//!   not hammered and simulated runs stay reproducible;
//! * [`Spool::dump`]/[`Spool::restore`] round-trip the whole queue
//!   (including the sequence counter) through bytes, the same
//!   dump/restore shape as the depot's `ArchiveStore` — a daemon
//!   restart mid-spool resumes where it left off instead of reusing
//!   sequence numbers or forgetting unsent reports.
//!
//! The spool is bounded: at capacity the *oldest* entry is dropped
//! and counted, on the theory that during a long partition the
//! freshest state of each branch is worth more than a complete
//! backlog of superseded reports.

use std::collections::VecDeque;
use std::io::Cursor;

use inca_wire::binframe::{put_section, SectionReader};
use inca_wire::frame::{read_frame, write_frame, FrameError};
use inca_wire::message::ClientMessage;
use inca_xml::{escape::escape_text, Element};

/// Entry-frame section tag: the entry's sequence number, u64 BE.
const SECTION_SEQ: u8 = 0x10;
/// Entry-frame section tag: the delivery attempt count, u32 BE.
const SECTION_ATTEMPTS: u8 = 0x11;
/// Entry-frame section tag: the encoded [`ClientMessage`] bytes.
const SECTION_MESSAGE: u8 = 0x12;

/// Capped exponential backoff with deterministic jitter.
///
/// The delay before attempt `n + 1` is `min(base · 2ⁿ, cap)` plus a
/// jitter drawn by hashing `(daemon, seq, attempt)` — deterministic so
/// simulated runs reproduce byte-identically from a seed, spread so a
/// fleet of daemons recovering from the same partition does not
/// stampede the server on the same second.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// First-retry delay in seconds.
    pub base_secs: u64,
    /// Upper bound on the exponential delay in seconds.
    pub cap_secs: u64,
    /// Maximum jitter added on top, in seconds (0 disables).
    pub jitter_secs: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        // 5 s, 10 s, 20 s … capped at 10 min: a transient blip retries
        // within the same reporting period, a dead server is probed a
        // few times per period at most.
        BackoffPolicy { base_secs: 5, cap_secs: 600, jitter_secs: 10 }
    }
}

impl BackoffPolicy {
    /// Delay in seconds before the next attempt, given that `attempts`
    /// have already failed.
    pub fn delay_secs(&self, daemon: &str, seq: u64, attempts: u32) -> u64 {
        let exp = self
            .base_secs
            .saturating_mul(1u64.checked_shl(attempts.saturating_sub(1).min(32)).unwrap_or(u64::MAX))
            .min(self.cap_secs);
        exp + self.jitter(daemon, seq, attempts)
    }

    fn jitter(&self, daemon: &str, seq: u64, attempts: u32) -> u64 {
        if self.jitter_secs == 0 {
            return 0;
        }
        // SplitMix64-style finalizer over the attempt identity.
        let mut h = seq ^ (attempts as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for b in daemon.bytes() {
            h = h.wrapping_mul(0x100_0000_01B3) ^ b as u64;
        }
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (h ^ (h >> 31)) % (self.jitter_secs + 1)
    }
}

/// Spool sizing and retry policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpoolConfig {
    /// Maximum queued reports; the oldest is dropped (and counted)
    /// beyond this.
    pub capacity: usize,
    /// Retry backoff policy.
    pub backoff: BackoffPolicy,
}

impl Default for SpoolConfig {
    fn default() -> Self {
        // A TeraGrid-shape daemon fires a few dozen reporters per
        // hour; 4096 entries rides out a multi-day partition.
        SpoolConfig { capacity: 4096, backoff: BackoffPolicy::default() }
    }
}

/// One queued report awaiting acknowledgement.
#[derive(Debug, Clone, PartialEq)]
pub struct SpoolEntry {
    /// The per-daemon sequence number stamped on the message.
    pub seq: u64,
    /// The stamped message, ready for the wire.
    pub message: ClientMessage,
    /// Failed delivery attempts so far.
    pub attempts: u32,
    /// Earliest second (simulated or wall epoch) the next attempt may
    /// run; 0 = immediately.
    pub not_before: u64,
}

/// The bounded durable delivery queue of one daemon.
#[derive(Debug, Clone, PartialEq)]
pub struct Spool {
    daemon_id: String,
    /// Next sequence number to stamp (starts at 1; never reused, even
    /// across [`Spool::dump`]/[`Spool::restore`]).
    next_seq: u64,
    entries: VecDeque<SpoolEntry>,
    config: SpoolConfig,
    /// Entries dropped at capacity over the spool's lifetime.
    dropped: u64,
}

impl Spool {
    /// An empty spool stamping messages as `daemon_id`.
    pub fn new(daemon_id: impl Into<String>, config: SpoolConfig) -> Spool {
        Spool {
            daemon_id: daemon_id.into(),
            next_seq: 1,
            entries: VecDeque::new(),
            config,
            dropped: 0,
        }
    }

    /// The identity stamped on every message.
    pub fn daemon_id(&self) -> &str {
        &self.daemon_id
    }

    /// Queued entries awaiting acknowledgement.
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is awaiting delivery.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries dropped at capacity over the spool's lifetime.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured capacity/backoff.
    pub fn config(&self) -> SpoolConfig {
        self.config
    }

    /// Stamps `message` with the next `(daemon_id, seq)` and queues
    /// it, returning the assigned seq. At capacity the oldest entry is
    /// dropped first (and counted in [`Spool::dropped`]).
    pub fn enqueue(&mut self, message: ClientMessage) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.entries.len() >= self.config.capacity.max(1) {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(SpoolEntry {
            seq,
            message: message.with_origin(self.daemon_id.clone(), seq),
            attempts: 0,
            not_before: 0,
        });
        seq
    }

    /// The earliest second any delivery may next be attempted — the
    /// *head's* `not_before`, because delivery is head-of-line (a
    /// later report never overtakes an earlier unacknowledged one).
    /// `None` when the spool is empty.
    pub fn next_due_secs(&self) -> Option<u64> {
        self.entries.front().map(|e| e.not_before)
    }

    /// The head entry if it is deliverable at `now_secs`. Head-of-line
    /// delivery sends exactly this, one at a time.
    pub fn head_if_due(&self, now_secs: u64) -> Option<SpoolEntry> {
        self.entries.front().filter(|e| e.not_before <= now_secs).cloned()
    }

    /// The longest deliverable prefix at `now_secs`: every entry from
    /// the head whose `not_before` has passed (when `ignore_backoff`,
    /// the whole queue). Entries are cloned in seq order; the caller
    /// must resolve each via [`Spool::ack`] / [`Spool::nack`] /
    /// [`Spool::reject`] / [`Spool::defer`].
    pub fn due_prefix(&self, now_secs: u64, ignore_backoff: bool) -> Vec<SpoolEntry> {
        self.entries
            .iter()
            .take_while(|e| ignore_backoff || e.not_before <= now_secs)
            .cloned()
            .collect()
    }

    /// Acknowledges `seq`: the server ingested it; the entry leaves
    /// the spool. Returns false if no such entry was queued.
    pub fn ack(&mut self, seq: u64) -> bool {
        match self.entries.iter().position(|e| e.seq == seq) {
            Some(pos) => {
                self.entries.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Records a failed attempt for `seq`: bumps its attempt count and
    /// schedules the retry per the backoff policy. Returns the new
    /// attempt count (0 if no such entry).
    pub fn nack(&mut self, seq: u64, now_secs: u64) -> u32 {
        let daemon = self.daemon_id.clone();
        let backoff = self.config.backoff;
        match self.entries.iter_mut().find(|e| e.seq == seq) {
            Some(entry) => {
                entry.attempts += 1;
                entry.not_before =
                    now_secs + backoff.delay_secs(&daemon, seq, entry.attempts);
                entry.attempts
            }
            None => 0,
        }
    }

    /// Holds `seq` back until `until_secs` without counting a failed
    /// attempt (in-flight delay rather than loss).
    pub fn defer(&mut self, seq: u64, until_secs: u64) {
        if let Some(entry) = self.entries.iter_mut().find(|e| e.seq == seq) {
            entry.not_before = entry.not_before.max(until_secs);
        }
    }

    /// Drops `seq` permanently (the server rejected it; a retry would
    /// only be rejected again). Returns false if no such entry.
    pub fn reject(&mut self, seq: u64) -> bool {
        self.ack(seq)
    }

    /// Drops queued entries for `branch` that have never been sent
    /// (`attempts == 0` and not past any delivery attempt), returning
    /// how many were dropped. A forwarding relay calls this before
    /// enqueueing a fresh rollup of the same branch: under a long
    /// partition the parent wants the *latest* value per branch, not a
    /// replay of every superseded one — the same "freshest state wins"
    /// theory as the capacity drop. Entries with delivery attempts are
    /// kept: they may already have been ingested, and acking them via
    /// retry is how the relay learns that.
    pub fn supersede(&mut self, branch: &inca_report::BranchId) -> usize {
        let before = self.entries.len();
        self.entries
            .retain(|e| e.attempts > 0 || e.message.branch != *branch);
        before - self.entries.len()
    }

    /// Serializes the whole spool — identity, sequence counter, drop
    /// count, and every queued entry — to bytes. The meta frame stays
    /// XML (it is small and human-greppable); each entry is one frame
    /// of binary `[tag][len][bytes]` sections (seq, attempts, message)
    /// in the same section format as the wire's binary envelope, so
    /// the message bytes are spliced without an XML head per entry.
    /// Backoff deadlines are *not* persisted: a restored spool retries
    /// immediately, which is what a freshly restarted daemon should do.
    pub fn dump(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let meta = format!(
            "<spool daemon=\"{}\" next_seq=\"{}\" dropped=\"{}\"/>",
            escape_text(&self.daemon_id),
            self.next_seq,
            self.dropped,
        );
        write_frame(&mut out, meta.as_bytes()).expect("vec write cannot fail");
        for entry in &self.entries {
            let mut body = Vec::new();
            put_section(&mut body, SECTION_SEQ, &entry.seq.to_be_bytes());
            put_section(&mut body, SECTION_ATTEMPTS, &entry.attempts.to_be_bytes());
            put_section(&mut body, SECTION_MESSAGE, &entry.message.encode());
            write_frame(&mut out, &body).expect("vec write cannot fail");
        }
        out
    }

    /// Restores a spool from [`Spool::dump`] bytes.
    pub fn restore(bytes: &[u8], config: SpoolConfig) -> Result<Spool, String> {
        let mut cursor = Cursor::new(bytes);
        let meta_bytes =
            read_frame(&mut cursor).map_err(|e| format!("spool meta frame: {e}"))?;
        let meta = Element::parse(
            std::str::from_utf8(&meta_bytes).map_err(|e| format!("meta not UTF-8: {e}"))?,
        )
        .map_err(|e| format!("bad spool meta: {e}"))?;
        if meta.name != "spool" {
            return Err(format!("expected <spool>, found <{}>", meta.name));
        }
        let daemon_id = meta
            .attribute("daemon")
            .ok_or("spool meta missing daemon")?
            .to_string();
        let attr_u64 = |name: &str| -> Result<u64, String> {
            meta.attribute(name)
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("spool meta missing/invalid {name}"))
        };
        let next_seq = attr_u64("next_seq")?;
        let dropped = attr_u64("dropped")?;
        let mut entries = VecDeque::new();
        loop {
            let body = match read_frame(&mut cursor) {
                Ok(b) => b,
                Err(FrameError::Closed) => break,
                Err(e) => return Err(format!("spool entry frame: {e}")),
            };
            let mut sections = SectionReader::new(&body);
            let mut seq: Option<u64> = None;
            let mut attempts: Option<u32> = None;
            let mut message_bytes: Option<&[u8]> = None;
            loop {
                match sections.next_section() {
                    Ok(None) => break,
                    Ok(Some((SECTION_SEQ, bytes))) => {
                        let arr: [u8; 8] = bytes
                            .try_into()
                            .map_err(|_| "entry seq section must be 8 bytes".to_string())?;
                        seq = Some(u64::from_be_bytes(arr));
                    }
                    Ok(Some((SECTION_ATTEMPTS, bytes))) => {
                        let arr: [u8; 4] = bytes.try_into().map_err(|_| {
                            "entry attempts section must be 4 bytes".to_string()
                        })?;
                        attempts = Some(u32::from_be_bytes(arr));
                    }
                    Ok(Some((SECTION_MESSAGE, bytes))) => message_bytes = Some(bytes),
                    // Unknown tags are skipped: a newer daemon may dump
                    // sections an older one safely ignores.
                    Ok(Some(_)) => {}
                    Err(e) => return Err(format!("bad entry sections: {e}")),
                }
            }
            let seq = seq.ok_or("entry missing seq section")?;
            let attempts = attempts.ok_or("entry missing attempts section")?;
            let payload = message_bytes.ok_or("entry missing message section")?;
            let message = ClientMessage::decode(payload)
                .map_err(|e| format!("entry payload for seq {seq}: {e}"))?;
            if message.origin.as_deref_seq() != Some((daemon_id.as_str(), seq)) {
                return Err(format!("entry stamp mismatch for seq {seq}"));
            }
            if seq >= next_seq {
                return Err(format!("entry seq {seq} not below next_seq {next_seq}"));
            }
            entries.push_back(SpoolEntry { seq, message, attempts, not_before: 0 });
        }
        Ok(Spool { daemon_id, next_seq, entries, config, dropped })
    }
}

/// Borrow helper for comparing an `Option<(String, u64)>` origin
/// without cloning.
trait OriginAsRef {
    fn as_deref_seq(&self) -> Option<(&str, u64)>;
}

impl OriginAsRef for Option<(String, u64)> {
    fn as_deref_seq(&self) -> Option<(&str, u64)> {
        self.as_ref().map(|(d, s)| (d.as_str(), *s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inca_report::{BranchId, ReportBuilder};

    fn message(n: u64) -> ClientMessage {
        let report = ReportBuilder::new("r", "1")
            .body_value("n", n.to_string())
            .success()
            .unwrap();
        let branch: BranchId = format!("reporter=r{n},vo=tg").parse().unwrap();
        ClientMessage::report("host.sdsc.edu", branch, &report)
    }

    fn spool() -> Spool {
        Spool::new("host.sdsc.edu", SpoolConfig::default())
    }

    #[test]
    fn enqueue_stamps_monotonic_seqs() {
        let mut s = spool();
        assert_eq!(s.enqueue(message(1)), 1);
        assert_eq!(s.enqueue(message(2)), 2);
        let due = s.due_prefix(0, false);
        assert_eq!(due.len(), 2);
        assert_eq!(due[0].message.origin, Some(("host.sdsc.edu".into(), 1)));
        assert_eq!(due[1].message.origin, Some(("host.sdsc.edu".into(), 2)));
    }

    #[test]
    fn ack_removes_and_nack_backs_off() {
        let mut s = spool();
        let a = s.enqueue(message(1));
        let b = s.enqueue(message(2));
        assert!(s.ack(a));
        assert!(!s.ack(a), "double ack is a no-op");
        assert_eq!(s.nack(b, 100), 1);
        // Backed-off head gates the whole queue (head-of-line).
        let c = s.enqueue(message(3));
        assert!(s.due_prefix(100, false).is_empty());
        let due_at = s.next_due_secs().unwrap();
        assert!(due_at > 100);
        let due = s.due_prefix(due_at, false);
        assert_eq!(due.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![b, c]);
        assert_eq!(due[0].attempts, 1);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = BackoffPolicy { base_secs: 4, cap_secs: 64, jitter_secs: 0 };
        let delays: Vec<u64> = (1..=8).map(|a| p.delay_secs("d", 1, a)).collect();
        assert_eq!(delays, vec![4, 8, 16, 32, 64, 64, 64, 64]);
        let jittered = BackoffPolicy { base_secs: 4, cap_secs: 64, jitter_secs: 7 };
        let d1 = jittered.delay_secs("d", 1, 3);
        assert_eq!(d1, jittered.delay_secs("d", 1, 3), "jitter is deterministic");
        assert!((16..=23).contains(&d1));
    }

    #[test]
    fn capacity_drops_oldest_and_counts() {
        let mut s = Spool::new(
            "h",
            SpoolConfig { capacity: 2, backoff: BackoffPolicy::default() },
        );
        s.enqueue(message(1));
        s.enqueue(message(2));
        s.enqueue(message(3));
        assert_eq!(s.depth(), 2);
        assert_eq!(s.dropped(), 1);
        let seqs: Vec<u64> = s.due_prefix(0, false).iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3], "oldest entry was dropped");
    }

    #[test]
    fn defer_holds_without_counting_an_attempt() {
        let mut s = spool();
        let a = s.enqueue(message(1));
        s.defer(a, 500);
        assert!(s.due_prefix(499, false).is_empty());
        let due = s.due_prefix(500, false);
        assert_eq!(due[0].attempts, 0);
    }

    #[test]
    fn supersede_drops_only_unsent_entries_of_that_branch() {
        let mut s = spool();
        let a = s.enqueue(message(1)); // reporter=r1
        s.enqueue(message(1)); // superseded rollup of the same branch
        let c = s.enqueue(message(2)); // different branch, untouched
        s.nack(a, 0); // a was sent once: it may already be ingested
        let branch: BranchId = "reporter=r1,vo=tg".parse().unwrap();
        assert_eq!(s.supersede(&branch), 1);
        let seqs: Vec<u64> = s.due_prefix(u64::MAX, true).iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![a, c], "attempted entry and other branches survive");
        assert_eq!(s.supersede(&branch), 0, "nothing left to supersede");
    }

    #[test]
    fn dump_restore_roundtrips_counter_and_entries() {
        let mut s = spool();
        let a = s.enqueue(message(1));
        let b = s.enqueue(message(2));
        s.ack(a);
        s.nack(b, 50);
        let restored = Spool::restore(&s.dump(), s.config()).unwrap();
        assert_eq!(restored.daemon_id(), "host.sdsc.edu");
        assert_eq!(restored.depth(), 1);
        // The sequence counter survives: no seq reuse after restart.
        let mut restored = restored;
        assert_eq!(restored.enqueue(message(3)), 3);
        // Backoff deadlines do not survive: a restarted daemon retries
        // immediately (attempts are kept for the next backoff step).
        let due = restored.due_prefix(0, false);
        assert_eq!(due[0].seq, b);
        assert_eq!(due[0].attempts, 1);
        assert_eq!(due[0].not_before, 0);
        assert_eq!(due[0].message, s.due_prefix(u64::MAX, true)[0].message);
    }

    #[test]
    fn restore_rejects_garbage_and_tampering() {
        assert!(Spool::restore(b"junk", SpoolConfig::default()).is_err());
        let mut s = spool();
        s.enqueue(message(1));
        let mut bytes = s.dump();
        let len = bytes.len();
        bytes.truncate(len - 3);
        assert!(Spool::restore(&bytes, SpoolConfig::default()).is_err());
        // A message whose stamp disagrees with its entry's seq section
        // fails: find the SEQ section `[0x10][len=8][u64 BE]` and flip
        // its low byte from 1 to 9.
        let mut tampered = s.dump();
        let pos = tampered
            .windows(5)
            .position(|w| w == [SECTION_SEQ, 0, 0, 0, 8])
            .expect("dump contains a seq section");
        let low = pos + 5 + 7;
        assert_eq!(tampered[low], 1);
        tampered[low] = 9;
        assert!(Spool::restore(&tampered, SpoolConfig::default()).is_err());
    }

    #[test]
    fn empty_spool_dump_restores_empty() {
        let s = spool();
        let restored = Spool::restore(&s.dump(), s.config()).unwrap();
        assert!(restored.is_empty());
        assert_eq!(restored, s);
    }
}
