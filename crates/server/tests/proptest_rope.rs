//! Property tests for the piece-table write path: across arbitrary
//! interleavings of single updates and batch inserts, the rope cache
//! must reproduce the splice [`XmlCache`] oracle byte-for-byte — the
//! materialized document, every indexed read, and the generation
//! counter the query memo keys on.
//!
//! Documents are kept small on purpose: in debug builds the splice
//! cache cross-checks a full index rebuild for documents under 128 KB,
//! so these cases exercise both oracles at once.

use proptest::prelude::*;

use inca_report::{BranchId, ReportBuilder, Timestamp};
use inca_server::{RopeCache, XmlCache};

fn value_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9]{1,8}").unwrap()
}

/// An update: which branch (from a bounded pool) and which payload.
#[derive(Debug, Clone)]
struct Update {
    reporter: String,
    resource: String,
    site: String,
    payload: String,
}

fn update_strategy() -> impl Strategy<Value = Update> {
    (
        proptest::sample::select(vec!["a", "b", "c", "d", "e"]),
        proptest::sample::select(vec!["m1", "m2", "m3"]),
        proptest::sample::select(vec!["sdsc", "ncsa"]),
        value_strategy(),
    )
        .prop_map(|(reporter, resource, site, payload)| Update {
            reporter: reporter.to_string(),
            resource: resource.to_string(),
            site: site.to_string(),
            payload,
        })
}

/// One step of an arbitrary ingest history: a single update or an
/// amortized batch.
#[derive(Debug, Clone)]
enum Step {
    Update(Update),
    Batch(Vec<Update>),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        update_strategy().prop_map(Step::Update),
        proptest::collection::vec(update_strategy(), 1..8).prop_map(Step::Batch),
    ]
}

fn branch_of(u: &Update) -> BranchId {
    format!(
        "reporter={},resource={},site={},vo=tg",
        u.reporter, u.resource, u.site
    )
    .parse()
    .unwrap()
}

fn report_xml(u: &Update) -> String {
    ReportBuilder::new(&u.reporter, "1.0")
        .host(&u.resource)
        .gmt(Timestamp::from_secs(0))
        .body_value("v", &u.payload)
        .success()
        .unwrap()
        .to_xml()
}

fn apply(rope: &mut RopeCache, oracle: &mut XmlCache, step: &Step) {
    match step {
        Step::Update(u) => {
            rope.update(&branch_of(u), &report_xml(u)).unwrap();
            oracle.update(&branch_of(u), &report_xml(u)).unwrap();
        }
        Step::Batch(us) => {
            let branches: Vec<BranchId> = us.iter().map(branch_of).collect();
            let reports: Vec<String> = us.iter().map(report_xml).collect();
            let items: Vec<(&BranchId, &str)> = branches
                .iter()
                .zip(reports.iter().map(String::as_str))
                .collect();
            rope.insert_batch(&items).unwrap();
            oracle.insert_batch(&items).unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rope_document_is_byte_identical_to_splice_oracle(
        steps in proptest::collection::vec(step_strategy(), 1..12)
    ) {
        let mut rope = RopeCache::new();
        let mut oracle = XmlCache::new();
        for step in &steps {
            apply(&mut rope, &mut oracle, step);
            let doc = rope.document();
            prop_assert_eq!(
                doc.as_str(),
                oracle.document(),
                "rope document diverged from the splice oracle"
            );
            prop_assert_eq!(rope.generation(), oracle.generation());
            prop_assert_eq!(rope.size_bytes(), oracle.size_bytes());
            prop_assert_eq!(rope.report_count(), oracle.report_count());
        }
    }

    #[test]
    fn rope_reads_match_splice_oracle(
        steps in proptest::collection::vec(step_strategy(), 1..10)
    ) {
        let queries = [
            "vo=tg",
            "site=sdsc,vo=tg",
            "site=ncsa,vo=tg",
            "resource=m2,site=ncsa,vo=tg",
            "reporter=a,resource=m1,site=sdsc,vo=tg",
            "vo=other",
        ];
        let mut rope = RopeCache::new();
        let mut oracle = XmlCache::new();
        for step in &steps {
            apply(&mut rope, &mut oracle, step);
            prop_assert_eq!(
                rope.reports(None).unwrap(),
                oracle.reports(None).unwrap(),
                "unfiltered reports diverged"
            );
            for q in queries {
                let query: BranchId = q.parse().unwrap();
                prop_assert_eq!(
                    rope.reports(Some(&query)).unwrap(),
                    oracle.reports(Some(&query)).unwrap(),
                    "reports({}) diverged", q
                );
                prop_assert_eq!(
                    rope.subtree(&query).unwrap(),
                    oracle.subtree(&query).unwrap(),
                    "subtree({}) diverged", q
                );
                prop_assert_eq!(
                    rope.report_exact(&query),
                    oracle.report_exact(&query),
                    "report_exact({}) diverged", q
                );
            }
        }
    }

    #[test]
    fn rope_restores_from_any_oracle_document(
        updates in proptest::collection::vec(update_strategy(), 1..25)
    ) {
        let mut oracle = XmlCache::new();
        for u in &updates {
            oracle.update(&branch_of(u), &report_xml(u)).unwrap();
        }
        let restored = RopeCache::from_document(oracle.document().to_string()).unwrap();
        let doc = restored.document();
        prop_assert_eq!(doc.as_str(), oracle.document());
        prop_assert_eq!(restored.report_count(), oracle.report_count());
        prop_assert_eq!(restored.generation(), 0);
    }
}
