//! Property tests for the depot cache: under arbitrary update
//! sequences, the cache must hold exactly one report per distinct
//! branch, return every report byte-exactly, and keep suffix queries
//! consistent with direct filtering.

use std::collections::BTreeMap;

use proptest::prelude::*;

use inca_report::{BranchId, ReportBuilder, Timestamp};
use inca_server::XmlCache;

fn value_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9]{1,8}").unwrap()
}

/// An update: which branch (from a bounded pool) and which payload.
#[derive(Debug, Clone)]
struct Update {
    reporter: String,
    resource: String,
    site: String,
    payload: String,
}

fn update_strategy() -> impl Strategy<Value = Update> {
    (
        proptest::sample::select(vec!["a", "b", "c", "d", "e"]),
        proptest::sample::select(vec!["m1", "m2", "m3"]),
        proptest::sample::select(vec!["sdsc", "ncsa"]),
        value_strategy(),
    )
        .prop_map(|(reporter, resource, site, payload)| Update {
            reporter: reporter.to_string(),
            resource: resource.to_string(),
            site: site.to_string(),
            payload,
        })
}

/// One step of an arbitrary ingest history: a single update or an
/// amortized batch.
#[derive(Debug, Clone)]
enum Step {
    Update(Update),
    Batch(Vec<Update>),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        update_strategy().prop_map(Step::Update),
        proptest::collection::vec(update_strategy(), 1..8).prop_map(Step::Batch),
    ]
}

fn branch_of(u: &Update) -> BranchId {
    format!(
        "reporter={},resource={},site={},vo=tg",
        u.reporter, u.resource, u.site
    )
    .parse()
    .unwrap()
}

fn report_xml(u: &Update) -> String {
    ReportBuilder::new(&u.reporter, "1.0")
        .host(&u.resource)
        .gmt(Timestamp::from_secs(0))
        .body_value("v", &u.payload)
        .success()
        .unwrap()
        .to_xml()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_is_a_map_from_branch_to_latest_report(
        updates in proptest::collection::vec(update_strategy(), 1..40)
    ) {
        let mut cache = XmlCache::new();
        let mut expected: BTreeMap<String, String> = BTreeMap::new();
        for u in &updates {
            let branch = branch_of(u);
            let xml = report_xml(u);
            cache.update(&branch, &xml).unwrap();
            expected.insert(branch.to_string(), xml);
        }
        // One report per distinct branch.
        prop_assert_eq!(cache.report_count(), expected.len());
        // Every report retrievable byte-exactly.
        let all = cache.reports(None).unwrap();
        prop_assert_eq!(all.len(), expected.len());
        for (branch, xml) in &all {
            prop_assert_eq!(
                expected.get(&branch.to_string()).map(String::as_str),
                Some(xml.as_str()),
                "branch {} content mismatch", branch
            );
        }
        // The document itself stays well-formed.
        inca_xml::Element::parse(cache.document()).unwrap();
    }

    #[test]
    fn suffix_queries_match_filtering(
        updates in proptest::collection::vec(update_strategy(), 1..30)
    ) {
        let mut cache = XmlCache::new();
        for u in &updates {
            cache.update(&branch_of(u), &report_xml(u)).unwrap();
        }
        let all = cache.reports(None).unwrap();
        for query_text in ["site=sdsc,vo=tg", "site=ncsa,vo=tg", "resource=m1,site=sdsc,vo=tg", "vo=tg"] {
            let query: BranchId = query_text.parse().unwrap();
            let via_query = cache.reports(Some(&query)).unwrap();
            let via_filter: Vec<&(BranchId, String)> =
                all.iter().filter(|(b, _)| b.matches_suffix(&query)).collect();
            prop_assert_eq!(
                via_query.len(),
                via_filter.len(),
                "query {} inconsistent", query_text
            );
            // Subtree query agrees on report count.
            let subtree = cache.subtree(&query).unwrap();
            let subtree_count = subtree
                .map(|s| s.matches("<incaReport").count())
                .unwrap_or(0);
            prop_assert_eq!(subtree_count, via_filter.len());
        }
    }

    #[test]
    fn batch_insert_is_byte_identical_to_sequential_updates(
        seed in proptest::collection::vec(update_strategy(), 0..20),
        batch in proptest::collection::vec(update_strategy(), 1..30)
    ) {
        // Pre-populate both caches identically, then apply `batch`
        // once via insert_batch and once as individual updates: the
        // amortized path must reproduce the sequential document
        // byte-for-byte (duplicate branches, replaces, fresh levels
        // and all).
        let mut batched = XmlCache::new();
        let mut reference = XmlCache::new();
        for u in &seed {
            batched.update(&branch_of(u), &report_xml(u)).unwrap();
            reference.update(&branch_of(u), &report_xml(u)).unwrap();
        }
        let branches: Vec<BranchId> = batch.iter().map(branch_of).collect();
        let reports: Vec<String> = batch.iter().map(report_xml).collect();
        let items: Vec<(&BranchId, &str)> =
            branches.iter().zip(reports.iter().map(String::as_str)).collect();
        batched.insert_batch(&items).unwrap();
        for (b, xml) in &items {
            reference.update(b, xml).unwrap();
        }
        prop_assert_eq!(batched.document(), reference.document());
    }

    #[test]
    fn indexed_reads_match_streaming_scan(
        steps in proptest::collection::vec(step_strategy(), 1..12)
    ) {
        // The persistent branch index answers `subtree`/`reports`/
        // `report_exact`; the streaming full-document scan is kept as
        // the oracle. Across arbitrary interleavings of single updates
        // and batch inserts, every indexed read must be byte-identical
        // (content AND order) to the scan after every mutation.
        let queries = [
            "vo=tg",
            "site=sdsc,vo=tg",
            "site=ncsa,vo=tg",
            "resource=m2,site=ncsa,vo=tg",
            "reporter=a,resource=m1,site=sdsc,vo=tg",
            "vo=other",
        ];
        let mut cache = XmlCache::new();
        for step in &steps {
            let touched: Vec<BranchId> = match step {
                Step::Update(u) => {
                    cache.update(&branch_of(u), &report_xml(u)).unwrap();
                    vec![branch_of(u)]
                }
                Step::Batch(us) => {
                    let branches: Vec<BranchId> = us.iter().map(branch_of).collect();
                    let reports: Vec<String> = us.iter().map(report_xml).collect();
                    let items: Vec<(&BranchId, &str)> =
                        branches.iter().zip(reports.iter().map(String::as_str)).collect();
                    cache.insert_batch(&items).unwrap();
                    branches
                }
            };
            prop_assert_eq!(
                cache.reports(None).unwrap(),
                cache.scan_reports(None).unwrap(),
                "unfiltered reports diverged from the scan oracle"
            );
            for q in queries {
                let query: BranchId = q.parse().unwrap();
                prop_assert_eq!(
                    cache.reports(Some(&query)).unwrap(),
                    cache.scan_reports(Some(&query)).unwrap(),
                    "reports({}) diverged from the scan oracle", q
                );
                prop_assert_eq!(
                    cache.subtree(&query).unwrap(),
                    cache.scan_subtree(&query).unwrap(),
                    "subtree({}) diverged from the scan oracle", q
                );
            }
            // Exact-match lookups agree with the scan on every branch
            // this step touched (all full identifiers).
            for branch in &touched {
                let via_scan = cache.scan_reports(Some(branch)).unwrap();
                let exact = via_scan.iter().find(|(b, _)| b == branch).map(|(_, x)| x.as_str());
                prop_assert_eq!(cache.report_exact(branch), exact);
            }
        }
    }

    #[test]
    fn updates_replace_in_place_keeping_size_steady(
        payloads in proptest::collection::vec(value_strategy(), 2..10)
    ) {
        let mut cache = XmlCache::new();
        let branch: BranchId = "reporter=r,resource=m,vo=tg".parse().unwrap();
        let mk = |p: &str| {
            ReportBuilder::new("r", "1.0")
                .gmt(Timestamp::from_secs(0))
                .body_value("v", format!("{p:>8}")) // fixed-width payload
                .success()
                .unwrap()
                .to_xml()
        };
        cache.update(&branch, &mk(&payloads[0])).unwrap();
        let size = cache.size_bytes();
        for p in &payloads[1..] {
            cache.update(&branch, &mk(p)).unwrap();
            prop_assert_eq!(cache.size_bytes(), size, "size must stay steady");
            prop_assert_eq!(cache.report_count(), 1);
        }
    }
}
