//! Property tests for `DedupIndex`: forget × window-slide
//! interleavings against a naive exact oracle.
//!
//! The generator simulates the only client the dedup contract is
//! defined for — a head-of-line spool daemon. Its spool has capacity
//! equal to the dedup window, so every seq it can still retransmit,
//! fail, or retry sits within `window` of the newest seq it has sent;
//! a failed seq is always retried before the window slides past it
//! (the spool blocks on its head). Under that discipline the windowed
//! index must agree *exactly* with an unwindowed oracle (a plain set
//! with insert/remove), which is what these properties check: the old
//! `forget` reopening fabricated seen-marks for window-slid seqs and
//! diverged from the oracle precisely in these interleavings.

use inca_server::dedup::DedupIndex;
use proptest::prelude::*;
use std::collections::BTreeSet;

const WINDOW: u64 = 16;

/// Unwindowed exact oracle: delivered = in the set, forgotten = not.
#[derive(Default)]
struct Oracle {
    seen: BTreeSet<u64>,
}

impl Oracle {
    fn observe(&mut self, seq: u64) -> bool {
        self.seen.insert(seq)
    }
    fn forget(&mut self, seq: u64) {
        self.seen.remove(&seq);
    }
}

/// One generated client step; `pick` selects among the currently
/// eligible targets so every op stays meaningful whatever the history.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Deliver the next fresh seq.
    Fresh,
    /// Skip ahead: the daemon dropped some reports on the floor
    /// (crash + spool truncation), sliding the window in one jump.
    Jump(u64),
    /// Retransmit an already-delivered in-window seq (lost reply).
    Retransmit(usize),
    /// Depot failed after admission: the controller un-records it.
    Forget(usize),
    /// Forget a seq that is already forgotten (batch reconciliation
    /// can report one failure through two paths).
    DoubleForget(usize),
    /// Retry a forgotten seq; must be fresh exactly once.
    Retry(usize),
}

/// Drives both implementations through `ops`, checking every observe
/// result against the oracle. Returns (index, oracle, expected dup
/// count) for end-state assertions.
fn run(ops: &[Op]) -> Result<(DedupIndex, Oracle, u64), proptest::test_runner::TestCaseError> {
    let mut idx = DedupIndex::new(WINDOW);
    let mut oracle = Oracle::default();
    let mut next: u64 = 1;
    // Delivered seqs still within retransmit range, and forgotten seqs
    // awaiting retry. Both are kept within WINDOW of `next` below.
    let mut live: Vec<u64> = Vec::new();
    let mut failed: Vec<u64> = Vec::new();
    let mut dups_expected: u64 = 0;

    // Head-of-line discipline: before the window slides past a failed
    // seq, the daemon has already retried it. `advance` flushes those
    // forced retries, then trims stale retransmit targets.
    macro_rules! advance {
        ($to:expr) => {{
            let to: u64 = $to;
            let horizon = to.saturating_sub(WINDOW - 1);
            failed.retain(|&f| {
                if f < horizon {
                    let fresh = idx.observe("d", f);
                    assert!(oracle.observe(f), "oracle already had forgotten seq");
                    if !fresh {
                        panic!("forced retry of forgotten seq {f} was deduplicated");
                    }
                    live.push(f);
                    false
                } else {
                    true
                }
            });
            live.retain(|&s| s >= horizon);
            next = to;
        }};
    }

    for &op in ops {
        match op {
            Op::Fresh => {
                advance!(next + 1);
                let seq = next - 1;
                prop_assert_eq!(idx.observe("d", seq), oracle.observe(seq), "fresh seq {}", seq);
            }
            Op::Jump(gap) => {
                // Jumps stay under WINDOW so a just-failed head seq is
                // still retryable after the slide, like a real spool
                // whose head survives the crash.
                advance!(next + gap % (WINDOW / 2) + 1);
            }
            Op::Retransmit(pick) => {
                if live.is_empty() {
                    continue;
                }
                let seq = live[pick % live.len()];
                prop_assert!(!oracle.observe(seq), "oracle lost seq {}", seq);
                prop_assert!(!idx.observe("d", seq), "retransmit of {} not deduplicated", seq);
                dups_expected += 1;
            }
            Op::Forget(pick) => {
                if live.is_empty() {
                    continue;
                }
                let seq = live.swap_remove(pick % live.len());
                idx.forget("d", seq);
                oracle.forget(seq);
                failed.push(seq);
            }
            Op::DoubleForget(pick) => {
                if failed.is_empty() {
                    continue;
                }
                let seq = failed[pick % failed.len()];
                idx.forget("d", seq);
                oracle.forget(seq);
            }
            Op::Retry(pick) => {
                if failed.is_empty() {
                    continue;
                }
                let seq = failed.swap_remove(pick % failed.len());
                prop_assert_eq!(idx.observe("d", seq), oracle.observe(seq), "retry {}", seq);
                live.push(seq);
            }
        }
    }
    Ok((idx, oracle, dups_expected))
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Fresh),
        Just(Op::Fresh),
        Just(Op::Fresh),
        (0u64..1 << 32).prop_map(Op::Jump),
        (0usize..1 << 16).prop_map(Op::Retransmit),
        (0usize..1 << 16).prop_map(Op::Forget),
        (0usize..1 << 16).prop_map(Op::DoubleForget),
        (0usize..1 << 16).prop_map(Op::Retry),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every observe agrees with the unwindowed oracle, and every
    /// forgotten seq is re-admitted exactly once — across arbitrary
    /// interleavings of delivery, retransmits, forgets, retries, and
    /// window slides (in-order collapse and crash jumps).
    #[test]
    fn forget_and_window_slides_match_exact_oracle(
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        let (mut idx, mut oracle, dups) = run(&ops)?;
        prop_assert_eq!(idx.duplicate_count(), dups, "duplicate counter drifted");
        // End-state probe: a forgotten-then-retried history leaves no
        // seq double-admittable. Replay the newest in-window seqs; both
        // sides must call every one a duplicate or both call it fresh.
        let newest = oracle.seen.iter().next_back().copied().unwrap_or(0);
        for seq in newest.saturating_sub(WINDOW - 1).max(1)..=newest {
            prop_assert_eq!(
                idx.observe("d", seq),
                oracle.observe(seq),
                "end-state replay of seq {} diverged", seq
            );
        }
    }

    /// Interleaved daemons never interfere: the same op sequence run
    /// through one shared index under two daemon ids behaves like two
    /// private indexes.
    #[test]
    fn daemons_stay_isolated_under_forgets(
        seqs in proptest::collection::vec((1u64..40, 0u8..4), 1..120),
    ) {
        let mut shared = DedupIndex::new(WINDOW);
        let mut solo_a = DedupIndex::new(WINDOW);
        let mut solo_b = DedupIndex::new(WINDOW);
        for &(seq, kind) in &seqs {
            let (name, solo): (&str, &mut DedupIndex) = if kind % 2 == 0 {
                ("a", &mut solo_a)
            } else {
                ("b", &mut solo_b)
            };
            if kind < 2 {
                prop_assert_eq!(shared.observe(name, seq), solo.observe(name, seq));
            } else {
                shared.forget(name, seq);
                solo.forget(name, seq);
            }
        }
        prop_assert_eq!(
            shared.duplicate_count(),
            solo_a.duplicate_count() + solo_b.duplicate_count()
        );
    }
}
