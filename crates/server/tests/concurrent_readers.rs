//! Readers share the depot lock: the controller's depot sits behind a
//! reader-writer lock, so consumers, health probes and the metrics
//! endpoint read concurrently with each other while ingest writes
//! serialize. These tests hold that contract under real threads.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;

use inca_report::{BranchId, ReportBuilder, Timestamp};
use inca_server::{CentralizedController, ControllerConfig, Depot, QueryInterface};
use inca_wire::message::{ClientMessage, ServerResponse};

fn controller() -> Arc<CentralizedController> {
    Arc::new(CentralizedController::new(
        ControllerConfig::default(),
        Depot::with_obs(inca_obs::Obs::new()),
    ))
}

fn message(reporter: &str, resource: &str, value: &str) -> Vec<u8> {
    let report = ReportBuilder::new(reporter, "1.0")
        .host(resource)
        .gmt(Timestamp::from_secs(1_000))
        .body_value("packageVersion", value)
        .success()
        .unwrap();
    let branch: BranchId = format!("reporter={reporter},resource={resource},site=sdsc,vo=tg")
        .parse()
        .unwrap();
    ClientMessage::report(resource, branch, &report).encode()
}

/// Two readers hold the depot simultaneously: each parks on a shared
/// barrier *while inside* `with_depot`. Under the old exclusive lock
/// this deadlocks; under the reader-writer lock both enter and the
/// barrier releases.
#[test]
fn two_readers_hold_the_depot_at_once() {
    let c = controller();
    let (resp, _) = c.submit("h", &message("version.globus", "tg1", "2.4.3"), Timestamp::from_secs(1_000));
    assert_eq!(resp, ServerResponse::Ack);
    let rendezvous = Arc::new(Barrier::new(2));
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let c = Arc::clone(&c);
            let rendezvous = Arc::clone(&rendezvous);
            thread::spawn(move || {
                c.with_depot(|depot| {
                    // Both threads must be inside the read closure at
                    // the same time for either to get past this point.
                    rendezvous.wait();
                    depot.cache().report_count()
                })
            })
        })
        .collect();
    for r in readers {
        assert_eq!(r.join().expect("reader thread panicked"), 1);
    }
}

/// N readers query continuously while one writer streams inserts and
/// replacements through `submit`/`submit_batch`. Every read must see a
/// self-consistent snapshot: the document parses, counts agree across
/// query styles, and an exact-match lookup returns parseable XML.
#[test]
fn readers_see_consistent_snapshots_during_ingest() {
    let c = controller();
    // Seed one branch so readers always have something to find.
    let (resp, _) = c.submit("h", &message("version.globus", "tg1", "0.0.0"), Timestamp::from_secs(999));
    assert_eq!(resp, ServerResponse::Ack);
    let done = Arc::new(AtomicBool::new(false));
    let start = Arc::new(Barrier::new(4));

    let readers: Vec<_> = (0..3)
        .map(|_| {
            let c = Arc::clone(&c);
            let done = Arc::clone(&done);
            let start = Arc::clone(&start);
            thread::spawn(move || {
                let pinned: BranchId =
                    "reporter=version.globus,resource=tg1,site=sdsc,vo=tg".parse().unwrap();
                start.wait();
                let mut reads = 0u64;
                while !done.load(Ordering::Relaxed) {
                    c.with_depot(|depot| {
                        let q = QueryInterface::new(depot);
                        let all = q.reports(None).expect("cache stays well-formed");
                        let count = depot.cache().report_count();
                        assert_eq!(all.len(), count, "reports() disagrees with the index count");
                        let seeded = q
                            .report(&pinned)
                            .expect("exact lookup stays well-formed")
                            .expect("seeded branch never disappears");
                        let p: inca_xml::IncaPath = "packageVersion".parse().unwrap();
                        assert!(seeded.body.lookup_text(&p).is_ok());
                        let site = q
                            .current(&"site=sdsc,vo=tg".parse().unwrap())
                            .expect("subtree stays well-formed")
                            .expect("seeded site never disappears");
                        assert!(site.matches("<incaReport").count() >= 1);
                    });
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    let writer = {
        let c = Arc::clone(&c);
        let start = Arc::clone(&start);
        thread::spawn(move || {
            start.wait();
            for i in 0..60u64 {
                // Alternate fresh branches with replacements of the
                // pinned branch, singly and in batches.
                let t = Timestamp::from_secs(1_000 + i);
                if i % 3 == 0 {
                    let batch: Vec<(String, Vec<u8>)> = (0..4)
                        .map(|j| {
                            let resource = format!("batch{}x{j}", i);
                            ("h".to_string(), message("version.mpich", &resource, "1.2.5"))
                        })
                        .collect();
                    for (resp, _) in c.submit_batch(&batch, t) {
                        assert_eq!(resp, ServerResponse::Ack);
                    }
                } else {
                    let value = format!("2.4.{i}");
                    let (resp, _) = c.submit("h", &message("version.globus", "tg1", &value), t);
                    assert_eq!(resp, ServerResponse::Ack);
                }
            }
        })
    };

    writer.join().expect("writer thread panicked");
    done.store(true, Ordering::Relaxed);
    let mut total_reads = 0;
    for r in readers {
        total_reads += r.join().expect("reader thread panicked");
    }
    assert!(total_reads > 0, "readers made progress during ingest");
    // 20 batches x 4 fresh branches + the seeded one; replacements
    // never add branches.
    assert_eq!(c.with_depot(|d| d.cache().report_count()), 81);
}

/// Temporal queries return consistent snapshots while a writer
/// ingests: a window entirely in the past must answer *identically*
/// on every read (the writer only appends later points), incidents
/// keep their exact bounds, and report-backed queries always parse.
#[test]
fn temporal_queries_see_consistent_windows_during_ingest() {
    let c = controller();
    let policy = inca_rrd::ArchivePolicy::every("availability", 86_400);
    let t0 = Timestamp::from_secs(600_000);
    // Seed a day-old availability window with a dip, plus one report.
    c.with_depot_mut(|depot| {
        for i in 1..=24u64 {
            let pct = if (10..=13).contains(&i) { 50.0 } else { 100.0 };
            depot.archive_mut().record("availability:Grid:sdsc-tg1", &policy, 600, t0 + i * 600, pct);
        }
    });
    let (resp, _) = c.submit("h", &message("version.globus", "tg1", "2.4.3"), t0 + 24 * 600);
    assert_eq!(resp, ServerResponse::Ack);

    // End just past the last seeded point: the writer's appended
    // points all fall outside this window.
    let window_end = t0 + 24 * 600 + 1;
    let done = Arc::new(AtomicBool::new(false));
    let start = Arc::new(Barrier::new(4));

    let readers: Vec<_> = (0..3)
        .map(|_| {
            let c = Arc::clone(&c);
            let done = Arc::clone(&done);
            let start = Arc::clone(&start);
            thread::spawn(move || {
                start.wait();
                let mut reads = 0u64;
                while !done.load(Ordering::Relaxed) {
                    c.with_depot(|depot| {
                        let temporal = QueryInterface::new(depot).temporal();
                        // The closed window is immutable: the answer
                        // never changes while the writer appends.
                        let agg = temporal
                            .window_aggregate("availability:Grid:sdsc-tg1", t0, window_end)
                            .expect("seeded series never disappears");
                        assert_eq!(agg.min, 50.0);
                        assert_eq!(agg.max, 100.0);
                        assert_eq!(agg.known, 24);
                        let incidents = temporal.incidents(
                            "availability:Grid:sdsc-tg1",
                            99.0,
                            t0,
                            window_end,
                        );
                        assert_eq!(incidents.len(), 1, "the dip is exactly one incident");
                        assert_eq!(incidents[0].start, t0 + 9 * 600);
                        assert_eq!(incidents[0].end, t0 + 13 * 600);
                        // Report-backed temporal queries parse under
                        // concurrent cache writes.
                        let reports = temporal.resource_reports("tg", "sdsc", "tg1");
                        assert!(!reports.is_empty(), "seeded report never disappears");
                        // The live series may grow but never shrinks.
                        let live = temporal
                            .availability_series("sdsc-tg1", "Grid", t0, t0 + 200 * 600)
                            .expect("series exists");
                        assert!(live.known().count() >= 24);
                    });
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    let writer = {
        let c = Arc::clone(&c);
        let start = Arc::clone(&start);
        thread::spawn(move || {
            start.wait();
            for i in 0..60u64 {
                let t = t0 + (25 + i) * 600;
                // Append fresh availability points past the window and
                // churn the cache with report replacements.
                c.with_depot_mut(|depot| {
                    depot.archive_mut().record(
                        "availability:Grid:sdsc-tg1",
                        &inca_rrd::ArchivePolicy::every("availability", 86_400),
                        600,
                        t,
                        100.0,
                    );
                });
                let (resp, _) =
                    c.submit("h", &message("version.globus", "tg1", &format!("2.4.{i}")), t);
                assert_eq!(resp, ServerResponse::Ack);
            }
        })
    };

    writer.join().expect("writer thread panicked");
    done.store(true, Ordering::Relaxed);
    let mut total_reads = 0;
    for r in readers {
        total_reads += r.join().expect("reader thread panicked");
    }
    assert!(total_reads > 0, "readers made progress during ingest");
}
