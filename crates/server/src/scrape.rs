//! The self-scrape pipeline: Inca monitoring Inca.
//!
//! The paper's depot archives *resource* telemetry; the framework's
//! own vital signs (spool depth, insert latency, alert state) have so
//! far only existed as instantaneous values on the exposition page. A
//! [`MetricsScraper`] closes the loop, DiPerF-style: on a fixed
//! cadence it snapshots every series in a
//! [`MetricsRegistry`](inca_obs::metrics::MetricsRegistry) (via
//! [`sample`](inca_obs::metrics::MetricsRegistry::sample)) and records
//! it into the depot's [`ArchiveStore`] under a `self:`-prefixed
//! series name, using tiered multi-resolution layouts
//! ([`ArchiveStore::record_tiered`]) so a year of framework history
//! stays cheap. Because they are ordinary archive series, the
//! [`TemporalQuery`](crate::temporal::TemporalQuery) surface —
//! windowed aggregates, multi-resolution fetches, incident bounds —
//! works on them unchanged.
//!
//! Naming scheme (labels render sorted, inside `{…}`):
//!
//! | instrument | series recorded |
//! |---|---|
//! | gauge | `self:<name>[{k=v,…}]` (the value) |
//! | counter | `self:<name>[{k=v,…}]:rate` (per-second delta) |
//! | histogram | `self:<name>[{k=v,…}]:p50`, `…:p99`, `…:count_rate` |
//!
//! Counter and count rates need two scrapes before their first point
//! (a rate is a delta); gauges and quantiles record from the first
//! pass. Empty histograms are skipped entirely.

use std::collections::BTreeMap;
use std::sync::Arc;

use inca_obs::metrics::{Counter, Gauge, SampleValue};
use inca_obs::Obs;
use inca_report::Timestamp;
use inca_rrd::ArchivePolicy;

use crate::depot::archive::ArchiveStore;

/// Prefix distinguishing self-scraped framework series from resource
/// series in the shared archive namespace.
pub const SELF_SERIES_PREFIX: &str = "self:";

/// Default tiered layout for self-scraped series: raw samples for a
/// week, 6× consolidation for 90 days, 36× for a year (mirroring the
/// classic RRDTool tiering the availability archives use).
pub const SELF_SCRAPE_TIERS: [(u32, u64); 2] = [(6, 90 * 86_400), (36, 365 * 86_400)];

/// Periodically samples a metrics registry into archive series. See
/// the [module docs](self) for the naming scheme.
#[derive(Debug)]
pub struct MetricsScraper {
    obs: Obs,
    period_secs: u64,
    policy: ArchivePolicy,
    tiers: Vec<(u32, u64)>,
    /// Last seen cumulative count per rate series (counter values and
    /// histogram counts), with its sample time.
    prev: BTreeMap<String, (u64, Timestamp)>,
    /// `inca_scrape_passes_total`.
    passes: Arc<Counter>,
    /// `inca_scrape_series` — series written by the latest pass.
    series_gauge: Arc<Gauge>,
}

impl MetricsScraper {
    /// A scraper sampling `obs`'s registry every `period_secs`
    /// (the caller owns the cadence — [`MetricsScraper::scrape`] does
    /// the work whenever invoked; the period only sizes the archives).
    /// Uses a one-week raw window with [`SELF_SCRAPE_TIERS`] rollups.
    pub fn new(obs: &Obs, period_secs: u64) -> MetricsScraper {
        MetricsScraper {
            obs: obs.clone(),
            period_secs: period_secs.max(1),
            policy: ArchivePolicy::every("self-scrape", 7 * 86_400),
            tiers: SELF_SCRAPE_TIERS.to_vec(),
            prev: BTreeMap::new(),
            passes: obs.metrics().counter(
                "inca_scrape_passes_total",
                "Completed self-scrape passes over the metrics registry.",
            ),
            series_gauge: obs.metrics().gauge(
                "inca_scrape_series",
                "Archive series written by the most recent self-scrape pass.",
            ),
        }
    }

    /// Overrides the default archive layout (base policy + tiers).
    pub fn with_layout(mut self, policy: ArchivePolicy, tiers: &[(u32, u64)]) -> MetricsScraper {
        self.policy = policy;
        self.tiers = tiers.to_vec();
        self
    }

    /// The scrape cadence the archives are sized for.
    pub fn period_secs(&self) -> u64 {
        self.period_secs
    }

    /// Runs one scrape pass at time `now`: every registered series is
    /// sampled and recorded into `archive`. Returns how many archive
    /// series were written this pass.
    pub fn scrape(&mut self, archive: &mut ArchiveStore, now: Timestamp) -> usize {
        self.passes.inc();
        let mut written = 0;
        for series in self.obs.metrics().sample() {
            let base = series_name(&series.name, &series.labels);
            match series.value {
                SampleValue::Gauge(v) => {
                    self.record(archive, &base, now, v);
                    written += 1;
                }
                SampleValue::Counter(count) => {
                    written += self.record_rate(archive, format!("{base}:rate"), now, count);
                }
                SampleValue::Histogram { count, sum: _, p50, p99 } => {
                    if count == 0 {
                        continue;
                    }
                    if let Some(p50) = p50 {
                        self.record(archive, &format!("{base}:p50"), now, p50);
                        written += 1;
                    }
                    if let Some(p99) = p99 {
                        self.record(archive, &format!("{base}:p99"), now, p99);
                        written += 1;
                    }
                    written +=
                        self.record_rate(archive, format!("{base}:count_rate"), now, count);
                }
            }
        }
        self.series_gauge.set(written as f64);
        written
    }

    fn record(&self, archive: &mut ArchiveStore, series: &str, now: Timestamp, value: f64) {
        archive.record_tiered(series, &self.policy, self.period_secs, &self.tiers, now, value);
    }

    /// Records the per-second rate of a cumulative count, once a
    /// previous sample exists. Returns the number of points written
    /// (0 or 1).
    fn record_rate(
        &mut self,
        archive: &mut ArchiveStore,
        series: String,
        now: Timestamp,
        count: u64,
    ) -> usize {
        let prev = self.prev.insert(series.clone(), (count, now));
        let Some((prev_count, prev_t)) = prev else { return 0 };
        let dt = now - prev_t;
        if dt == 0 {
            return 0;
        }
        // A counter reset (restart) would make the delta negative;
        // clamp to the new cumulative value, as RRDTool does.
        let delta = count.saturating_sub(prev_count).min(count);
        self.record(archive, &series, now, delta as f64 / dt as f64);
        1
    }
}

/// `self:<name>` with sorted labels rendered as `{k=v,…}` when present.
fn series_name(name: &str, labels: &[(String, String)]) -> String {
    let mut out = format!("{SELF_SERIES_PREFIX}{name}");
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push('=');
            out.push_str(v);
        }
        out.push('}');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use inca_rrd::ConsolidationFn;

    fn setup() -> (Obs, ArchiveStore, MetricsScraper) {
        let obs = Obs::new();
        let archive = ArchiveStore::with_obs(&obs);
        let scraper = MetricsScraper::new(&obs, 60);
        (obs, archive, scraper)
    }

    #[test]
    fn gauges_record_from_first_pass_counters_need_two() {
        let (obs, mut archive, mut scraper) = setup();
        let depth = obs.metrics().gauge("inca_daemon_spool_depth", "depth");
        let fires = obs.metrics().counter("inca_daemon_retries_total", "fires");
        depth.set(3.0);
        fires.add(120);

        let t0 = Timestamp::from_secs(600_000);
        scraper.scrape(&mut archive, t0);
        assert!(archive
            .fetch_series("self:inca_daemon_spool_depth", ConsolidationFn::Average, t0 - 60, t0)
            .is_some());
        assert!(
            archive.fetch_series(
                "self:inca_daemon_retries_total:rate",
                ConsolidationFn::Average,
                t0 - 60,
                t0
            )
            .is_none(),
            "a rate needs two samples"
        );

        fires.add(60);
        depth.set(5.0);
        let t1 = t0 + 60;
        scraper.scrape(&mut archive, t1);
        let rate = archive
            .fetch_series(
                "self:inca_daemon_retries_total:rate",
                ConsolidationFn::Average,
                t0,
                t1,
            )
            .expect("rate series exists after second pass");
        let points: Vec<f64> = rate.known_points().map(|(_, v)| v).collect();
        assert!(
            points.iter().any(|v| (v - 1.0).abs() < 1e-9),
            "60 fires over 60s is 1/s, got {points:?}"
        );
    }

    #[test]
    fn histograms_scrape_quantiles_and_skip_when_empty() {
        let (obs, mut archive, mut scraper) = setup();
        let hist = obs.metrics().histogram(
            "inca_depot_insert_seconds",
            "insert latency",
            &inca_obs::metrics::DEFAULT_LATENCY_BOUNDS,
        );
        let t0 = Timestamp::from_secs(600_000);
        scraper.scrape(&mut archive, t0);
        assert!(
            !archive.series_names().iter().any(|s| s.contains("insert_seconds")),
            "empty histograms are skipped"
        );

        for _ in 0..100 {
            hist.observe(0.004);
        }
        let t1 = t0 + 60;
        scraper.scrape(&mut archive, t1);
        for suffix in ["p50", "p99"] {
            assert!(
                archive
                    .fetch_series(
                        &format!("self:inca_depot_insert_seconds:{suffix}"),
                        ConsolidationFn::Average,
                        t0,
                        t1,
                    )
                    .is_some(),
                "missing {suffix} series; have {:?}",
                archive.series_names()
            );
        }
    }

    #[test]
    fn labelled_series_get_stable_names_and_scraper_observes_itself() {
        let (obs, mut archive, mut scraper) = setup();
        obs.metrics()
            .gauge_with("inca_health_alert", &[("rule", "spool"), ("subject", "d1")], "alert")
            .set(1.0);
        let t0 = Timestamp::from_secs(600_000);
        let written = scraper.scrape(&mut archive, t0);
        assert!(written >= 2, "labelled gauge + scraper's own gauge");
        assert!(archive
            .series_names()
            .iter()
            .any(|s| s == "self:inca_health_alert{rule=spool,subject=d1}"));

        // Two passes in: the scraper's own pass counter has a rate
        // series — Inca monitoring Inca monitoring Inca.
        scraper.scrape(&mut archive, t0 + 60);
        assert!(archive
            .series_names()
            .iter()
            .any(|s| s == "self:inca_scrape_passes_total:rate"));
    }
}
