//! Response-time and report-size statistics.
//!
//! Table 4 reports depot response-time statistics per report-size
//! bucket (mean/std/min/max/median and update counts) over a one-week
//! observation; Figure 8 is the histogram of received report sizes.
//! [`ResponseStats`] collects both from the live depot.
//!
//! The bucketing and summary math (population standard deviation,
//! midpoint median) live in [`inca_obs::hist::SampleHistogram`] — this
//! module defines the paper's bucket bounds and adapts the shared
//! histogram's summaries into Table 4 rows, so Table 4 and Figure 8
//! come from one source of truth.

use inca_obs::hist::SampleHistogram;

/// Table 4's report-size buckets in bytes: 0–4 KB … 40–50 KB.
pub const SIZE_BUCKETS: [(usize, usize); 6] = [
    (0, 4 * 1024),
    (4 * 1024, 10 * 1024),
    (10 * 1024, 20 * 1024),
    (20 * 1024, 30 * 1024),
    (30 * 1024, 40 * 1024),
    (40 * 1024, 50 * 1024),
];

/// Summary statistics for one size bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketStats {
    /// Bucket bounds in bytes.
    pub bucket: (usize, usize),
    /// Number of updates.
    pub count: usize,
    /// Mean response time in seconds.
    pub mean: f64,
    /// Population standard deviation in seconds.
    pub std_dev: f64,
    /// Minimum in seconds.
    pub min: f64,
    /// Maximum in seconds.
    pub max: f64,
    /// Median in seconds.
    pub median: f64,
}

/// Collects per-bucket response times and aggregate volume counters.
#[derive(Debug, Clone)]
pub struct ResponseStats {
    /// Response-time samples (seconds) bucketed by report size;
    /// oversize reports land in the histogram's overflow count.
    hist: SampleHistogram,
    /// Total reports recorded.
    reports: u64,
    /// Total bytes recorded.
    bytes: u64,
}

impl ResponseStats {
    /// An empty collector.
    pub fn new() -> ResponseStats {
        ResponseStats { hist: SampleHistogram::new(&SIZE_BUCKETS), reports: 0, bytes: 0 }
    }

    /// Index of the bucket for `size` bytes.
    pub fn bucket_index(size: usize) -> Option<usize> {
        SIZE_BUCKETS.iter().position(|&(lo, hi)| size >= lo && size < hi)
    }

    /// Records one update.
    pub fn record(&mut self, report_size: usize, response_secs: f64) {
        self.reports += 1;
        self.bytes += report_size as u64;
        self.hist.record(report_size, response_secs);
    }

    /// Total reports recorded (§5.2.1's 151,955).
    pub fn report_count(&self) -> u64 {
        self.reports
    }

    /// Total bytes recorded (§5.2.1's 259.36 MB).
    pub fn bytes_received(&self) -> u64 {
        self.bytes
    }

    /// Reports larger than the largest bucket.
    pub fn oversize_count(&self) -> usize {
        self.hist.overflow_count()
    }

    /// Statistics for bucket `i`, or `None` if it has no samples.
    pub fn bucket_stats(&self, i: usize) -> Option<BucketStats> {
        let s = self.hist.summary(i)?;
        Some(BucketStats {
            bucket: s.bucket,
            count: s.count,
            mean: s.mean,
            std_dev: s.std_dev,
            min: s.min,
            max: s.max,
            median: s.median,
        })
    }

    /// All non-empty buckets in order — the rows of Table 4.
    pub fn table4(&self) -> Vec<BucketStats> {
        (0..SIZE_BUCKETS.len()).filter_map(|i| self.bucket_stats(i)).collect()
    }

    /// Update counts per bucket (including empty ones) — Figure 8's
    /// histogram data.
    pub fn size_histogram(&self) -> Vec<((usize, usize), usize)> {
        self.hist.counts()
    }

    /// Fraction of recorded reports smaller than `threshold` bytes
    /// (Figure 8's "97.64% of the reports received were small, less
    /// than 10 KB").
    pub fn fraction_below(&self, threshold: usize) -> f64 {
        if self.reports == 0 {
            return 0.0;
        }
        self.hist.bucketed_below(threshold) as f64 / self.reports as f64
    }
}

impl Default for ResponseStats {
    fn default() -> ResponseStats {
        ResponseStats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing() {
        assert_eq!(ResponseStats::bucket_index(0), Some(0));
        assert_eq!(ResponseStats::bucket_index(851), Some(0));
        assert_eq!(ResponseStats::bucket_index(4 * 1024), Some(1));
        assert_eq!(ResponseStats::bucket_index(9_257), Some(1));
        assert_eq!(ResponseStats::bucket_index(23_168), Some(3));
        assert_eq!(ResponseStats::bucket_index(45_527), Some(5));
        assert_eq!(ResponseStats::bucket_index(51 * 1024), None);
    }

    #[test]
    fn static_and_histogram_bucketing_agree() {
        let stats = ResponseStats::new();
        for size in [0, 851, 4 * 1024, 9_257, 23_168, 45_527, 51 * 1024, usize::MAX] {
            assert_eq!(
                ResponseStats::bucket_index(size),
                stats.hist.bucket_index(size),
                "divergent bucketing for size {size}"
            );
        }
    }

    #[test]
    fn stats_computation() {
        let mut stats = ResponseStats::new();
        for v in [1.0, 2.0, 3.0, 4.0, 10.0] {
            stats.record(1_000, v);
        }
        let b = stats.bucket_stats(0).unwrap();
        assert_eq!(b.count, 5);
        assert_eq!(b.mean, 4.0);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.max, 10.0);
        assert_eq!(b.median, 3.0);
        assert!((b.std_dev - 3.162).abs() < 0.01);
    }

    #[test]
    fn even_count_median_interpolates() {
        let mut stats = ResponseStats::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            stats.record(100, v);
        }
        assert_eq!(stats.bucket_stats(0).unwrap().median, 2.5);
    }

    #[test]
    fn empty_buckets_skipped_in_table4() {
        let mut stats = ResponseStats::new();
        stats.record(851, 0.5);
        stats.record(45_527, 2.0);
        let rows = stats.table4();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].bucket, SIZE_BUCKETS[0]);
        assert_eq!(rows[1].bucket, SIZE_BUCKETS[5]);
    }

    #[test]
    fn aggregate_counters() {
        let mut stats = ResponseStats::new();
        stats.record(1_000, 0.1);
        stats.record(2_000, 0.2);
        stats.record(60 * 1024, 0.3); // oversize
        assert_eq!(stats.report_count(), 3);
        assert_eq!(stats.bytes_received(), 1_000 + 2_000 + 60 * 1024);
        assert_eq!(stats.oversize_count(), 1);
    }

    #[test]
    fn fraction_below_threshold() {
        let mut stats = ResponseStats::new();
        for _ in 0..97 {
            stats.record(1_000, 0.1);
        }
        for _ in 0..3 {
            stats.record(25_000, 1.0);
        }
        assert!((stats.fraction_below(10 * 1024) - 0.97).abs() < 1e-9);
        assert_eq!(ResponseStats::new().fraction_below(10_240), 0.0);
    }

    #[test]
    fn histogram_covers_all_buckets() {
        let mut stats = ResponseStats::new();
        stats.record(851, 0.1);
        let hist = stats.size_histogram();
        assert_eq!(hist.len(), SIZE_BUCKETS.len());
        assert_eq!(hist[0].1, 1);
        assert!(hist[1..].iter().all(|&(_, n)| n == 0));
    }
}
