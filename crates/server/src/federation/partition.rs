//! The partition map: which depot owns which site.
//!
//! Routing uses rendezvous (highest-random-weight) hashing: every
//! `(partition, key)` pair gets a deterministic pseudo-random weight
//! and the key belongs to the partition with the highest weight. The
//! payoff over modulo hashing is *minimal movement on rebalance* —
//! adding a partition moves only the keys whose new partition wins
//! their weight contest (≈ 1/(n+1) of them), and removing one moves
//! only the keys it owned. A VO operator can grow the depot tier
//! without re-homing (and re-forwarding) the whole federation.

use inca_report::BranchId;

/// Deterministic site/VO-prefix → depot-partition routing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionMap {
    /// Partition names, sorted and deduplicated; never empty.
    partitions: Vec<String>,
}

impl PartitionMap {
    /// A map over the given partitions (order-insensitive; duplicates
    /// collapse).
    ///
    /// # Panics
    ///
    /// When `partitions` is empty: a federation with no depots cannot
    /// route anything.
    pub fn new<I, S>(partitions: I) -> PartitionMap
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut partitions: Vec<String> = partitions.into_iter().map(Into::into).collect();
        partitions.sort();
        partitions.dedup();
        assert!(!partitions.is_empty(), "a partition map needs at least one partition");
        PartitionMap { partitions }
    }

    /// Partition names, sorted.
    pub fn partitions(&self) -> &[String] {
        &self.partitions
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// Always false (construction rejects the empty map); present for
    /// the conventional pairing with [`PartitionMap::len`].
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// The partition owning `key` — the highest-weight partition for
    /// this key. Deterministic: every depot and every client computing
    /// this map agrees on ownership with no coordination.
    pub fn partition_for(&self, key: &str) -> &str {
        self.partitions
            .iter()
            .max_by_key(|p| weight(p, key))
            .expect("map is never empty")
    }

    /// The partition owning a report addressed by `branch`, routed by
    /// its [`routing_key`].
    pub fn route(&self, branch: &BranchId) -> &str {
        self.partition_for(routing_key(branch))
    }

    /// A new map with `name` added (rebalances ≈ 1/(n+1) of keys onto
    /// the newcomer; every other key keeps its partition).
    pub fn with_partition(&self, name: impl Into<String>) -> PartitionMap {
        PartitionMap::new(self.partitions.iter().cloned().chain([name.into()]))
    }

    /// A new map with `name` removed (only its keys move; everyone
    /// else stays put).
    ///
    /// # Panics
    ///
    /// When removing the last partition.
    pub fn without_partition(&self, name: &str) -> PartitionMap {
        PartitionMap::new(self.partitions.iter().filter(|p| p.as_str() != name).cloned())
    }
}

/// The component of `branch` that decides depot ownership: the site
/// (so one site's reports — and its rollup — always share a depot),
/// falling back to the VO for site-less branches, then to the most
/// general component so every branch routes somewhere deterministic.
pub fn routing_key(branch: &BranchId) -> &str {
    branch
        .get("site")
        .or_else(|| branch.get("vo"))
        .or_else(|| branch.hierarchy().next().map(|(_, value)| value))
        .unwrap_or("")
}

/// Rendezvous weight of `(partition, key)`: FNV-1a over both strings,
/// finished SplitMix64-style so single-bit input differences diffuse
/// across the whole weight.
fn weight(partition: &str, key: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in partition.bytes().chain([0xFF]).chain(key.bytes()) {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
    }
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(n: usize) -> PartitionMap {
        PartitionMap::new((0..n).map(|i| format!("depot{i}")))
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let m = map(8);
        for i in 0..500 {
            let key = format!("site{i}");
            let owner = m.partition_for(&key).to_string();
            assert_eq!(m.partition_for(&key), owner, "same key, same owner");
            assert!(m.partitions().contains(&owner));
        }
    }

    #[test]
    fn construction_order_does_not_matter() {
        let a = PartitionMap::new(["b", "a", "c"]);
        let b = PartitionMap::new(["c", "a", "b", "a"]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }

    #[test]
    fn keys_spread_over_partitions() {
        let m = map(8);
        let mut counts = std::collections::BTreeMap::new();
        for i in 0..800 {
            *counts.entry(m.partition_for(&format!("site{i}")).to_string()).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 8, "every partition owns something");
        // 800 keys over 8 partitions: expect ~100 each; a partition
        // under 40 or over 200 would mean the hash is badly skewed.
        for (partition, count) in counts {
            assert!((40..=200).contains(&count), "{partition} owns {count} of 800");
        }
    }

    #[test]
    fn adding_a_partition_moves_only_keys_it_wins() {
        let before = map(8);
        let after = before.with_partition("depot8");
        let mut moved = 0;
        for i in 0..800 {
            let key = format!("site{i}");
            let (old, new) = (before.partition_for(&key), after.partition_for(&key));
            if old != new {
                assert_eq!(new, "depot8", "a moved key may only move to the newcomer");
                moved += 1;
            }
        }
        // Expect ≈ 800/9 ≈ 89 moves; anything over a quarter of the
        // keys would be modulo-hash-style reshuffling.
        assert!(moved > 0 && moved < 200, "moved {moved} of 800");
    }

    #[test]
    fn removing_a_partition_moves_only_its_keys() {
        let before = map(8);
        let after = before.without_partition("depot3");
        for i in 0..800 {
            let key = format!("site{i}");
            let old = before.partition_for(&key);
            if old != "depot3" {
                assert_eq!(after.partition_for(&key), old, "surviving owner keeps its keys");
            } else {
                assert_ne!(after.partition_for(&key), "depot3");
            }
        }
    }

    #[test]
    fn routing_key_prefers_site_then_vo() {
        let b: BranchId = "reporter=r,resource=h,site=sdsc,vo=tg".parse().unwrap();
        assert_eq!(routing_key(&b), "sdsc");
        let b: BranchId = "reporter=r,vo=tg".parse().unwrap();
        assert_eq!(routing_key(&b), "tg");
        let b: BranchId = "reporter=r".parse().unwrap();
        assert_eq!(routing_key(&b), "r");
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn empty_map_is_rejected() {
        PartitionMap::new(Vec::<String>::new());
    }
}
