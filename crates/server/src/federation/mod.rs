//! The federated depot tier: many depots, one query plane.
//!
//! The paper runs a single depot on `inca.sdsc.edu`; this module
//! scales that out. A [`PartitionMap`] (rendezvous hashing over
//! site/VO keys) assigns every branch to one of N depot partitions,
//! each a full [`CentralizedController`] — allowlist, seq dedup,
//! archive rules and all — so a partition is simply *the* server for
//! the sites it owns. Three planes tie the partitions back into one
//! logical depot:
//!
//! * **Ingest**: [`Federation::submit`]/[`Federation::submit_batch`]
//!   route each submission to the owning partition; the exactly-once
//!   contract is unchanged because each daemon's `(daemon_id, seq)`
//!   stream lands wholly on one partition's `DedupIndex`.
//! * **Query**: [`Federation::global_document`] fans out to every
//!   partition and merges in canonical sibling order
//!   ([`QueryInterface::merged_document`]) — byte-identical to what a
//!   single depot holding every report would serve — memoized on the
//!   per-partition cache generations so repeated global queries cost
//!   O(1) until something changes. Site-scoped queries route to the
//!   one owning partition and stay O(result).
//! * **Aggregation**: [`Federation::site_rollups`] condenses each
//!   site's current reports into one per-site availability report;
//!   forwarded up through a `DepotRelay` (the controller crate's
//!   exactly-once spool over a `Transport`), a parent depot archives
//!   them under [`rollup_rule`] and answers VO-scope compliance
//!   windows from `TemporalQuery::federated_aggregate` without ever
//!   materializing a leaf document.

mod partition;

pub use partition::{routing_key, PartitionMap};

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use inca_obs::metrics::{Counter, Gauge, Histogram, DEFAULT_LATENCY_BOUNDS};
use inca_obs::Obs;
use inca_report::{BranchId, ReportBuilder, Timestamp};
use inca_rrd::ArchivePolicy;
use inca_wire::envelope::EnvelopeMode;
use inca_wire::message::{ClientMessage, ServerResponse};

use crate::controller::{CentralizedController, ControllerConfig};
use crate::depot::archive::ArchiveRule;
use crate::depot::cache::CacheError;
use crate::depot::depot::{Depot, DepotTiming};
use crate::query::QueryInterface;

/// Branch component marking a federated per-site rollup report
/// (`scope=fed.rollup.availability`), placed adjacent to `vo=` so an
/// archive rule's suffix query can select rollups — and only rollups
/// — VO-wide.
pub const ROLLUP_SCOPE: &str = "fed.rollup.availability";

/// Name of the parent-side archive rule ingesting rollups; rule-fed
/// series list as `fed-availability:{branch}`.
pub const ROLLUP_RULE_NAME: &str = "fed-availability";

/// Shape of the federated depot tier.
#[derive(Debug, Clone)]
pub struct FederationConfig {
    /// Depot partition names (the partition map's universe).
    pub partitions: Vec<String>,
    /// Envelope packing used by every partition's controller.
    pub envelope_mode: EnvelopeMode,
    /// Upper bound on any single partition's cache bytes; checked by
    /// [`Federation::over_bound_partitions`] (`None` = unbounded).
    pub cache_byte_bound: Option<usize>,
    /// The VO the rollup branches carry (`vo=` component).
    pub vo: String,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            partitions: (0..8).map(|i| format!("depot{i}")).collect(),
            envelope_mode: EnvelopeMode::Body,
            cache_byte_bound: None,
            vo: "tg".into(),
        }
    }
}

/// A tier of depot partitions behind one submit/query plane.
pub struct Federation {
    map: PartitionMap,
    /// Partition name → its controller. Each partition carries its own
    /// [`Obs`] so identically-named depot metrics do not clobber each
    /// other across partitions; federation-level metrics live in the
    /// handle passed to [`Federation::new`].
    depots: BTreeMap<String, Arc<CentralizedController>>,
    config: FederationConfig,
    /// Memoized global document, keyed by the per-partition cache
    /// generations it was merged from.
    memo: Mutex<Option<(Vec<u64>, String)>>,
    largest_cache: Arc<Gauge>,
    global_queries: Arc<Counter>,
    merge_hist: Arc<Histogram>,
    leaf_materializations: Arc<Counter>,
    rollup_reports: Arc<Counter>,
}

impl Federation {
    /// Builds the tier: one depot + controller per configured
    /// partition. Partition allowlists default to allow-all (the
    /// federation fronts them behind its own routing); tighten via
    /// [`Federation::controller`] + `with_depot_mut` as needed.
    pub fn new(config: FederationConfig, obs: Obs) -> Federation {
        let map = PartitionMap::new(config.partitions.iter().cloned());
        let depots = map
            .partitions()
            .iter()
            .map(|name| {
                let controller_config = ControllerConfig {
                    envelope_mode: config.envelope_mode,
                    ..ControllerConfig::default()
                };
                let depot = Depot::with_obs(Obs::new());
                (name.clone(), Arc::new(CentralizedController::new(controller_config, depot)))
            })
            .collect();
        let metrics = obs.metrics();
        // Set once at construction; the registry keeps it alive.
        metrics
            .gauge("inca_fed_partitions", "Depot partitions in the federation's partition map.")
            .set(map.len() as f64);
        let largest_cache = metrics.gauge(
            "inca_fed_largest_cache_bytes",
            "Cache bytes of the largest depot partition.",
        );
        let global_queries = metrics.counter(
            "inca_fed_global_queries_total",
            "Global (all-partition) document queries answered.",
        );
        let merge_hist = metrics.histogram(
            "inca_fed_merge_seconds",
            "Time merging per-partition report sets into the global document.",
            &DEFAULT_LATENCY_BOUNDS,
        );
        let leaf_materializations = metrics.counter(
            "inca_fed_leaf_materializations_total",
            "Leaf reports materialized out of partition caches to answer \
             federation-level queries (stays flat when rollups answer instead).",
        );
        let rollup_reports = metrics.counter(
            "inca_fed_rollup_reports_total",
            "Per-site rollup reports produced for forwarding to a parent depot.",
        );
        Federation {
            map,
            depots,
            config,
            memo: Mutex::new(None),
            largest_cache,
            global_queries,
            merge_hist,
            leaf_materializations,
            rollup_reports,
        }
    }

    /// The routing map.
    pub fn partition_map(&self) -> &PartitionMap {
        &self.map
    }

    /// The federation's configuration.
    pub fn config(&self) -> &FederationConfig {
        &self.config
    }

    /// The controller of one partition, for serving it behind a
    /// network frontend or uploading archive rules.
    pub fn controller(&self, partition: &str) -> Option<&Arc<CentralizedController>> {
        self.depots.get(partition)
    }

    /// The partition owning `branch`.
    pub fn route(&self, branch: &BranchId) -> &str {
        self.map.route(branch)
    }

    /// Routes one framed submission to the owning partition.
    ///
    /// The payload is decoded *only* to learn its branch; the owning
    /// controller re-runs full admission (allowlist, dedup, envelope)
    /// on the original bytes. An undecodable payload is rejected here
    /// — there is no partition it could belong to.
    pub fn submit(
        &self,
        peer_host: &str,
        payload: &[u8],
        now: Timestamp,
    ) -> (ServerResponse, Option<DepotTiming>) {
        let message = match ClientMessage::decode(payload) {
            Ok(m) => m,
            Err(e) => return (ServerResponse::Rejected(format!("unroutable: {e}")), None),
        };
        let partition = self.map.route(&message.branch);
        let controller = &self.depots[partition];
        let result = controller.submit(peer_host, payload, now);
        self.sync_gauges();
        result
    }

    /// Routes a burst of `(peer_host, payload)` submissions, one depot
    /// batch per owning partition, returning responses in input order.
    pub fn submit_batch(
        &self,
        submissions: &[(String, Vec<u8>)],
        now: Timestamp,
    ) -> Vec<(ServerResponse, Option<DepotTiming>)> {
        let mut results: Vec<Option<(ServerResponse, Option<DepotTiming>)>> =
            (0..submissions.len()).map(|_| None).collect();
        // Group per partition preserving input order within each
        // group; BTreeMap keeps the partition visit order stable.
        let mut groups: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (index, (_, payload)) in submissions.iter().enumerate() {
            match ClientMessage::decode(payload) {
                Ok(message) => {
                    groups.entry(self.map.route(&message.branch)).or_default().push(index)
                }
                Err(e) => {
                    results[index] =
                        Some((ServerResponse::Rejected(format!("unroutable: {e}")), None));
                }
            }
        }
        for (partition, indices) in groups {
            let batch: Vec<(String, Vec<u8>)> =
                indices.iter().map(|&i| submissions[i].clone()).collect();
            let outcomes = self.depots[partition].submit_batch(&batch, now);
            for (index, outcome) in indices.into_iter().zip(outcomes) {
                results[index] = Some(outcome);
            }
        }
        self.sync_gauges();
        results.into_iter().map(|r| r.expect("every submission resolved")).collect()
    }

    /// The global cache document: every partition's reports, merged in
    /// canonical sibling order — byte-identical to a single depot
    /// holding the same reports.
    ///
    /// Memoized on the vector of per-partition cache generations:
    /// while no partition ingests, repeated global queries return the
    /// cached merge without materializing anything. A miss counts
    /// every materialized leaf report in
    /// `inca_fed_leaf_materializations_total`.
    pub fn global_document(&self) -> Result<String, CacheError> {
        self.global_queries.inc();
        let mut generations = Vec::with_capacity(self.depots.len());
        let mut sets: Vec<Vec<(BranchId, String)>> = Vec::with_capacity(self.depots.len());
        {
            let mut memo = self.memo.lock().expect("federation memo");
            // First pass: generations only, to test the memo without
            // touching any report.
            for controller in self.depots.values() {
                generations.push(controller.with_depot(|d| d.cache().generation()));
            }
            if let Some((memo_generations, document)) = memo.as_ref() {
                if *memo_generations == generations {
                    return Ok(document.clone());
                }
            }
            // Stale: re-read generation and reports together per
            // partition so the memo key matches what was merged.
            generations.clear();
            for controller in self.depots.values() {
                let (generation, reports) = controller.with_depot(
                    |d| -> Result<_, CacheError> {
                        Ok((d.cache().generation(), d.query_reports(None)?.0))
                    },
                )?;
                generations.push(generation);
                self.leaf_materializations.add(reports.len() as u64);
                sets.push(reports);
            }
            let started = Instant::now();
            let document = QueryInterface::merged_document(&sets)?;
            self.merge_hist.observe_duration(started.elapsed());
            *memo = Some((generations, document.clone()));
            Ok(document)
        }
    }

    /// Cached reports matching a suffix query, across the federation,
    /// sorted by branch for a deterministic merge order.
    ///
    /// A query naming a `site` routes to the one owning partition
    /// (O(result)); anything broader fans out to every partition and
    /// counts the materialized leaves.
    pub fn reports(
        &self,
        query: Option<&BranchId>,
    ) -> Result<Vec<(BranchId, String)>, CacheError> {
        let mut out: Vec<(BranchId, String)> = Vec::new();
        match query.and_then(|q| q.get("site")) {
            Some(site) => {
                let partition = self.map.partition_for(site);
                out = self.depots[partition].with_depot(|d| d.query_reports(query))?.0;
            }
            None => {
                for controller in self.depots.values() {
                    let set = controller.with_depot(|d| d.query_reports(query))?.0;
                    self.leaf_materializations.add(set.len() as u64);
                    out.extend(set);
                }
            }
        }
        out.sort_by(|(a, _), (b, _)| a.to_string().cmp(&b.to_string()));
        Ok(out)
    }

    /// Condenses each site's cached reports into one availability
    /// rollup report per site (percentage of the site's reports whose
    /// exit status is success), addressed on
    /// `site={site},scope=fed.rollup.availability,vo={vo}` and ready
    /// to forward to a parent depot through a `DepotRelay`. Reports
    /// already marked with the rollup scope are excluded, so a parent
    /// that is itself federated never rolls up rollups.
    pub fn site_rollups(&self, now: Timestamp) -> Vec<ClientMessage> {
        // site → (successes, total), across every partition.
        let mut per_site: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for controller in self.depots.values() {
            let reports = match controller.with_depot(|d| d.query_reports(None)) {
                Ok((reports, _)) => reports,
                Err(_) => continue,
            };
            for (branch, xml) in reports {
                if branch.get("scope") == Some(ROLLUP_SCOPE) {
                    continue;
                }
                let site = match branch.get("site") {
                    Some(site) => site.to_string(),
                    None => continue,
                };
                let success = inca_report::Report::parse(&xml)
                    .map(|r| r.is_success())
                    .unwrap_or(false);
                let entry = per_site.entry(site).or_insert((0, 0));
                entry.1 += 1;
                if success {
                    entry.0 += 1;
                }
            }
        }
        let mut rollups = Vec::with_capacity(per_site.len());
        for (site, (successes, total)) in per_site {
            let availability = 100.0 * successes as f64 / total.max(1) as f64;
            let report = ReportBuilder::new(ROLLUP_SCOPE, "1")
                .gmt(now)
                .body_value("availability", format!("{availability:.4}"))
                .success()
                .expect("rollup report is statically well-formed");
            let branch = rollup_branch(&site, &self.config.vo);
            let partition = self.map.partition_for(&site).to_string();
            rollups.push(ClientMessage::report(partition, branch, &report));
        }
        self.rollup_reports.add(rollups.len() as u64);
        rollups
    }

    /// Total cached reports across all partitions.
    pub fn report_count(&self) -> usize {
        self.depots
            .values()
            .map(|c| c.with_depot(|d| d.cache().report_count()))
            .sum()
    }

    /// Cache bytes of the largest partition.
    pub fn largest_cache_bytes(&self) -> usize {
        self.depots
            .values()
            .map(|c| c.with_depot(|d| d.cache().size_bytes()))
            .max()
            .unwrap_or(0)
    }

    /// Partitions whose cache exceeds the configured byte bound, with
    /// their sizes. Empty when unbounded or everyone fits.
    pub fn over_bound_partitions(&self) -> Vec<(String, usize)> {
        let bound = match self.config.cache_byte_bound {
            Some(bound) => bound,
            None => return Vec::new(),
        };
        self.depots
            .iter()
            .filter_map(|(name, controller)| {
                let bytes = controller.with_depot(|d| d.cache().size_bytes());
                (bytes > bound).then(|| (name.clone(), bytes))
            })
            .collect()
    }

    /// Duplicate submissions absorbed across all partitions.
    pub fn duplicate_count(&self) -> u64 {
        self.depots.values().map(|c| c.duplicate_count()).sum()
    }

    fn sync_gauges(&self) {
        self.largest_cache.set(self.largest_cache_bytes() as f64);
    }
}

/// The branch a site's rollup report is addressed on:
/// `site={site},scope=fed.rollup.availability,vo={vo}`. The scope
/// marker sits adjacent to `vo=` so [`rollup_rule`]'s *suffix* query
/// matches every site's rollup and nothing else.
pub fn rollup_branch(site: &str, vo: &str) -> BranchId {
    BranchId::new([("site", site), ("scope", ROLLUP_SCOPE), ("vo", vo)])
        .expect("site/vo are valid branch values")
}

/// The parent-side archive rule ingesting forwarded rollups: one
/// rule-fed series per site branch, listed as
/// `fed-availability:{branch}`, which
/// `TemporalQuery::federated_aggregate("fed-availability:", …)`
/// combines into the VO-scope compliance answer. `period_secs` is the
/// rollup forwarding period.
pub fn rollup_rule(vo: &str, period_secs: u64) -> ArchiveRule {
    ArchiveRule {
        name: ROLLUP_RULE_NAME.into(),
        query: format!("scope={ROLLUP_SCOPE},vo={vo}")
            .parse()
            .expect("vo is a valid branch value"),
        path: "availability".parse().expect("static path"),
        policy: ArchivePolicy::every("fed-week", 7 * 86_400),
        period_secs,
    }
}

/// The series-name prefix selecting every site's rollup series on the
/// parent, for `federated_aggregate`.
pub fn rollup_series_prefix() -> String {
    format!("{ROLLUP_RULE_NAME}:")
}

#[cfg(test)]
mod tests {
    use super::*;
    use inca_report::Report;

    fn leaf_message(site: &str, host: &str, up: bool) -> ClientMessage {
        let builder = ReportBuilder::new("probe.avail", "1")
            .host(host)
            .gmt(Timestamp::from_secs(1000))
            .body_value("status", if up { "up" } else { "down" });
        let report =
            if up { builder.success() } else { builder.failure("probe failed") }.unwrap();
        let branch: BranchId =
            format!("reporter=probe.avail,resource={host},site={site},vo=tg")
                .parse()
                .unwrap();
        ClientMessage::report(host, branch, &report)
    }

    fn federation(partitions: usize) -> Federation {
        Federation::new(
            FederationConfig {
                partitions: (0..partitions).map(|i| format!("depot{i}")).collect(),
                ..FederationConfig::default()
            },
            Obs::new(),
        )
    }

    fn submit_all(fed: &Federation, messages: &[ClientMessage]) {
        let batch: Vec<(String, Vec<u8>)> =
            messages.iter().map(|m| (m.resource.clone(), m.encode())).collect();
        for (response, _) in fed.submit_batch(&batch, Timestamp::from_secs(1000)) {
            assert_eq!(response, ServerResponse::Ack);
        }
    }

    fn messages(sites: usize, hosts_per_site: usize) -> Vec<ClientMessage> {
        (0..sites)
            .flat_map(|s| {
                (0..hosts_per_site).map(move |h| {
                    leaf_message(
                        &format!("site{s:03}"),
                        &format!("host{h}.site{s:03}.example.org"),
                        (s + h) % 4 != 0,
                    )
                })
            })
            .collect()
    }

    #[test]
    fn submissions_route_by_site_and_spread() {
        let fed = federation(8);
        submit_all(&fed, &messages(40, 2));
        assert_eq!(fed.report_count(), 80);
        let occupied = fed
            .partition_map()
            .partitions()
            .iter()
            .filter(|p| {
                fed.controller(p).unwrap().with_depot(|d| d.cache().report_count()) > 0
            })
            .count();
        assert!(occupied >= 6, "40 sites should land on most of 8 partitions, got {occupied}");
    }

    #[test]
    fn same_site_always_lands_on_one_partition() {
        let fed = federation(8);
        submit_all(&fed, &messages(10, 3));
        for s in 0..10 {
            let site = format!("site{s:03}");
            let owner = fed.partition_map().partition_for(&site);
            let query: BranchId = format!("site={site},vo=tg").parse().unwrap();
            let held = fed.controller(owner).unwrap().with_depot(|d| {
                d.query_reports(Some(&query)).unwrap().0.len()
            });
            assert_eq!(held, 3, "all of {site}'s reports live on {owner}");
        }
    }

    #[test]
    fn global_document_is_byte_identical_to_single_depot_oracle() {
        let msgs = messages(24, 2);
        let fed = federation(8);
        submit_all(&fed, &msgs);

        let oracle = CentralizedController::new(
            ControllerConfig::default(),
            Depot::with_obs(Obs::new()),
        );
        for m in &msgs {
            let (response, _) =
                oracle.submit(&m.resource, &m.encode(), Timestamp::from_secs(1000));
            assert_eq!(response, ServerResponse::Ack);
        }
        let oracle_doc = oracle.with_depot(|d| d.cache().document().to_string());
        assert_eq!(fed.global_document().unwrap(), oracle_doc);
    }

    #[test]
    fn global_document_memoizes_until_ingest() {
        let fed = federation(4);
        submit_all(&fed, &messages(12, 1));
        let first = fed.global_document().unwrap();
        let materialized_after_first = fed.leaf_count();
        let second = fed.global_document().unwrap();
        assert_eq!(first, second);
        assert_eq!(
            fed.leaf_count(),
            materialized_after_first,
            "memo hit must not re-materialize leaves"
        );
        // New ingest invalidates the memo.
        submit_all(&fed, &[leaf_message("site999", "h.site999.example.org", true)]);
        let third = fed.global_document().unwrap();
        assert_ne!(third, second);
        assert!(fed.leaf_count() > materialized_after_first);
    }

    impl Federation {
        fn leaf_count(&self) -> u64 {
            self.leaf_materializations.get()
        }
    }

    #[test]
    fn site_scoped_reports_do_not_materialize_other_partitions() {
        let fed = federation(8);
        submit_all(&fed, &messages(20, 2));
        let before = fed.leaf_count();
        let query: BranchId = "site=site003,vo=tg".parse().unwrap();
        let got = fed.reports(Some(&query)).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(fed.leaf_count(), before, "site query is O(result), no fan-out");
    }

    #[test]
    fn site_rollups_summarize_each_site_once() {
        let fed = federation(8);
        // site000: host0 down, host1..3 up → 75%. site001: all up.
        submit_all(
            &fed,
            &[
                leaf_message("site000", "h0.site000", false),
                leaf_message("site000", "h1.site000", true),
                leaf_message("site000", "h2.site000", true),
                leaf_message("site000", "h3.site000", true),
                leaf_message("site001", "h0.site001", true),
            ],
        );
        let rollups = fed.site_rollups(Timestamp::from_secs(2000));
        assert_eq!(rollups.len(), 2);
        assert_eq!(rollups[0].branch, rollup_branch("site000", "tg"));
        let report = Report::parse(&rollups[0].report_xml).unwrap();
        let path: inca_xml::IncaPath = "availability".parse().unwrap();
        assert_eq!(report.body.lookup_text(&path).unwrap(), "75.0000");
        let report = Report::parse(&rollups[1].report_xml).unwrap();
        assert_eq!(report.body.lookup_text(&path).unwrap(), "100.0000");
        // Rollups of rollups are excluded: feeding them back into the
        // federation and rolling up again reproduces the same sites.
        submit_all(&fed, &rollups);
        let again = fed.site_rollups(Timestamp::from_secs(3000));
        assert_eq!(again.len(), 2, "rollup reports themselves are not rolled up");
    }

    #[test]
    fn rollup_rule_matches_rollup_branches_only() {
        let rule = rollup_rule("tg", 3600);
        assert!(rollup_branch("sdsc", "tg").matches_suffix(&rule.query));
        let leaf: BranchId =
            "reporter=probe.avail,resource=h,site=sdsc,vo=tg".parse().unwrap();
        assert!(!leaf.matches_suffix(&rule.query));
        assert_eq!(rollup_series_prefix(), "fed-availability:");
    }

    #[test]
    fn over_bound_partitions_reports_oversized_caches() {
        let mut config = FederationConfig {
            partitions: vec!["a".into(), "b".into()],
            ..FederationConfig::default()
        };
        config.cache_byte_bound = Some(1);
        let fed = Federation::new(config, Obs::new());
        submit_all(&fed, &messages(4, 1));
        let over = fed.over_bound_partitions();
        assert!(!over.is_empty(), "a 1-byte bound flags every occupied partition");
        for (_, bytes) in over {
            assert!(bytes > 1);
        }
        assert!(fed.largest_cache_bytes() > 1);
    }

    #[test]
    fn undecodable_submission_is_rejected_not_routed() {
        let fed = federation(2);
        let (response, timing) =
            fed.submit("h", b"not a message", Timestamp::from_secs(0));
        assert!(matches!(response, ServerResponse::Rejected(_)));
        assert!(timing.is_none());
        let results =
            fed.submit_batch(&[("h".into(), b"junk".to_vec())], Timestamp::from_secs(0));
        assert!(matches!(results[0].0, ServerResponse::Rejected(_)));
    }
}
