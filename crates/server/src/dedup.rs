//! Per-daemon sequence deduplication — the server half of
//! exactly-once delivery.
//!
//! Daemons deliver at-least-once: a report whose *reply* is lost is
//! retransmitted even though the depot already ingested it. Each
//! daemon therefore stamps its messages with a monotonically
//! increasing `(daemon_id, seq)` (see the controller crate's spool),
//! and the centralized controller consults this index before touching
//! the depot: a seq it has already seen is acknowledged idempotently
//! and dropped. At-least-once delivery plus idempotent ingest is
//! exactly-once ingest.
//!
//! Each daemon gets a bounded sliding window: the set of seen seqs is
//! trimmed to the last `window` values, below which everything is
//! *assumed* seen (a seq that old can only be a pathologically late
//! duplicate — daemons deliver head-of-line, so a genuinely fresh
//! report is never more than one spool-capacity behind its newest).
//! Memory is O(daemons × window) worst case, O(daemons) in the
//! ordinary in-order case because contiguous prefixes collapse into
//! the floor.

use std::collections::{BTreeMap, BTreeSet};

/// Default sliding-window width, matching the daemon spool's default
/// capacity: the server never forgets a seq the daemon could still
/// legitimately retry.
pub const DEFAULT_DEDUP_WINDOW: u64 = 4096;

/// Seen-seq window for one daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SeqWindow {
    /// Seqs strictly below this are treated as seen (window floor),
    /// unless they are in `holes`.
    floor: u64,
    /// Seen seqs at or above `floor`.
    seen: BTreeSet<u64>,
    /// Seqs below `floor` that were explicitly un-recorded after a
    /// post-admission depot failure: the one exception to "below the
    /// floor means seen". A retry of a hole is fresh; everything else
    /// below the floor stays a duplicate.
    ///
    /// This replaces the old "drop the floor to `seq` and re-mark
    /// every seq in `(seq+1)..floor` as seen" reopening: that blanket
    /// re-mark fabricated seen-ness for seqs the floor had only
    /// *assumed* seen (window slides cover seqs that were permanently
    /// rejected or never delivered at all), and a failure spanning
    /// multiple in-flight seqs below a megascale collapsed floor paid
    /// O(floor − seq) inserts per forget. Holes keep forget exact and
    /// O(log n): only genuinely-delivered seqs stay marked.
    holes: BTreeSet<u64>,
}

impl SeqWindow {
    fn new() -> SeqWindow {
        SeqWindow { floor: 1, seen: BTreeSet::new(), holes: BTreeSet::new() }
    }

    /// Records `seq`; returns true when it is fresh (first sighting).
    fn observe(&mut self, seq: u64, window: u64) -> bool {
        if seq < self.floor {
            // Below the floor only a reopened hole is fresh; observing
            // it closes the hole (assumed-seen again).
            return self.holes.remove(&seq);
        }
        if !self.seen.insert(seq) {
            return false;
        }
        let max = *self.seen.iter().next_back().expect("just inserted");
        // Slide: keep the last `window` seqs explicitly, assume-seen
        // below; collapse the contiguous prefix into the floor.
        let slide_to = max.saturating_sub(window).saturating_add(1);
        if slide_to > self.floor {
            self.floor = slide_to;
            self.seen = self.seen.split_off(&self.floor);
            // Every hole is below the pre-slide floor, hence below
            // `slide_to`, hence outside the new window: a daemon whose
            // head-of-line spool (capacity = window) advanced this far
            // must have dropped those entries, so no legitimate retry
            // of them can arrive. Pruning here bounds memory to
            // O(window) per daemon.
            self.holes = self.holes.split_off(&self.floor);
        }
        while self.seen.remove(&self.floor) {
            self.floor += 1;
        }
        true
    }

    /// Un-records `seq` (the depot failed to ingest it after admission;
    /// the daemon's retry must not be deduplicated). At or above the
    /// floor the explicit mark is dropped; a seq already collapsed into
    /// the floor reopens as a tracked hole instead of dropping the
    /// floor — no other seq's seen-ness changes.
    fn forget(&mut self, seq: u64) {
        if seq >= self.floor {
            self.seen.remove(&seq);
        } else {
            self.holes.insert(seq);
        }
    }
}

/// Sliding-window duplicate detector over every submitting daemon.
#[derive(Debug, Clone)]
pub struct DedupIndex {
    window: u64,
    daemons: BTreeMap<String, SeqWindow>,
    duplicates: u64,
}

impl Default for DedupIndex {
    fn default() -> Self {
        DedupIndex::new(DEFAULT_DEDUP_WINDOW)
    }
}

impl DedupIndex {
    /// An empty index keeping the last `window` seqs per daemon.
    pub fn new(window: u64) -> DedupIndex {
        DedupIndex { window: window.max(1), daemons: BTreeMap::new(), duplicates: 0 }
    }

    /// Records a sighting of `(daemon, seq)`. Returns true when fresh
    /// — the submission should proceed to the depot — and false for a
    /// duplicate, which must be acked without further work.
    pub fn observe(&mut self, daemon: &str, seq: u64) -> bool {
        let fresh = self
            .daemons
            .entry(daemon.to_string())
            .or_insert_with(SeqWindow::new)
            .observe(seq, self.window);
        if !fresh {
            self.duplicates += 1;
        }
        fresh
    }

    /// Un-records `(daemon, seq)` after a post-admission failure so the
    /// daemon's retry is not misclassified as a duplicate.
    pub fn forget(&mut self, daemon: &str, seq: u64) {
        if let Some(w) = self.daemons.get_mut(daemon) {
            w.forget(seq);
        }
    }

    /// Duplicates detected over the index's lifetime.
    pub fn duplicate_count(&self) -> u64 {
        self.duplicates
    }

    /// Number of daemons tracked.
    pub fn daemon_count(&self) -> usize {
        self.daemons.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sighting_is_fresh_repeats_are_not() {
        let mut idx = DedupIndex::new(16);
        assert!(idx.observe("d", 1));
        assert!(idx.observe("d", 2));
        assert!(!idx.observe("d", 1), "retransmit of an ingested seq");
        assert!(!idx.observe("d", 2));
        assert_eq!(idx.duplicate_count(), 2);
    }

    #[test]
    fn daemons_are_independent() {
        let mut idx = DedupIndex::new(16);
        assert!(idx.observe("a", 1));
        assert!(idx.observe("b", 1), "same seq, different daemon");
        assert_eq!(idx.daemon_count(), 2);
    }

    #[test]
    fn out_of_order_within_window_is_fresh() {
        let mut idx = DedupIndex::new(16);
        assert!(idx.observe("d", 5));
        assert!(idx.observe("d", 3), "a delayed earlier seq still lands");
        assert!(!idx.observe("d", 3));
        assert!(idx.observe("d", 4));
    }

    #[test]
    fn window_slides_and_ancient_seqs_count_as_seen() {
        let mut idx = DedupIndex::new(8);
        assert!(idx.observe("d", 100));
        // 100 - 8 + 1 = 93 is the oldest explicitly tracked seq.
        assert!(idx.observe("d", 93));
        assert!(!idx.observe("d", 92), "below the window: assumed seen");
        assert_eq!(idx.duplicate_count(), 1);
    }

    #[test]
    fn contiguous_prefix_collapses_into_floor() {
        let mut idx = DedupIndex::new(1 << 32);
        for seq in 1..=1000 {
            assert!(idx.observe("d", seq));
        }
        let w = idx.daemons.get("d").unwrap();
        assert_eq!(w.floor, 1001, "in-order traffic stores nothing");
        assert!(w.seen.is_empty());
        assert!(!idx.observe("d", 500));
    }

    #[test]
    fn forget_reopens_a_seq_for_retry() {
        let mut idx = DedupIndex::new(16);
        assert!(idx.observe("d", 1));
        assert!(idx.observe("d", 2));
        // Depot failed on 2 after admission: the retry must be fresh.
        idx.forget("d", 2);
        assert!(idx.observe("d", 2));
        assert!(!idx.observe("d", 2));
        // Forgetting the newest collapsed seq reopens the floor too.
        idx.forget("d", 2);
        assert!(idx.observe("d", 2));
    }

    #[test]
    fn forget_spanning_multiple_in_flight_seqs_reopens_each_exactly() {
        // A depot failure spanning several in-flight seqs of one burst:
        // every failed seq must retry fresh, every delivered seq must
        // stay a duplicate — in any forget order (batch reconciliation
        // is branch-sorted, not seq-sorted).
        for order in [[10u64, 11, 12], [12, 11, 10], [11, 10, 12]] {
            let mut idx = DedupIndex::new(1 << 32);
            for seq in 1..=12 {
                assert!(idx.observe("d", seq));
            }
            // Floor collapsed past the whole prefix; depot fails 10..=12.
            for seq in order {
                idx.forget("d", seq);
            }
            for seq in 1..=9 {
                assert!(!idx.observe("d", seq), "delivered seq {seq} stays seen");
            }
            for seq in [10, 11, 12] {
                assert!(idx.observe("d", seq), "failed seq {seq} retries fresh");
                assert!(!idx.observe("d", seq), "…exactly once");
            }
        }
    }

    #[test]
    fn forget_below_floor_does_not_fabricate_seen_marks() {
        // Regression: the old reopening re-marked every seq in
        // `(seq+1)..floor` as seen. With a floor collapsed over a
        // million in-order seqs, forgetting one old seq exploded the
        // window to O(floor) entries. Holes keep it O(1).
        let mut idx = DedupIndex::new(1 << 32);
        for seq in 1..=1_000_000 {
            idx.observe("d", seq);
        }
        idx.forget("d", 5);
        let w = idx.daemons.get("d").unwrap();
        assert!(w.seen.is_empty(), "no fabricated explicit marks");
        assert_eq!(w.holes.len(), 1);
        assert_eq!(w.floor, 1_000_001, "floor is untouched by a below-floor forget");
        assert!(idx.observe("d", 5), "the hole retries fresh");
        assert!(!idx.observe("d", 5));
        assert!(!idx.observe("d", 999_999), "neighbours stay duplicates");
    }

    #[test]
    fn holes_are_pruned_when_the_window_slides_past_them() {
        let mut idx = DedupIndex::new(8);
        for seq in 1..=10 {
            assert!(idx.observe("d", seq));
        }
        idx.forget("d", 9);
        assert_eq!(idx.daemons.get("d").unwrap().holes.len(), 1);
        // A jump far beyond the window: seq 9 can no longer be a
        // legitimate head-of-line retry, so the hole is dropped.
        assert!(idx.observe("d", 100));
        let w = idx.daemons.get("d").unwrap();
        assert!(w.holes.is_empty(), "stale hole pruned with the slide");
        assert!(!idx.observe("d", 9), "outside the window: assumed seen again");
    }

    #[test]
    fn forget_reopens_a_seq_collapsed_mid_prefix() {
        // A batch admits 1..=3 (floor collapses to 4), then the depot
        // fails on 2: the retry of 2 must be fresh, 1 and 3 must not.
        let mut idx = DedupIndex::new(16);
        for seq in 1..=3 {
            assert!(idx.observe("d", seq));
        }
        idx.forget("d", 2);
        assert!(!idx.observe("d", 1));
        assert!(!idx.observe("d", 3));
        assert!(idx.observe("d", 2));
        assert!(!idx.observe("d", 2));
    }
}
