//! Per-daemon sequence deduplication — the server half of
//! exactly-once delivery.
//!
//! Daemons deliver at-least-once: a report whose *reply* is lost is
//! retransmitted even though the depot already ingested it. Each
//! daemon therefore stamps its messages with a monotonically
//! increasing `(daemon_id, seq)` (see the controller crate's spool),
//! and the centralized controller consults this index before touching
//! the depot: a seq it has already seen is acknowledged idempotently
//! and dropped. At-least-once delivery plus idempotent ingest is
//! exactly-once ingest.
//!
//! Each daemon gets a bounded sliding window: the set of seen seqs is
//! trimmed to the last `window` values, below which everything is
//! *assumed* seen (a seq that old can only be a pathologically late
//! duplicate — daemons deliver head-of-line, so a genuinely fresh
//! report is never more than one spool-capacity behind its newest).
//! Memory is O(daemons × window) worst case, O(daemons) in the
//! ordinary in-order case because contiguous prefixes collapse into
//! the floor.

use std::collections::{BTreeMap, BTreeSet};

/// Default sliding-window width, matching the daemon spool's default
/// capacity: the server never forgets a seq the daemon could still
/// legitimately retry.
pub const DEFAULT_DEDUP_WINDOW: u64 = 4096;

/// Seen-seq window for one daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SeqWindow {
    /// Seqs strictly below this are treated as seen (window floor).
    floor: u64,
    /// Seen seqs at or above `floor`.
    seen: BTreeSet<u64>,
}

impl SeqWindow {
    fn new() -> SeqWindow {
        SeqWindow { floor: 1, seen: BTreeSet::new() }
    }

    /// Records `seq`; returns true when it is fresh (first sighting).
    fn observe(&mut self, seq: u64, window: u64) -> bool {
        if seq < self.floor || !self.seen.insert(seq) {
            return false;
        }
        let max = *self.seen.iter().next_back().expect("just inserted");
        // Slide: keep the last `window` seqs explicitly, assume-seen
        // below; collapse the contiguous prefix into the floor.
        let slide_to = max.saturating_sub(window).saturating_add(1);
        if slide_to > self.floor {
            self.floor = slide_to;
            self.seen = self.seen.split_off(&self.floor);
        }
        while self.seen.remove(&self.floor) {
            self.floor += 1;
        }
        true
    }

    /// Un-records `seq` (the depot failed to ingest it after admission;
    /// the daemon's retry must not be deduplicated). A seq already
    /// collapsed into the floor reopens as a hole: the floor drops to
    /// it and the seqs above it are re-tracked explicitly.
    fn forget(&mut self, seq: u64) {
        if seq >= self.floor {
            self.seen.remove(&seq);
        } else {
            for s in (seq + 1)..self.floor {
                self.seen.insert(s);
            }
            self.floor = seq;
        }
    }
}

/// Sliding-window duplicate detector over every submitting daemon.
#[derive(Debug, Clone)]
pub struct DedupIndex {
    window: u64,
    daemons: BTreeMap<String, SeqWindow>,
    duplicates: u64,
}

impl Default for DedupIndex {
    fn default() -> Self {
        DedupIndex::new(DEFAULT_DEDUP_WINDOW)
    }
}

impl DedupIndex {
    /// An empty index keeping the last `window` seqs per daemon.
    pub fn new(window: u64) -> DedupIndex {
        DedupIndex { window: window.max(1), daemons: BTreeMap::new(), duplicates: 0 }
    }

    /// Records a sighting of `(daemon, seq)`. Returns true when fresh
    /// — the submission should proceed to the depot — and false for a
    /// duplicate, which must be acked without further work.
    pub fn observe(&mut self, daemon: &str, seq: u64) -> bool {
        let fresh = self
            .daemons
            .entry(daemon.to_string())
            .or_insert_with(SeqWindow::new)
            .observe(seq, self.window);
        if !fresh {
            self.duplicates += 1;
        }
        fresh
    }

    /// Un-records `(daemon, seq)` after a post-admission failure so the
    /// daemon's retry is not misclassified as a duplicate.
    pub fn forget(&mut self, daemon: &str, seq: u64) {
        if let Some(w) = self.daemons.get_mut(daemon) {
            w.forget(seq);
        }
    }

    /// Duplicates detected over the index's lifetime.
    pub fn duplicate_count(&self) -> u64 {
        self.duplicates
    }

    /// Number of daemons tracked.
    pub fn daemon_count(&self) -> usize {
        self.daemons.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sighting_is_fresh_repeats_are_not() {
        let mut idx = DedupIndex::new(16);
        assert!(idx.observe("d", 1));
        assert!(idx.observe("d", 2));
        assert!(!idx.observe("d", 1), "retransmit of an ingested seq");
        assert!(!idx.observe("d", 2));
        assert_eq!(idx.duplicate_count(), 2);
    }

    #[test]
    fn daemons_are_independent() {
        let mut idx = DedupIndex::new(16);
        assert!(idx.observe("a", 1));
        assert!(idx.observe("b", 1), "same seq, different daemon");
        assert_eq!(idx.daemon_count(), 2);
    }

    #[test]
    fn out_of_order_within_window_is_fresh() {
        let mut idx = DedupIndex::new(16);
        assert!(idx.observe("d", 5));
        assert!(idx.observe("d", 3), "a delayed earlier seq still lands");
        assert!(!idx.observe("d", 3));
        assert!(idx.observe("d", 4));
    }

    #[test]
    fn window_slides_and_ancient_seqs_count_as_seen() {
        let mut idx = DedupIndex::new(8);
        assert!(idx.observe("d", 100));
        // 100 - 8 + 1 = 93 is the oldest explicitly tracked seq.
        assert!(idx.observe("d", 93));
        assert!(!idx.observe("d", 92), "below the window: assumed seen");
        assert_eq!(idx.duplicate_count(), 1);
    }

    #[test]
    fn contiguous_prefix_collapses_into_floor() {
        let mut idx = DedupIndex::new(1 << 32);
        for seq in 1..=1000 {
            assert!(idx.observe("d", seq));
        }
        let w = idx.daemons.get("d").unwrap();
        assert_eq!(w.floor, 1001, "in-order traffic stores nothing");
        assert!(w.seen.is_empty());
        assert!(!idx.observe("d", 500));
    }

    #[test]
    fn forget_reopens_a_seq_for_retry() {
        let mut idx = DedupIndex::new(16);
        assert!(idx.observe("d", 1));
        assert!(idx.observe("d", 2));
        // Depot failed on 2 after admission: the retry must be fresh.
        idx.forget("d", 2);
        assert!(idx.observe("d", 2));
        assert!(!idx.observe("d", 2));
        // Forgetting the newest collapsed seq reopens the floor too.
        idx.forget("d", 2);
        assert!(idx.observe("d", 2));
    }

    #[test]
    fn forget_reopens_a_seq_collapsed_mid_prefix() {
        // A batch admits 1..=3 (floor collapses to 4), then the depot
        // fails on 2: the retry of 2 must be fresh, 1 and 3 must not.
        let mut idx = DedupIndex::new(16);
        for seq in 1..=3 {
            assert!(idx.observe("d", seq));
        }
        idx.forget("d", 2);
        assert!(!idx.observe("d", 1));
        assert!(!idx.observe("d", 3));
        assert!(idx.observe("d", 2));
        assert!(!idx.observe("d", 2));
    }
}
