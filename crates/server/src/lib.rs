//! The Inca server: centralized controller, depot, querying interface.
//!
//! "The server receives data from the distributed controllers and
//! coordinates the scheduling and configuration of reporters; it is
//! composed of the centralized controller, depot, and querying
//! interface" (§3). This crate implements all three:
//!
//! * [`controller`] — the centralized controller: accepts framed
//!   client messages (over TCP or in process), checks the host
//!   allowlist, wraps each report in an envelope addressed by its
//!   branch identifier, and forwards it to the depot. All submissions
//!   serialize through it, as in the 2004 system.
//! * [`reactor`] — the event-driven server frontend: one thread, a
//!   level-triggered readiness poller, per-connection framing state
//!   machines, and explicit backpressure instead of thread-per-
//!   connection — the 10k-daemon service envelope.
//! * [`depot`] — data management, caching and archiving. The cache is
//!   a **single XML document updated by streaming parse** — the design
//!   the paper measures in §5.2 (insert time grows with cache size;
//!   Figure 9). Archiving compiles Inca archival policies into
//!   round-robin databases.
//! * [`query`] — the querying interface: current data by branch
//!   identifier (whole cache, subtree, or single report) and archived
//!   data as labelled series.
//! * [`temporal`] — time-travel queries over the archive: windowed
//!   availability aggregates, multi-resolution fetch, and incident
//!   reconstruction joining archive windows with trace lineage.
//! * [`federation`] — the federated depot tier: a partition map
//!   routing sites to depot partitions, exactly-once depot-to-depot
//!   forwarding, and a single query plane whose global merge is
//!   byte-identical to a one-depot deployment.
//! * [`scrape`] — the self-scrape pipeline: a [`MetricsScraper`]
//!   periodically records the framework's own metrics registry
//!   (gauges, counter rates, histogram quantiles) into archive series
//!   queryable through [`temporal`] — Inca monitoring Inca.
//! * [`stats`] — response-time statistics per report-size bucket
//!   (Table 4) and received-size histograms (Figure 8).

pub mod controller;
pub mod dedup;
pub mod depot;
pub mod federation;
pub mod query;
pub mod reactor;
pub mod scrape;
pub mod stats;
pub mod temporal;

pub use controller::{
    CentralizedController, ControllerConfig, ServerFrontend, ServerHandle, TcpServerHandle,
};
pub use dedup::{DedupIndex, DEFAULT_DEDUP_WINDOW};
pub use depot::cache::{CacheError, XmlCache};
pub use depot::archive::{ArchiveRule, ArchiveStore};
pub use depot::depot::{CacheBackend, CacheRef, Depot, DepotError, DepotTiming};
pub use depot::memo::{MemoValue, QueryMemo};
pub use depot::rope::RopeCache;
pub use federation::{
    rollup_branch, rollup_rule, rollup_series_prefix, routing_key, Federation,
    FederationConfig, PartitionMap,
};
pub use depot::sharded::ShardedCache;
pub use query::QueryInterface;
pub use reactor::{ReactorConfig, ReactorHandle};
pub use scrape::{MetricsScraper, SELF_SCRAPE_TIERS, SELF_SERIES_PREFIX};
pub use stats::{BucketStats, ResponseStats, SIZE_BUCKETS};
pub use temporal::{Incident, IncidentCause, TemporalQuery, WindowAggregate};
