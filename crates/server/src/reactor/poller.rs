//! OS readiness polling behind one std-only surface.
//!
//! The reactor needs `epoll(7)`-class readiness notification, but the
//! workspace vendors no `libc` crate. The shim below declares the
//! handful of symbols it needs as `extern "C"` — they resolve against
//! the C library the Rust standard library already links — in the same
//! spirit as the vendored dependency shims elsewhere in the tree.
//!
//! * **Linux** — `epoll_create1`/`epoll_ctl`/`epoll_wait`, run
//!   level-triggered. Level triggering keeps the connection state
//!   machines simple (a socket with unread bytes is simply reported
//!   again next pass) and makes backpressure a matter of *not reading*.
//! * **Other Unix** — a `poll(2)` fallback with the same interface.
//!   `poll` is O(registered fds) per wait where epoll is O(ready fds),
//!   so the 10k-connection envelope is a Linux number; the fallback
//!   exists so the frontend stays correct (and testable) on the BSD
//!   family, where a kqueue backend could later slot in behind the same
//!   trait surface.
//!
//! Tokens are opaque `u64`s chosen by the caller (the reactor uses
//! connection ids); one poller instance is owned by one reactor thread.

use std::io;
use std::os::unix::io::RawFd;

/// What a file descriptor is ready for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Readiness {
    /// Caller-chosen token registered with the fd.
    pub token: u64,
    /// Readable (or a peer hangup, which reads as EOF).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error/hangup condition; the connection should be torn down
    /// after draining whatever reads remain.
    pub error: bool,
}

/// Interest set for a registered descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Watch for readability.
    pub read: bool,
    /// Watch for writability.
    pub write: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest { read: true, write: false };
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{Interest, Readiness};
    use std::io;
    use std::os::raw::c_int;
    use std::os::unix::io::RawFd;

    // x86_64 packs epoll_event (a 32-bit kernel ABI leftover); every
    // other architecture uses natural alignment.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0o2000000;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// Level-triggered epoll instance.
    pub struct Poller {
        epfd: RawFd,
        events: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new(capacity: usize) -> io::Result<Poller> {
            let epfd = unsafe { cvt(epoll_create1(EPOLL_CLOEXEC))? };
            Ok(Poller { epfd, events: vec![EpollEvent { events: 0, data: 0 }; capacity] })
        }

        fn mask(interest: Interest) -> u32 {
            let mut m = EPOLLRDHUP;
            if interest.read {
                m |= EPOLLIN;
            }
            if interest.write {
                m |= EPOLLOUT;
            }
            m
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent { events: Self::mask(interest), data: token };
            unsafe { cvt(epoll_ctl(self.epfd, op, fd, &mut ev)) }.map(|_| ())
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            unsafe { cvt(epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev)) }.map(|_| ())
        }

        pub fn wait(&mut self, timeout_ms: i32, out: &mut Vec<Readiness>) -> io::Result<()> {
            out.clear();
            let n = loop {
                let ret = unsafe {
                    epoll_wait(
                        self.epfd,
                        self.events.as_mut_ptr(),
                        self.events.len() as c_int,
                        timeout_ms,
                    )
                };
                match cvt(ret) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for ev in &self.events[..n] {
                let bits = ev.events;
                out.push(Readiness {
                    token: ev.data,
                    readable: bits & (EPOLLIN | EPOLLHUP | EPOLLRDHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    error: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    use super::{Interest, Readiness};
    use std::collections::BTreeMap;
    use std::io;
    use std::os::raw::{c_int, c_ulong};
    use std::os::unix::io::RawFd;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    extern "C" {
        // nfds_t is `unsigned long` on the BSD family (32-bit on 32-bit
        // targets), so c_ulong — not u64 — matches the ABI everywhere.
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// Portable `poll(2)` fallback with the epoll surface.
    pub struct Poller {
        registered: BTreeMap<RawFd, (u64, Interest)>,
        scratch: Vec<PollFd>,
    }

    impl Poller {
        pub fn new(_capacity: usize) -> io::Result<Poller> {
            Ok(Poller { registered: BTreeMap::new(), scratch: Vec::new() })
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.registered.insert(fd, (token, interest));
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.registered.insert(fd, (token, interest));
            Ok(())
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.registered.remove(&fd);
            Ok(())
        }

        pub fn wait(&mut self, timeout_ms: i32, out: &mut Vec<Readiness>) -> io::Result<()> {
            out.clear();
            self.scratch.clear();
            for (&fd, &(_, interest)) in &self.registered {
                let mut events = 0i16;
                if interest.read {
                    events |= POLLIN;
                }
                if interest.write {
                    events |= POLLOUT;
                }
                self.scratch.push(PollFd { fd, events, revents: 0 });
            }
            let n = loop {
                let ret = unsafe {
                    poll(self.scratch.as_mut_ptr(), self.scratch.len() as c_ulong, timeout_ms)
                };
                if ret >= 0 {
                    break ret;
                }
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::Interrupted {
                    return Err(e);
                }
            };
            if n == 0 {
                return Ok(());
            }
            for pfd in &self.scratch {
                if pfd.revents == 0 {
                    continue;
                }
                let token = self.registered[&pfd.fd].0;
                out.push(Readiness {
                    token,
                    readable: pfd.revents & (POLLIN | POLLHUP) != 0,
                    writable: pfd.revents & POLLOUT != 0,
                    error: pfd.revents & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

/// The platform poller: level-triggered epoll on Linux, `poll(2)`
/// elsewhere. One instance per reactor thread.
pub struct Poller {
    inner: sys::Poller,
}

impl Poller {
    /// A poller sized to report up to `capacity` ready fds per wait.
    pub fn new(capacity: usize) -> io::Result<Poller> {
        Ok(Poller { inner: sys::Poller::new(capacity)? })
    }

    /// Starts watching `fd` under `token` with the given interest.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.register(fd, token, interest)
    }

    /// Replaces the interest set of a watched fd.
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.modify(fd, token, interest)
    }

    /// Stops watching `fd`.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        self.inner.deregister(fd)
    }

    /// Blocks up to `timeout_ms` (-1 = forever) and fills `out` with
    /// ready descriptors.
    pub fn wait(&mut self, timeout_ms: i32, out: &mut Vec<Readiness>) -> io::Result<()> {
        self.inner.wait(timeout_ms, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readable_when_peer_writes() {
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new(8).unwrap();
        poller.register(b.as_raw_fd(), 7, Interest::READ).unwrap();
        let mut ready = Vec::new();
        poller.wait(0, &mut ready).unwrap();
        assert!(ready.is_empty(), "nothing written yet");
        a.write_all(b"x").unwrap();
        poller.wait(1_000, &mut ready).unwrap();
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].token, 7);
        assert!(ready[0].readable);
    }

    #[test]
    fn write_interest_reports_writable_and_modify_clears_it() {
        let (a, _b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        let mut poller = Poller::new(8).unwrap();
        poller
            .register(a.as_raw_fd(), 3, Interest { read: false, write: true })
            .unwrap();
        let mut ready = Vec::new();
        poller.wait(1_000, &mut ready).unwrap();
        assert!(ready.iter().any(|r| r.token == 3 && r.writable));
        // Dropping write interest silences the (always-writable) socket.
        poller.modify(a.as_raw_fd(), 3, Interest::READ).unwrap();
        poller.wait(0, &mut ready).unwrap();
        assert!(ready.is_empty());
    }

    #[test]
    fn hangup_reads_as_readable_eof() {
        let (a, mut buf_reader) = UnixStream::pair().unwrap();
        buf_reader.set_nonblocking(true).unwrap();
        let mut poller = Poller::new(8).unwrap();
        poller.register(buf_reader.as_raw_fd(), 1, Interest::READ).unwrap();
        drop(a);
        let mut ready = Vec::new();
        poller.wait(1_000, &mut ready).unwrap();
        assert_eq!(ready.len(), 1);
        assert!(ready[0].readable, "hangup must surface as readable EOF");
        let mut sink = [0u8; 8];
        assert_eq!(buf_reader.read(&mut sink).unwrap(), 0);
    }

    #[test]
    fn deregister_stops_reporting() {
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new(8).unwrap();
        poller.register(b.as_raw_fd(), 9, Interest::READ).unwrap();
        a.write_all(b"x").unwrap();
        let mut ready = Vec::new();
        poller.wait(1_000, &mut ready).unwrap();
        assert_eq!(ready.len(), 1);
        poller.deregister(b.as_raw_fd()).unwrap();
        poller.wait(0, &mut ready).unwrap();
        assert!(ready.is_empty());
    }
}
