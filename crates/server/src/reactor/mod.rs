//! Event-driven server frontend: one reactor thread, 10k daemons.
//!
//! The thread-per-connection accept loop ([`serve_tcp`]) spends a
//! kernel thread (and its stack) per daemon, capping concurrency at
//! thread-pool scale — exactly the envelope DiPerF-style measurement
//! exposes as an early saturation knee. This module replaces it with a
//! readiness reactor in the spirit of the 2004 paper's single-daemon
//! depot, scaled three orders of magnitude:
//!
//! * **One reactor thread** owns a level-triggered [`Poller`] (epoll on
//!   Linux, `poll(2)` fallback elsewhere), the listener, and every
//!   connection.
//! * **Per-connection state machines** reassemble the length-prefixed
//!   envelope protocol from whatever byte fragments the socket yields
//!   ([`inca_wire::frame::FrameBuffer`]) and stage partially-written
//!   replies until the socket drains — both XML and
//!   [`EnvelopeMode::Binary`] payloads, which the depot decodes
//!   zero-copy ([`inca_wire::envelope::EnvelopeView`]) straight into
//!   the rope arena.
//! * **Connection multiplexing**: every complete frame gathered in one
//!   readiness pass — across *all* connections — is submitted as a
//!   single [`CentralizedController::submit_batch`], so ten thousand
//!   daemons share one depot-lock acquisition per pass instead of
//!   contending per report.
//! * **Explicit backpressure, nothing dropped**: a connection with
//!   unflushed replies has its read interest withdrawn (the kernel
//!   buffer fills, the daemon's send blocks or times out, and overflow
//!   accumulates in its durable spool for retry); a pass that hits the
//!   in-flight frame budget simply stops reading — level triggering
//!   re-reports the remaining sockets on the next pass.
//!
//! The old loop stays available as [`ServerFrontend::Threaded`] and is
//! the oracle: both frontends must converge to byte-identical depot
//! documents under connection chaos (`tests/net_frontend.rs`).
//!
//! Instrumentation: `inca_net_connections`,
//! `inca_net_readiness_wakeups_total`, `inca_net_frames_total`,
//! `inca_net_backpressure_pauses_total`, and the accept-to-insert
//! latency histogram `inca_net_accept_to_insert_seconds` (trace
//! exemplars join each report's lineage).
//!
//! [`serve_tcp`]: CentralizedController::serve_tcp
//! [`ServerFrontend::Threaded`]: crate::controller::ServerFrontend
//! [`EnvelopeMode::Binary`]: inca_wire::envelope::EnvelopeMode

pub mod poller;

use std::collections::{BTreeSet, HashMap};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use inca_obs::metrics::{Counter, Gauge, Histogram, DEFAULT_LATENCY_BOUNDS};
use inca_report::Timestamp;
use inca_wire::frame::{FrameBuffer, FrameError};
use inca_wire::message::{ClientMessage, ServerResponse};

use crate::controller::{CentralizedController, SERVER_IDLE_TIMEOUT};
use poller::{Interest, Poller, Readiness};

/// Tuning knobs for the reactor event loop. The defaults serve the
/// 10k-daemon envelope; tests shrink them to force the backpressure
/// paths at toy sizes.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Most frames gathered into one depot batch per readiness pass;
    /// reaching it pauses further reads for the pass (level triggering
    /// re-reports the unread sockets immediately after the batch).
    pub max_batch_frames: usize,
    /// Read size per `read(2)` call on a ready connection.
    pub read_chunk_bytes: usize,
    /// A connection whose unflushed reply bytes exceed this has its
    /// read interest withdrawn until the replies drain — per-connection
    /// backpressure toward the daemon's spool.
    pub pause_outbuf_bytes: usize,
    /// Connections beyond this are accepted and immediately closed.
    pub max_connections: usize,
    /// Pins each accepted connection's kernel send buffer
    /// (`SO_SNDBUF`); `None` leaves kernel autotuning in charge.
    /// Pinning bounds per-connection kernel memory at 10k-connection
    /// scale and makes the `pause_outbuf_bytes` watermark effective —
    /// autotuned buffers can grow to absorb an arbitrarily large reply
    /// backlog before a flush ever goes partial.
    pub sndbuf_bytes: Option<usize>,
    /// Pins each accepted connection's kernel receive buffer
    /// (`SO_RCVBUF`); `None` leaves autotuning in charge. The receive
    /// side of the same kernel-memory bound: without it a paused
    /// connection's kernel buffer can grow to absorb megabytes of
    /// requests the reactor has not agreed to read yet.
    pub rcvbuf_bytes: Option<usize>,
    /// Idle connections (no frame, no write progress) older than this
    /// are reaped, as in the threaded frontend.
    pub idle_timeout: Duration,
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        ReactorConfig {
            max_batch_frames: 4_096,
            read_chunk_bytes: 64 * 1024,
            pause_outbuf_bytes: 256 * 1024,
            max_connections: 64 * 1024,
            sndbuf_bytes: None,
            rcvbuf_bytes: None,
            idle_timeout: SERVER_IDLE_TIMEOUT,
        }
    }
}

/// Poll timeout: long enough to idle cheaply, short enough that idle
/// sweeps and shutdown checks stay prompt even if the wake pipe fails.
const WAIT_TIMEOUT_MS: i32 = 200;

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const TOKEN_FIRST_CONN: u64 = 2;

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    peer: SocketAddr,
    /// Reassembles length-prefixed frames from partial reads.
    inbuf: FrameBuffer,
    /// Encoded replies not yet accepted by the socket.
    outbuf: Vec<u8>,
    /// Flushed prefix of `outbuf`.
    written: usize,
    /// Current poller interest (kept to avoid redundant `modify`s).
    interest: Interest,
    /// Close once `outbuf` drains (EOF seen or protocol error).
    closing: bool,
    last_activity: Instant,
}

impl Conn {
    fn pending_out(&self) -> usize {
        self.outbuf.len() - self.written
    }
}

/// A frame fully received and waiting for the depot, with everything
/// needed to time and answer it.
struct PendingFrame {
    conn: u64,
    payload: Vec<u8>,
    /// Allowlist key: the client message's resource field (empty when
    /// the message does not decode — admission rejects it uniformly).
    resource: String,
    /// Trace id for the accept-to-insert exemplar.
    trace_id: u64,
    received_at: Instant,
}

/// Handle to a running reactor; shuts down on drop.
pub struct ReactorHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    wake: UnixStream,
    connections: Arc<AtomicUsize>,
    thread: Option<JoinHandle<()>>,
}

impl ReactorHandle {
    /// The bound address (use port 0 to pick a free port in tests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live connection count (also exported as `inca_net_connections`).
    pub fn connection_count(&self) -> usize {
        self.connections.load(Ordering::SeqCst)
    }

    /// Requests shutdown and joins the reactor thread.
    pub fn stop(mut self) {
        self.initiate_stop();
    }

    fn initiate_stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = (&self.wake).write(&[1]);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ReactorHandle {
    fn drop(&mut self) {
        self.initiate_stop();
    }
}

/// Reactor-wide metric instruments.
struct NetMetrics {
    connections: Arc<Gauge>,
    wakeups: Arc<Counter>,
    frames: Arc<Counter>,
    backpressure: Arc<Counter>,
    accept_to_insert: Arc<Histogram>,
}

impl NetMetrics {
    fn new(controller: &CentralizedController) -> NetMetrics {
        let metrics = controller.obs().metrics();
        NetMetrics {
            connections: metrics
                .gauge("inca_net_connections", "Live daemon connections on the reactor frontend."),
            wakeups: metrics.counter(
                "inca_net_readiness_wakeups_total",
                "Readiness-poll returns processed by the reactor loop.",
            ),
            frames: metrics.counter(
                "inca_net_frames_total",
                "Complete request frames received by the reactor frontend.",
            ),
            backpressure: metrics.counter(
                "inca_net_backpressure_pauses_total",
                "Reads withheld for backpressure (per-connection reply-buffer pauses plus whole passes that hit the in-flight frame budget).",
            ),
            accept_to_insert: metrics.histogram(
                "inca_net_accept_to_insert_seconds",
                "Latency from a complete frame on the wire to its depot insert being acknowledged.",
                &DEFAULT_LATENCY_BOUNDS,
            ),
        }
    }
}

/// The reactor state owned by its thread.
struct Reactor {
    controller: Arc<CentralizedController>,
    config: ReactorConfig,
    poller: Poller,
    listener: TcpListener,
    wake_rx: UnixStream,
    conns: HashMap<u64, Conn>,
    /// Connections with complete frames already reassembled in user
    /// space but deferred by the pass budget. Level triggering only
    /// re-reports sockets with *kernel*-buffered bytes, so these must
    /// be revisited explicitly or their frames would strand.
    backlog: BTreeSet<u64>,
    next_token: u64,
    /// Reusable `read(2)` chunk buffer — the reactor is single-threaded,
    /// so one buffer serves every connection without per-pass allocation.
    read_chunk: Vec<u8>,
    metrics: NetMetrics,
    conn_count: Arc<AtomicUsize>,
    shutdown: Arc<AtomicBool>,
    last_idle_sweep: Instant,
}

impl CentralizedController {
    /// Starts the event-driven reactor frontend with default tuning.
    ///
    /// Equivalent service semantics to [`serve_tcp`] — same admission,
    /// dedup, and reply protocol — but one thread serves every
    /// connection, reads are paused instead of reports dropped when the
    /// depot lags, and all frames ready in one pass share a single
    /// depot batch.
    ///
    /// [`serve_tcp`]: CentralizedController::serve_tcp
    pub fn serve_reactor(
        self: &Arc<Self>,
        listener: TcpListener,
    ) -> io::Result<ReactorHandle> {
        self.serve_reactor_config(listener, ReactorConfig::default())
    }

    /// [`serve_reactor`] with explicit tuning (tests shrink the budgets
    /// to exercise backpressure at toy sizes).
    ///
    /// [`serve_reactor`]: CentralizedController::serve_reactor
    pub fn serve_reactor_config(
        self: &Arc<Self>,
        listener: TcpListener,
        config: ReactorConfig,
    ) -> io::Result<ReactorHandle> {
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        let mut poller = Poller::new(1_024)?;
        poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        poller.register(wake_rx.as_raw_fd(), TOKEN_WAKE, Interest::READ)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conn_count = Arc::new(AtomicUsize::new(0));
        let metrics = NetMetrics::new(self);
        let mut reactor = Reactor {
            controller: Arc::clone(self),
            read_chunk: vec![0u8; config.read_chunk_bytes],
            config,
            poller,
            listener,
            wake_rx,
            conns: HashMap::new(),
            backlog: BTreeSet::new(),
            next_token: TOKEN_FIRST_CONN,
            metrics,
            conn_count: Arc::clone(&conn_count),
            shutdown: Arc::clone(&shutdown),
            last_idle_sweep: Instant::now(),
        };
        let thread = std::thread::Builder::new()
            .name("inca-reactor".into())
            .spawn(move || reactor.run())?;
        Ok(ReactorHandle {
            addr,
            shutdown,
            wake: wake_tx,
            connections: conn_count,
            thread: Some(thread),
        })
    }
}

impl Reactor {
    fn run(&mut self) {
        let mut ready: Vec<Readiness> = Vec::new();
        while !self.shutdown.load(Ordering::SeqCst) {
            // Deferred user-space frames mean there is work regardless
            // of socket readiness: poll without blocking.
            let timeout = if self.backlog.is_empty() { WAIT_TIMEOUT_MS } else { 0 };
            if let Err(e) = self.poller.wait(timeout, &mut ready) {
                // A dead poller is unrecoverable; sever loudly rather
                // than serve nothing in silence.
                eprintln!("inca-reactor: poller failed, shutting down frontend: {e}");
                break;
            }
            self.metrics.wakeups.inc();
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let mut pending: Vec<PendingFrame> = Vec::new();
            let mut budget_hit = false;
            // Frames already reassembled last pass go first — they are
            // the oldest work in the house.
            for token in std::mem::take(&mut self.backlog) {
                if self.conns.get(&token).is_some_and(|c| !c.closing) {
                    match self.extract_frames(token, &mut pending, &mut budget_hit, false) {
                        Extracted::Ok => {}
                        Extracted::Protocol => self.close_after_flush(token),
                        Extracted::Corrupt => self.close_conn(token),
                    }
                }
            }
            for ev in std::mem::take(&mut ready) {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => {
                        let mut sink = [0u8; 64];
                        while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
                    }
                    token => self.conn_ready(token, &ev, &mut pending, &mut budget_hit),
                }
            }
            if budget_hit {
                // The rest of the ready sockets go unread this pass;
                // level triggering re-reports them right after the
                // batch below lands.
                self.metrics.backpressure.inc();
            }
            if !pending.is_empty() {
                self.process_batch(pending);
            }
            self.sweep_idle();
        }
        // Shutdown: sever every connection; daemons respool unacked
        // reports and retry against the next incarnation.
        for (_, conn) in self.conns.drain() {
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        }
        self.conn_count.store(0, Ordering::SeqCst);
        self.metrics.connections.set(0.0);
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    if self.conns.len() >= self.config.max_connections {
                        drop(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stream.set_nodelay(true).ok();
                    if let Some(bytes) = self.config.sndbuf_bytes {
                        set_kernel_buf(&stream, KernelBuf::Send, bytes).ok();
                    }
                    if let Some(bytes) = self.config.rcvbuf_bytes {
                        set_kernel_buf(&stream, KernelBuf::Recv, bytes).ok();
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .register(stream.as_raw_fd(), token, Interest::READ)
                        .is_err()
                    {
                        continue;
                    }
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            peer,
                            inbuf: FrameBuffer::new(),
                            outbuf: Vec::new(),
                            written: 0,
                            interest: Interest::READ,
                            closing: false,
                            last_activity: Instant::now(),
                        },
                    );
                    self.sync_conn_count();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    fn sync_conn_count(&self) {
        let n = self.conns.len();
        self.conn_count.store(n, Ordering::SeqCst);
        self.metrics.connections.set(n as f64);
    }

    /// Handles readiness on one connection: flush staged replies, then
    /// read and reassemble frames (unless paused for backpressure).
    fn conn_ready(
        &mut self,
        token: u64,
        ev: &Readiness,
        pending: &mut Vec<PendingFrame>,
        budget_hit: &mut bool,
    ) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        if ev.writable && conn.pending_out() > 0 {
            match flush_outbuf(conn) {
                Ok(()) => {}
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
            if conn.pending_out() == 0 && conn.closing {
                self.close_conn(token);
                return;
            }
            // Recompute interest after the flush: drop write interest
            // once the buffer drains (stale write interest busy-spins a
            // level-triggered poller on an always-writable socket) and
            // restore read interest once below the backpressure
            // watermark (a paused connection whose replies drain only
            // via writable events would otherwise never be read again).
            self.update_interest(token);
        }
        let conn = self.conns.get_mut(&token).expect("conn still present");
        if ev.readable {
            // Backpressure: while replies are backed up on this
            // connection, leave its bytes in the kernel buffer — the
            // daemon's writes stall and its spool absorbs the overflow.
            if conn.pending_out() >= self.config.pause_outbuf_bytes {
                self.pause_read(token);
                self.metrics.backpressure.inc();
                return;
            }
            if pending.len() >= self.config.max_batch_frames {
                // Budget spent: leave this socket's bytes in the kernel
                // buffer; level triggering re-reports it next pass.
                *budget_hit = true;
                return;
            }
            match self.read_frames(token, pending, budget_hit) {
                ReadOutcome::Open => {}
                ReadOutcome::Close => self.close_conn(token),
                ReadOutcome::CloseAfterFlush => self.close_after_flush(token),
            }
        } else if ev.error {
            self.close_conn(token);
        }
    }

    /// Reads whatever the socket holds, then extracts complete frames
    /// into the batch up to the pass budget.
    fn read_frames(
        &mut self,
        token: u64,
        pending: &mut Vec<PendingFrame>,
        budget_hit: &mut bool,
    ) -> ReadOutcome {
        // Take the shared chunk buffer so it does not alias the
        // connection-map borrow, and restore it before any return.
        let mut chunk = std::mem::take(&mut self.read_chunk);
        let filled = self.fill_inbuf(token, &mut chunk);
        self.read_chunk = chunk;
        let saw_eof = match filled {
            Ok(eof) => eof,
            Err(()) => return ReadOutcome::Close,
        };
        // At EOF nothing further will arrive: drain everything already
        // paid for, budget or not, so the final frames of a closing
        // daemon are not stranded.
        match self.extract_frames(token, pending, budget_hit, saw_eof) {
            Extracted::Ok => {}
            Extracted::Protocol => return ReadOutcome::CloseAfterFlush,
            Extracted::Corrupt => return ReadOutcome::Close,
        }
        if saw_eof {
            let conn = self.conns.get_mut(&token).expect("conn present");
            if conn.inbuf.buffered() > 0 {
                // Truncated frame at EOF: nothing to answer.
                return ReadOutcome::Close;
            }
            return ReadOutcome::CloseAfterFlush;
        }
        ReadOutcome::Open
    }

    /// Drains the socket into the connection's reassembly buffer.
    /// `Ok(true)` means EOF was seen; `Err(())` means a fatal read
    /// error and the connection should be closed.
    fn fill_inbuf(&mut self, token: u64, chunk: &mut [u8]) -> Result<bool, ()> {
        let conn = self.conns.get_mut(&token).expect("conn present");
        loop {
            match conn.stream.read(chunk) {
                Ok(0) => return Ok(true),
                Ok(n) => {
                    conn.inbuf.extend(&chunk[..n]);
                    conn.last_activity = Instant::now();
                    if n < chunk.len() {
                        return Ok(false);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
    }

    /// Pops complete frames from a connection's reassembly buffer into
    /// the pass batch. Hitting the budget parks the connection on the
    /// backlog (frames already in user space must be revisited without
    /// socket readiness) unless `drain_all` lifts the cap.
    fn extract_frames(
        &mut self,
        token: u64,
        pending: &mut Vec<PendingFrame>,
        budget_hit: &mut bool,
        drain_all: bool,
    ) -> Extracted {
        let max_frames = self.config.max_batch_frames;
        let conn = self.conns.get_mut(&token).expect("conn present");
        loop {
            if !drain_all && pending.len() >= max_frames && conn.inbuf.buffered() >= 4 {
                *budget_hit = true;
                self.backlog.insert(token);
                return Extracted::Ok;
            }
            match conn.inbuf.next_frame() {
                Ok(Some(payload)) => {
                    self.metrics.frames.inc();
                    let (resource, trace_id) = match ClientMessage::decode(&payload) {
                        Ok(m) => (m.resource, m.trace.map_or(0, |ctx| ctx.trace_id)),
                        Err(_) => (String::new(), 0),
                    };
                    pending.push(PendingFrame {
                        conn: token,
                        payload,
                        resource,
                        trace_id,
                        received_at: Instant::now(),
                    });
                }
                Ok(None) => return Extracted::Ok,
                Err(FrameError::TooLarge { .. }) => {
                    // Answer like the threaded loop, then hang up once
                    // the reply drains.
                    let resp = ServerResponse::Rejected("frame too large".into());
                    stage_reply(conn, &resp.encode());
                    return Extracted::Protocol;
                }
                Err(_) => return Extracted::Corrupt,
            }
        }
    }

    /// Marks a connection closing, pushes what the socket will take,
    /// and closes now if the reply buffer drained (write readiness
    /// carries the remainder out before the close otherwise).
    fn close_after_flush(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        conn.closing = true;
        if flush_outbuf(conn).is_err() {
            self.close_conn(token);
            return;
        }
        let conn = self.conns.get_mut(&token).expect("conn present");
        if conn.pending_out() == 0 {
            self.close_conn(token);
        } else {
            self.update_interest(token);
        }
    }

    /// Submits every frame of the pass as one controller batch, stages
    /// the replies, and flushes what the sockets will take.
    fn process_batch(&mut self, pending: Vec<PendingFrame>) {
        let now = Timestamp::from_secs(
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
        );
        let submissions: Vec<(String, Vec<u8>)> = pending
            .iter()
            .map(|f| (f.resource.clone(), f.payload.clone()))
            .collect();
        let results = self.controller.submit_batch(&submissions, now);
        // A connection can contribute frames non-contiguously (backlog
        // frames first, this pass's reads later), so collect into a set
        // to flush and recompute interest exactly once per connection.
        let mut touched: BTreeSet<u64> = BTreeSet::new();
        for (frame, (response, _timing)) in pending.iter().zip(results) {
            self.metrics
                .accept_to_insert
                .observe_with_exemplar(frame.received_at.elapsed().as_secs_f64(), frame.trace_id);
            if let Some(conn) = self.conns.get_mut(&frame.conn) {
                stage_reply(conn, &response.encode());
                touched.insert(frame.conn);
            }
        }
        for token in touched {
            let Some(conn) = self.conns.get_mut(&token) else { continue };
            if flush_outbuf(conn).is_err() {
                self.close_conn(token);
                continue;
            }
            let conn = self.conns.get_mut(&token).expect("conn present");
            if conn.pending_out() == 0 && conn.closing {
                self.close_conn(token);
                continue;
            }
            self.update_interest(token);
        }
    }

    /// Recomputes and applies a connection's poller interest: write
    /// interest while replies are staged, read interest unless paused
    /// by the reply-buffer watermark.
    fn update_interest(&mut self, token: u64) {
        let pause_bytes = self.config.pause_outbuf_bytes;
        let Some(conn) = self.conns.get_mut(&token) else { return };
        let want = Interest {
            read: !conn.closing && conn.pending_out() < pause_bytes,
            write: conn.pending_out() > 0,
        };
        if want != conn.interest {
            if self.poller.modify(conn.stream.as_raw_fd(), token, want).is_ok() {
                conn.interest = want;
            }
        }
    }

    fn pause_read(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        let want = Interest { read: false, write: conn.pending_out() > 0 };
        if want != conn.interest
            && self.poller.modify(conn.stream.as_raw_fd(), token, want).is_ok()
        {
            conn.interest = want;
        }
    }

    fn close_conn(&mut self, token: u64) {
        self.backlog.remove(&token);
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            let _ = conn.peer;
            self.sync_conn_count();
        }
    }

    /// Reaps idle connections, amortized to roughly once per timeout.
    ///
    /// "Idle" means the connection is genuinely quiet, not merely
    /// throttled: a daemon paused past the reply watermark sends no
    /// bytes *because the reactor withdrew its read interest*, so its
    /// `last_activity` goes stale mid-drain while tens of KiB of acks
    /// are still staged. Reaping it would discard acknowledged work and
    /// force a full respool — doubly costly once depot-to-depot links
    /// pause under fan-in. Connections with staged replies, withdrawn
    /// read interest, or frames parked on the pass-budget backlog are
    /// therefore exempt: all three states quiesce only through the
    /// reactor's own progress, which refreshes `last_activity`.
    fn sweep_idle(&mut self) {
        if self.last_idle_sweep.elapsed() < self.config.idle_timeout {
            return;
        }
        self.last_idle_sweep = Instant::now();
        let backlog = &self.backlog;
        let timeout = self.config.idle_timeout;
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(&t, c)| {
                c.last_activity.elapsed() > timeout
                    && c.pending_out() == 0
                    && (c.interest.read || c.closing)
                    && !backlog.contains(&t)
            })
            .map(|(&t, _)| t)
            .collect();
        for token in idle {
            self.close_conn(token);
        }
    }
}

enum ReadOutcome {
    Open,
    Close,
    CloseAfterFlush,
}

/// Outcome of draining a connection's reassembly buffer.
enum Extracted {
    /// Clean stop (buffer exhausted or budget reached).
    Ok,
    /// Protocol violation answered with a rejection; close after it
    /// flushes.
    Protocol,
    /// Unrecoverable framing state; close immediately.
    Corrupt,
}

/// Appends an encoded reply frame (length prefix + payload) to the
/// connection's staging buffer.
fn stage_reply(conn: &mut Conn, payload: &[u8]) {
    let len = payload.len() as u32;
    conn.outbuf.extend_from_slice(&len.to_be_bytes());
    conn.outbuf.extend_from_slice(payload);
}

/// Which kernel socket buffer [`set_kernel_buf`] pins.
enum KernelBuf {
    Send,
    Recv,
}

/// Pins a socket's kernel buffer size via `setsockopt` (std exposes no
/// API for this, so the same extern-shim approach as the poller).
/// Explicit sizing also disables kernel autotuning, which is what makes
/// the pinned size an actual bound.
fn set_kernel_buf(stream: &TcpStream, which: KernelBuf, bytes: usize) -> io::Result<()> {
    use std::os::raw::{c_int, c_void};
    #[cfg(target_os = "linux")]
    const SOL_SOCKET: c_int = 1;
    #[cfg(target_os = "linux")]
    const SO_SNDBUF: c_int = 7;
    #[cfg(target_os = "linux")]
    const SO_RCVBUF: c_int = 8;
    #[cfg(all(unix, not(target_os = "linux")))]
    const SOL_SOCKET: c_int = 0xffff;
    #[cfg(all(unix, not(target_os = "linux")))]
    const SO_SNDBUF: c_int = 0x1001;
    #[cfg(all(unix, not(target_os = "linux")))]
    const SO_RCVBUF: c_int = 0x1002;
    extern "C" {
        fn setsockopt(
            fd: c_int,
            level: c_int,
            optname: c_int,
            optval: *const c_void,
            optlen: u32,
        ) -> c_int;
    }
    let optname = match which {
        KernelBuf::Send => SO_SNDBUF,
        KernelBuf::Recv => SO_RCVBUF,
    };
    let val = bytes.min(i32::MAX as usize) as c_int;
    let rc = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            optname,
            &val as *const c_int as *const c_void,
            std::mem::size_of::<c_int>() as u32,
        )
    };
    if rc != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Writes staged bytes until the socket stops taking them. `Ok` leaves
/// any remainder staged for the next writable event.
fn flush_outbuf(conn: &mut Conn) -> io::Result<()> {
    while conn.written < conn.outbuf.len() {
        match conn.stream.write(&conn.outbuf[conn.written..]) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::WriteZero, "socket closed")),
            Ok(n) => {
                conn.written += n;
                conn.last_activity = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if conn.written == conn.outbuf.len() {
        conn.outbuf.clear();
        conn.written = 0;
    } else if conn.written > 0 && conn.written >= conn.outbuf.len() / 2 {
        conn.outbuf.drain(..conn.written);
        conn.written = 0;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerConfig;
    use crate::depot::depot::Depot;
    use inca_report::{BranchId, ReportBuilder};
    use inca_wire::frame::{read_frame, write_frame};

    fn message(resource: &str, reporter: &str) -> Vec<u8> {
        let report = ReportBuilder::new(reporter, "1.0")
            .host(resource)
            .gmt(Timestamp::from_secs(1_000))
            .body_value("v", "1")
            .success()
            .unwrap();
        let branch: BranchId =
            format!("reporter={reporter},resource={resource},vo=tg").parse().unwrap();
        ClientMessage::report(resource, branch, &report).encode()
    }

    fn spawn_reactor() -> (Arc<CentralizedController>, ReactorHandle) {
        let controller = Arc::new(CentralizedController::new(
            ControllerConfig::default(),
            Depot::with_obs(inca_obs::Obs::new()),
        ));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = controller.serve_reactor(listener).unwrap();
        (controller, handle)
    }

    #[test]
    fn roundtrip_two_frames_one_connection() {
        let (controller, handle) = spawn_reactor();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        for _ in 0..2 {
            write_frame(&mut stream, &message("h1", "version.gcc")).unwrap();
            let reply = read_frame(&mut stream).unwrap();
            assert_eq!(ServerResponse::decode(&reply).unwrap(), ServerResponse::Ack);
        }
        assert_eq!(controller.with_depot(|d| d.stats().report_count()), 2);
        let obs = controller.obs().clone();
        assert_eq!(obs.metrics().counter_value("inca_net_frames_total", &[]), Some(2));
        assert!(obs.metrics().gauge_value("inca_net_connections", &[]).unwrap() >= 1.0);
        let hist =
            obs.metrics().histogram_of("inca_net_accept_to_insert_seconds", &[]).unwrap();
        assert_eq!(hist.count(), 2);
        handle.stop();
    }

    #[test]
    fn trickled_partial_frames_reassemble() {
        let (controller, handle) = spawn_reactor();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let payload = message("h2", "version.gcc");
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        // Dribble the frame a few bytes at a time across many writes.
        for piece in wire.chunks(7) {
            stream.write_all(piece).unwrap();
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        let reply = read_frame(&mut stream).unwrap();
        assert_eq!(ServerResponse::decode(&reply).unwrap(), ServerResponse::Ack);
        assert_eq!(controller.with_depot(|d| d.stats().report_count()), 1);
        handle.stop();
    }

    #[test]
    fn many_clients_multiplex_one_reactor() {
        let (controller, handle) = spawn_reactor();
        let addr = handle.addr();
        let clients: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    for _ in 0..5 {
                        write_frame(&mut stream, &message(&format!("host{i}"), "ping")).unwrap();
                        let reply = read_frame(&mut stream).unwrap();
                        assert_eq!(
                            ServerResponse::decode(&reply).unwrap(),
                            ServerResponse::Ack
                        );
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        assert_eq!(controller.with_depot(|d| d.stats().report_count()), 40);
        assert_eq!(controller.with_depot(|d| d.cache().report_count()), 8);
        handle.stop();
    }

    #[test]
    fn stalled_connection_does_not_block_live_traffic() {
        let (controller, handle) = spawn_reactor();
        let _stalled = TcpStream::connect(handle.addr()).unwrap(); // never writes
        let mut half = TcpStream::connect(handle.addr()).unwrap();
        // A half-sent frame parks a second state machine mid-header.
        half.write_all(&[0, 0]).unwrap();
        let mut live = TcpStream::connect(handle.addr()).unwrap();
        write_frame(&mut live, &message("live", "ping")).unwrap();
        let reply = read_frame(&mut live).unwrap();
        assert_eq!(ServerResponse::decode(&reply).unwrap(), ServerResponse::Ack);
        assert_eq!(controller.with_depot(|d| d.stats().report_count()), 1);
        handle.stop();
    }

    #[test]
    fn oversized_frame_rejected_then_closed() {
        let (_controller, handle) = spawn_reactor();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .write_all(&((inca_wire::frame::MAX_FRAME_LEN as u32) + 1).to_be_bytes())
            .unwrap();
        let reply = read_frame(&mut stream).unwrap();
        assert!(matches!(
            ServerResponse::decode(&reply).unwrap(),
            ServerResponse::Rejected(_)
        ));
        // Connection is closed after the rejection.
        assert!(matches!(read_frame(&mut stream), Err(FrameError::Closed)));
        handle.stop();
    }

    #[test]
    fn pipelined_burst_is_batched_and_all_acked() {
        let (controller, handle) = spawn_reactor();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let burst = 50;
        for i in 0..burst {
            write_frame(&mut stream, &message(&format!("h{i}"), "burst")).unwrap();
        }
        for _ in 0..burst {
            let reply = read_frame(&mut stream).unwrap();
            assert_eq!(ServerResponse::decode(&reply).unwrap(), ServerResponse::Ack);
        }
        assert_eq!(controller.with_depot(|d| d.stats().report_count()), burst as u64);
        handle.stop();
    }

    #[test]
    fn backpressure_pauses_reads_and_nothing_is_lost() {
        // Tiny budgets force both backpressure paths: a 1-frame batch
        // budget and a reply watermark under two acks.
        let controller = Arc::new(CentralizedController::new(
            ControllerConfig::default(),
            Depot::with_obs(inca_obs::Obs::new()),
        ));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = controller
            .serve_reactor_config(
                listener,
                ReactorConfig {
                    max_batch_frames: 1,
                    pause_outbuf_bytes: 8,
                    // Pin both kernel buffers (the receive side bounds
                    // how far a paused connection's kernel buffer can
                    // absorb requests the reactor has not read yet).
                    sndbuf_bytes: Some(16 * 1024),
                    rcvbuf_bytes: Some(16 * 1024),
                    ..ReactorConfig::default()
                },
            )
            .unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let burst = 40;
        // Pipeline a burst in one write without reading a single reply:
        // the server must pace itself (1-frame batches, paused reads)
        // rather than drop or wedge.
        let mut wire = Vec::new();
        for i in 0..burst {
            write_frame(&mut wire, &message(&format!("bp{i}"), "bp")).unwrap();
        }
        stream.write_all(&wire).unwrap();
        for _ in 0..burst {
            let reply = read_frame(&mut stream).unwrap();
            assert_eq!(ServerResponse::decode(&reply).unwrap(), ServerResponse::Ack);
        }
        assert_eq!(controller.with_depot(|d| d.stats().report_count()), burst as u64);
        let paused = controller
            .obs()
            .metrics()
            .counter_value("inca_net_backpressure_pauses_total", &[])
            .unwrap_or(0);
        assert!(paused > 0, "tiny budgets must trip the backpressure counter");
        handle.stop();
    }

    /// Regression: a connection paused for backpressure whose replies
    /// drain only through writable events must have read interest
    /// restored (and write interest dropped) after each flush —
    /// conn_ready once skipped the interest recompute, so the paused
    /// daemon was never read again and stale write interest busy-spun
    /// the level-triggered poller.
    #[test]
    fn paused_connection_resumes_after_writable_drain() {
        let controller = Arc::new(CentralizedController::new(
            ControllerConfig::default(),
            Depot::with_obs(inca_obs::Obs::new()),
        ));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = controller
            .serve_reactor_config(
                listener,
                ReactorConfig {
                    pause_outbuf_bytes: 8,
                    // A pinned (so not autotuned) send buffer, with the
                    // client's receive buffer pinned below, caps the
                    // reply path at ~16KiB; the burst's ~40KiB of acks
                    // must overflow it and trip the watermark.
                    sndbuf_bytes: Some(4_096),
                    ..ReactorConfig::default()
                },
            )
            .unwrap();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        set_kernel_buf(&stream, KernelBuf::Recv, 4_096).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let burst: usize = 4_000;
        let mut wire = Vec::new();
        for i in 0..burst {
            write_frame(&mut wire, &message(&format!("wd{i}"), "wd")).unwrap();
        }
        // Push the whole burst from a second thread without reading a
        // single reply until the server quiesces: replies overflow the
        // pinned kernel buffers, a partial flush trips the watermark,
        // and the connection ends up paused with tens of KiB of acks
        // still staged.
        let mut writer_stream = stream.try_clone().unwrap();
        let writer = std::thread::spawn(move || writer_stream.write_all(&wire));
        let metrics = controller.obs().metrics();
        let mut last = 0u64;
        let mut stable = 0;
        let deadline = Instant::now() + Duration::from_secs(30);
        while stable < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(100));
            let now = metrics.counter_value("inca_net_frames_total", &[]).unwrap_or(0);
            if now == last {
                stable += 1;
            } else {
                stable = 0;
                last = now;
            }
        }
        assert!(last > 0, "server must have processed part of the burst");
        // From the quiesced state the staged replies drain purely via
        // writable events — no batch runs while nothing new is read —
        // so only the post-flush interest recompute can unpause the
        // connection for the frame sent after the drain.
        let mut stream = stream;
        for _ in 0..burst {
            let reply = read_frame(&mut stream).unwrap();
            assert_eq!(ServerResponse::decode(&reply).unwrap(), ServerResponse::Ack);
        }
        writer.join().unwrap().unwrap();
        // The connection must have resumed reading: one more frame
        // round-trips instead of idling out.
        write_frame(&mut stream, &message("wd-final", "wd")).unwrap();
        let reply = read_frame(&mut stream).unwrap();
        assert_eq!(ServerResponse::decode(&reply).unwrap(), ServerResponse::Ack);
        assert_eq!(
            controller.with_depot(|d| d.stats().report_count()),
            burst as u64 + 1
        );
        handle.stop();
    }

    /// Regression: the idle sweep used to reap any connection without
    /// recent socket activity — including one the reactor itself had
    /// paused for backpressure. A paused daemon sends no bytes (its
    /// read interest is withdrawn) and receives none (the kernel reply
    /// path is full), so `last_activity` goes stale mid-drain and the
    /// sweep severed a healthy connection with staged acks still
    /// aboard. The sweep must exempt paused/pending-write connections.
    #[test]
    fn idle_sweep_spares_backpressure_paused_connections() {
        let controller = Arc::new(CentralizedController::new(
            ControllerConfig::default(),
            Depot::with_obs(inca_obs::Obs::new()),
        ));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let idle_timeout = Duration::from_millis(300);
        let handle = controller
            .serve_reactor_config(
                listener,
                ReactorConfig {
                    pause_outbuf_bytes: 8,
                    sndbuf_bytes: Some(4_096),
                    idle_timeout,
                    ..ReactorConfig::default()
                },
            )
            .unwrap();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        set_kernel_buf(&stream, KernelBuf::Recv, 4_096).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let burst: usize = 4_000;
        let mut wire = Vec::new();
        for i in 0..burst {
            write_frame(&mut wire, &message(&format!("sw{i}"), "sw")).unwrap();
        }
        // Push the burst without reading a reply: acks overflow the
        // pinned kernel buffers, the watermark pauses the connection,
        // and with the client reading nothing the socket goes byte-
        // silent in both directions.
        let mut writer_stream = stream.try_clone().unwrap();
        let writer = std::thread::spawn(move || writer_stream.write_all(&wire));
        let metrics = controller.obs().metrics();
        let mut last = 0u64;
        let mut stable = 0;
        let deadline = Instant::now() + Duration::from_secs(30);
        while stable < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(100));
            let now = metrics.counter_value("inca_net_frames_total", &[]).unwrap_or(0);
            if now == last {
                stable += 1;
            } else {
                stable = 0;
                last = now;
            }
        }
        assert!(last > 0, "server must have processed part of the burst");
        // Hold the stall across several sweep periods. last_activity is
        // now long past idle_timeout; only the paused/pending-write
        // exemption keeps the connection alive.
        std::thread::sleep(idle_timeout * 4);
        assert!(
            handle.connection_count() >= 1,
            "idle sweep reaped a backpressure-paused connection mid-drain"
        );
        // The drain completes and the connection still works.
        let mut stream = stream;
        for _ in 0..burst {
            let reply = read_frame(&mut stream).unwrap();
            assert_eq!(ServerResponse::decode(&reply).unwrap(), ServerResponse::Ack);
        }
        writer.join().unwrap().unwrap();
        write_frame(&mut stream, &message("sw-final", "sw")).unwrap();
        let reply = read_frame(&mut stream).unwrap();
        assert_eq!(ServerResponse::decode(&reply).unwrap(), ServerResponse::Ack);
        assert_eq!(
            controller.with_depot(|d| d.stats().report_count()),
            burst as u64 + 1
        );
        handle.stop();
    }

    #[test]
    fn disconnect_mid_frame_cleans_up() {
        let (controller, handle) = spawn_reactor();
        {
            let mut stream = TcpStream::connect(handle.addr()).unwrap();
            stream.write_all(&[0, 0, 1]).unwrap(); // partial header
        } // dropped: EOF inside a frame
        let deadline = Instant::now() + Duration::from_secs(5);
        while handle.connection_count() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(handle.connection_count(), 0, "dead connection must be reaped");
        assert_eq!(controller.with_depot(|d| d.stats().report_count()), 0);
        handle.stop();
    }
}
