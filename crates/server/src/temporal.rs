//! Time-travel queries over the archive.
//!
//! The paper's consumer views (Figures 5–8) were bespoke CGI programs
//! over RRDTool files. [`TemporalQuery`] turns them into *queries*: a
//! read-side layer over the depot's [`ArchiveStore`] and report cache
//! that answers "what did the grid look like over this window?"
//! questions — windowed availability aggregates per resource/site/VO,
//! consolidation-aware multi-resolution fetch (the right RRA for the
//! requested window and step), and incident reconstruction that joins
//! archive windows with the trace lineage of the reports that fed them.
//!
//! Obtain one through [`QueryInterface::temporal`]; every query
//! observes its latency into
//! `inca_depot_temporal_query_seconds{kind=...}`. The full cookbook,
//! including the Figure 5–8 reproductions, lives in `docs/QUERYING.md`.
//!
//! [`QueryInterface::temporal`]: crate::QueryInterface::temporal
//! [`ArchiveStore`]: crate::ArchiveStore

use std::sync::Arc;

use inca_obs::metrics::{Histogram, DEFAULT_LATENCY_BOUNDS};
use inca_obs::trace::Event;
use inca_obs::{StoredEvent, TraceStore};
use inca_report::{BranchId, Report, Timestamp};
use inca_rrd::{ConsolidationFn, GraphSeries};

use crate::depot::depot::Depot;

/// Summary of one series over one time window: the "resource X's
/// compliance over the last simulated quarter" answer shape.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowAggregate {
    /// The series the window was computed over.
    pub series: String,
    /// Seconds per point in the archive that answered.
    pub step: u64,
    /// Total points in the window (known + unknown).
    pub points: usize,
    /// Known (non-NaN) points.
    pub known: usize,
    /// Mean of the known points.
    pub mean: f64,
    /// Minimum known point.
    pub min: f64,
    /// Maximum known point.
    pub max: f64,
    /// Fraction of the window with no data (monitoring gaps).
    pub unknown_fraction: f64,
}

/// A contiguous run of archive points below a threshold (or unknown):
/// a dip in an availability series, ready to be joined with lineage.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// The series the incident was found in.
    pub series: String,
    /// Start of the first offending consolidation interval.
    pub start: Timestamp,
    /// End of the last offending consolidation interval.
    pub end: Timestamp,
    /// Lowest known value in the run (NaN when the whole run is a
    /// monitoring gap rather than a measured dip).
    pub trough: f64,
    /// Number of archive points in the run.
    pub points: usize,
}

/// One report execution implicated in an incident, reconstructed from
/// trace lineage: the join of an archive window with `daemon.run`
/// span events.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentCause {
    /// Trace id of the run, for correlating spool/retry/ingest events.
    pub trace_id: Option<u64>,
    /// The reporter that ran.
    pub reporter: String,
    /// Scheduled firing time of the run.
    pub fired_at: Timestamp,
    /// The run's outcome (`succeeded`, `failed`, `killed`).
    pub outcome: String,
}

/// Temporal (time-travel) queries over a depot's archive and cache.
///
/// Construct via [`QueryInterface::temporal`](crate::QueryInterface::temporal).
#[derive(Debug)]
pub struct TemporalQuery<'a> {
    depot: &'a Depot,
    /// `inca_depot_temporal_query_seconds{kind="availability"}`.
    availability_hist: Arc<Histogram>,
    /// `inca_depot_temporal_query_seconds{kind="aggregate"}`.
    aggregate_hist: Arc<Histogram>,
    /// `inca_depot_temporal_query_seconds{kind="multires"}`.
    multires_hist: Arc<Histogram>,
    /// `inca_depot_temporal_query_seconds{kind="rule"}`.
    rule_hist: Arc<Histogram>,
    /// `inca_depot_temporal_query_seconds{kind="reports"}`.
    reports_hist: Arc<Histogram>,
    /// `inca_depot_temporal_query_seconds{kind="incident"}`.
    incident_hist: Arc<Histogram>,
    /// `inca_depot_temporal_query_seconds{kind="trace"}`.
    trace_hist: Arc<Histogram>,
}

impl<'a> TemporalQuery<'a> {
    /// Wraps a depot. Metrics register in the depot's
    /// [`Obs`](inca_obs::Obs) handle, one labelled series per query
    /// kind.
    pub(crate) fn new(depot: &'a Depot) -> TemporalQuery<'a> {
        let metrics = depot.obs().metrics();
        let help = "Time answering one temporal (archive window) query.";
        let hist = |kind: &str| {
            metrics.histogram_with(
                "inca_depot_temporal_query_seconds",
                &[("kind", kind)],
                help,
                &DEFAULT_LATENCY_BOUNDS,
            )
        };
        TemporalQuery {
            depot,
            availability_hist: hist("availability"),
            aggregate_hist: hist("aggregate"),
            multires_hist: hist("multires"),
            rule_hist: hist("rule"),
            reports_hist: hist("reports"),
            incident_hist: hist("incident"),
            trace_hist: hist("trace"),
        }
    }

    /// Observes one query's latency under its kind label.
    fn timed<T>(&self, hist: &Histogram, f: impl FnOnce() -> T) -> T {
        let start = std::time::Instant::now();
        let out = f();
        hist.observe_duration(start.elapsed());
        out
    }

    /// The Figure 5 series: an archived availability percentage for
    /// one resource label and category over a window.
    ///
    /// `category` is a summary category name as recorded by the
    /// consumer (`"Grid"`, `"Development"`, `"Cluster"`, or `"Total"`);
    /// the series name is `availability:{category}:{resource_label}`,
    /// exactly the name [`series_names`](crate::ArchiveStore::series_names)
    /// lists.
    pub fn availability_series(
        &self,
        resource_label: &str,
        category: &str,
        start: Timestamp,
        end: Timestamp,
    ) -> Option<GraphSeries> {
        self.timed(&self.availability_hist, || {
            let series = format!("availability:{category}:{resource_label}");
            let fetch =
                self.depot.archive().fetch_series(&series, ConsolidationFn::Average, start, end)?;
            Some(GraphSeries::from_fetch(series, fetch))
        })
    }

    /// Fetches `series` whether it is consumer-recorded or rule-fed.
    /// Consumer (manual) names are tried verbatim first; a miss whose
    /// name splits as `{rule}:{branch}` — the shape
    /// [`series_names`](crate::ArchiveStore::series_names) lists
    /// rule-fed series under — falls through to the rule-fed store, so
    /// windowed queries see one flat namespace over both.
    fn fetch_any(
        &self,
        series: &str,
        cf: ConsolidationFn,
        start: Timestamp,
        end: Timestamp,
    ) -> Option<inca_rrd::FetchResult> {
        let archive = self.depot.archive();
        if let Some(fetch) = archive.fetch_series(series, cf, start, end) {
            return Some(fetch);
        }
        let (rule, branch) = series.split_once(':')?;
        let branch: BranchId = branch.parse().ok()?;
        archive.fetch_rule_series(rule, &branch, cf, start, end)
    }

    /// Windowed summary of one archived series: mean/min/max
    /// availability and the unknown fraction over `[start, end)`.
    pub fn window_aggregate(
        &self,
        series: &str,
        start: Timestamp,
        end: Timestamp,
    ) -> Option<WindowAggregate> {
        self.timed(&self.aggregate_hist, || {
            let fetch = self.fetch_any(series, ConsolidationFn::Average, start, end)?;
            let graph = GraphSeries::from_fetch(series, fetch);
            let stats = graph.stats();
            Some(WindowAggregate {
                series: series.to_string(),
                step: graph.step,
                points: graph.points.len(),
                known: stats.map_or(0, |s| s.count),
                mean: stats.map_or(f64::NAN, |s| s.mean),
                min: stats.map_or(f64::NAN, |s| s.min),
                max: stats.map_or(f64::NAN, |s| s.max),
                unknown_fraction: graph.unknown_fraction(),
            })
        })
    }

    /// Windowed summaries for every archived series whose name starts
    /// with `series_prefix`, sorted by name.
    ///
    /// Availability series are named
    /// `availability:{category}:{site}-{host}`, so the prefix selects
    /// scope: `"availability:Grid:"` aggregates a whole VO,
    /// `"availability:Grid:sdsc-"` one site, and the full series name
    /// one resource.
    pub fn window_aggregates(
        &self,
        series_prefix: &str,
        start: Timestamp,
        end: Timestamp,
    ) -> Vec<(String, WindowAggregate)> {
        let mut names: Vec<String> = self
            .depot
            .archive()
            .series_names()
            .into_iter()
            .filter(|n| n.starts_with(series_prefix))
            .collect();
        names.sort();
        names
            .into_iter()
            .filter_map(|name| {
                let agg = self.window_aggregate(&name, start, end)?;
                Some((name, agg))
            })
            .collect()
    }

    /// One windowed summary over *every* series matching
    /// `series_prefix` — the federated VO-scope answer shape.
    ///
    /// Per-series windows come from [`TemporalQuery::window_aggregates`]
    /// (so rule-fed rollup series count, via the flat namespace); they
    /// combine into a single [`WindowAggregate`]: `known` and `points`
    /// sum, `mean` weights each series by its known points, `min`/`max`
    /// take the extremes, and the unknown fraction weights by points.
    /// A federated root holding per-site rollup series answers "VO
    /// compliance last quarter" here without touching one leaf
    /// document. `None` when no series matches.
    pub fn federated_aggregate(
        &self,
        series_prefix: &str,
        start: Timestamp,
        end: Timestamp,
    ) -> Option<WindowAggregate> {
        let parts = self.window_aggregates(series_prefix, start, end);
        if parts.is_empty() {
            return None;
        }
        let mut combined = WindowAggregate {
            series: format!("{series_prefix}*"),
            step: 0,
            points: 0,
            known: 0,
            mean: f64::NAN,
            min: f64::NAN,
            max: f64::NAN,
            unknown_fraction: 0.0,
        };
        let mut weighted_sum = 0.0;
        let mut unknown_points = 0.0;
        for (_, agg) in &parts {
            combined.step = combined.step.max(agg.step);
            combined.points += agg.points;
            combined.known += agg.known;
            if agg.known > 0 {
                weighted_sum += agg.mean * agg.known as f64;
                combined.min = if combined.min.is_nan() {
                    agg.min
                } else {
                    combined.min.min(agg.min)
                };
                combined.max = if combined.max.is_nan() {
                    agg.max
                } else {
                    combined.max.max(agg.max)
                };
            }
            unknown_points += agg.unknown_fraction * agg.points as f64;
        }
        if combined.known > 0 {
            combined.mean = weighted_sum / combined.known as f64;
        }
        if combined.points > 0 {
            combined.unknown_fraction = unknown_points / combined.points as f64;
        }
        Some(combined)
    }

    /// Multi-resolution fetch: one archived series over a window, from
    /// the archive whose resolution best matches `target_step` (see
    /// [`Rrd::fetch_resolution`](inca_rrd::Rrd::fetch_resolution) for
    /// the selection rules). A month-long window asks for hourly
    /// points; a day-long window for ten-minute points — same series,
    /// different RRA.
    pub fn series_at(
        &self,
        series: &str,
        cf: ConsolidationFn,
        start: Timestamp,
        end: Timestamp,
        target_step: u64,
    ) -> Option<GraphSeries> {
        self.timed(&self.multires_hist, || {
            let fetch = self
                .depot
                .archive()
                .fetch_series_resolution(series, cf, start, end, target_step)?;
            Some(GraphSeries::from_fetch(series, fetch))
        })
    }

    /// The Figure 6 series: a rule-fed archive (e.g. pathload
    /// bandwidth) for one measurement branch, labelled
    /// `{rule_name}:{branch}` exactly as
    /// [`QueryInterface::archived`](crate::QueryInterface::archived)
    /// labels it.
    pub fn rule_series(
        &self,
        rule_name: &str,
        branch: &BranchId,
        cf: ConsolidationFn,
        start: Timestamp,
        end: Timestamp,
    ) -> Option<GraphSeries> {
        self.timed(&self.rule_hist, || {
            let fetch =
                self.depot.archive().fetch_rule_series(rule_name, branch, cf, start, end)?;
            Some(GraphSeries::from_fetch(format!("{rule_name}:{branch}"), fetch))
        })
    }

    /// Every cached report for one resource on one site in one VO —
    /// the row-building query behind the Figure 4 status page and the
    /// software-stack detail page. Parse failures and cache errors
    /// yield an empty set, matching the pages' "no data" rendering.
    pub fn resource_reports(
        &self,
        vo: &str,
        site: &str,
        resource: &str,
    ) -> Vec<(BranchId, Report)> {
        let suffix = format!("resource={resource},site={site},vo={vo}");
        self.reports_with_suffix(&suffix)
    }

    /// Every cached report in one VO — the probe-matrix query behind
    /// the §3.3 cross-site Grid-availability metric.
    pub fn vo_reports(&self, vo: &str) -> Vec<(BranchId, Report)> {
        self.reports_with_suffix(&format!("vo={vo}"))
    }

    fn reports_with_suffix(&self, suffix: &str) -> Vec<(BranchId, Report)> {
        self.timed(&self.reports_hist, || {
            let Ok(query) = suffix.parse::<BranchId>() else { return Vec::new() };
            let Ok((raw, _hit)) = self.depot.query_reports(Some(&query)) else {
                return Vec::new();
            };
            raw.into_iter()
                .filter_map(|(branch, xml)| Some((branch, Report::parse(&xml).ok()?)))
                .collect()
        })
    }

    /// Finds incidents in an archived series: maximal runs of
    /// consecutive points that are below `threshold` or unknown. A dip
    /// in a Figure 5 availability series becomes a window with exact
    /// bounds, ready for [`incident_causes`](TemporalQuery::incident_causes).
    pub fn incidents(
        &self,
        series: &str,
        threshold: f64,
        start: Timestamp,
        end: Timestamp,
    ) -> Vec<Incident> {
        self.timed(&self.incident_hist, || {
            let Some(fetch) =
                self.depot.archive().fetch_series(series, ConsolidationFn::Average, start, end)
            else {
                return Vec::new();
            };
            let step = fetch.step;
            let mut out: Vec<Incident> = Vec::new();
            let mut run: Option<Incident> = None;
            for (point_end, value) in fetch.points {
                let offending = value.is_nan() || value < threshold;
                if offending {
                    let run = run.get_or_insert_with(|| Incident {
                        series: series.to_string(),
                        start: point_end - step,
                        end: point_end,
                        trough: f64::NAN,
                        points: 0,
                    });
                    run.end = point_end;
                    run.points += 1;
                    if !value.is_nan() && !(run.trough <= value) {
                        run.trough = value;
                    }
                } else if let Some(done) = run.take() {
                    out.push(done);
                }
            }
            out.extend(run);
            out
        })
    }

    /// Joins an incident with trace lineage: which reporter runs on
    /// `resource` fired inside the incident window, with their trace
    /// ids and outcomes. `events` is the captured event stream (e.g.
    /// an [`inca_obs::Obs`] ring drain); the join keys are the
    /// `daemon.run` span's `resource` and `fired_at` fields, which the
    /// daemon stamps on every reporter execution.
    pub fn incident_causes(
        &self,
        incident: &Incident,
        resource: &str,
        events: &[Event],
    ) -> Vec<IncidentCause> {
        self.timed(&self.incident_hist, || {
            causes_from(incident, resource, events.iter().map(StoredEvent::from_event))
        })
    }

    /// [`incident_causes`](TemporalQuery::incident_causes) against a
    /// persisted [`TraceStore`] instead of an in-memory event capture:
    /// the store's `daemon.run` time-window posting answers the
    /// incident window directly, so a dip found weeks later — long
    /// after the process that observed it exited — still resolves to
    /// the exact reporter runs (with trace ids) that caused it.
    pub fn incident_causes_stored(
        &self,
        incident: &Incident,
        resource: &str,
        store: &TraceStore,
    ) -> Vec<IncidentCause> {
        self.timed(&self.incident_hist, || {
            let events = store.by_name_window(
                "daemon.run",
                incident.start.as_secs(),
                incident.end.as_secs(),
            );
            causes_from(incident, resource, events.into_iter())
        })
    }

    /// The `trace(trace_id)` query kind: one report's full persisted
    /// lifecycle from a [`TraceStore`], ordered along its critical
    /// path ([`TraceStore::critical_path`] — for the report pipeline
    /// that is `daemon.run → controller.accept → depot.insert →
    /// depot.archive.write`). The follow-up query after
    /// [`incident_causes_stored`](TemporalQuery::incident_causes_stored)
    /// hands back a trace id.
    pub fn trace(&self, store: &TraceStore, trace_id: u64) -> Vec<StoredEvent> {
        self.timed(&self.trace_hist, || store.critical_path(trace_id))
    }
}

/// The incident/lineage join shared by the in-memory and persisted
/// entry points: `daemon.run` events on `resource` whose `fired_at`
/// falls inside the incident window, sorted by firing time.
fn causes_from(
    incident: &Incident,
    resource: &str,
    events: impl Iterator<Item = StoredEvent>,
) -> Vec<IncidentCause> {
    let mut causes: Vec<IncidentCause> = events
        .filter(|e| e.name == "daemon.run")
        .filter(|e| e.field("resource") == Some(resource))
        .filter_map(|e| {
            let fired_secs: u64 = e.field("fired_at")?.parse().ok()?;
            let fired_at = Timestamp::from_secs(fired_secs);
            if fired_at < incident.start || fired_at >= incident.end {
                return None;
            }
            Some(IncidentCause {
                trace_id: e.trace_id,
                reporter: e.field("reporter").unwrap_or_default().to_string(),
                fired_at,
                outcome: e.field("outcome").unwrap_or("unknown").to_string(),
            })
        })
        .collect();
    causes.sort_by_key(|c| c.fired_at);
    causes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryInterface;
    use inca_report::ReportBuilder;
    use inca_rrd::ArchivePolicy;
    use inca_wire::envelope::{Envelope, EnvelopeMode};

    fn depot_with_availability() -> Depot {
        let mut depot = Depot::new();
        let policy = ArchivePolicy::every("availability", 86_400);
        let t0 = Timestamp::from_secs(600_000);
        for i in 1..=24u64 {
            // A dip between samples 10 and 13.
            let pct = if (10..=13).contains(&i) { 50.0 } else { 100.0 };
            depot.archive_mut().record(
                "availability:Grid:sdsc-tg-login1",
                &policy,
                600,
                t0 + i * 600,
                pct,
            );
            depot.archive_mut().record(
                "availability:Grid:ncsa-tg-login2",
                &policy,
                600,
                t0 + i * 600,
                100.0,
            );
        }
        depot
    }

    #[test]
    fn availability_series_matches_archived_series() {
        let depot = depot_with_availability();
        let q = QueryInterface::new(&depot);
        let t0 = Timestamp::from_secs(600_000);
        let end = t0 + 25 * 600;
        let via_temporal = q
            .temporal()
            .availability_series("sdsc-tg-login1", "Grid", t0, end)
            .unwrap();
        let via_archived = q
            .archived_series(
                "availability:Grid:sdsc-tg-login1",
                ConsolidationFn::Average,
                t0,
                end,
            )
            .unwrap();
        assert_eq!(via_temporal, via_archived, "temporal layer must not change the answer");
    }

    #[test]
    fn window_aggregate_summarizes() {
        let depot = depot_with_availability();
        let q = QueryInterface::new(&depot);
        let t0 = Timestamp::from_secs(600_000);
        let agg = q
            .temporal()
            .window_aggregate("availability:Grid:sdsc-tg-login1", t0, t0 + 25 * 600)
            .unwrap();
        assert_eq!(agg.step, 600);
        assert_eq!(agg.min, 50.0);
        assert_eq!(agg.max, 100.0);
        assert!(agg.mean > 90.0 && agg.mean < 100.0);
        assert!(agg.known >= 20);
        assert!(q.temporal().window_aggregate("missing", t0, t0 + 600).is_none());
    }

    #[test]
    fn window_aggregates_filter_by_prefix() {
        let depot = depot_with_availability();
        let q = QueryInterface::new(&depot);
        let t0 = Timestamp::from_secs(600_000);
        let temporal = q.temporal();
        let vo_wide = temporal.window_aggregates("availability:Grid:", t0, t0 + 25 * 600);
        assert_eq!(vo_wide.len(), 2);
        assert_eq!(vo_wide[0].0, "availability:Grid:ncsa-tg-login2");
        let site = temporal.window_aggregates("availability:Grid:sdsc-", t0, t0 + 25 * 600);
        assert_eq!(site.len(), 1);
        assert!(temporal.window_aggregates("availability:Cluster:", t0, t0 + 600).is_empty());
    }

    /// A depot archiving federated per-site rollups through the
    /// rule-fed store: three sites reporting hourly availability.
    fn depot_with_rollups() -> (Depot, Timestamp) {
        let mut depot = Depot::new();
        depot.add_archive_rule(crate::federation::rollup_rule("tg", 3600));
        let t0 = Timestamp::from_secs(600_000);
        for (site, pct) in [("sdsc", 100.0), ("ncsa", 80.0), ("psc", 90.0)] {
            for i in 1..=6u64 {
                let t = t0 + i * 3600;
                let report = ReportBuilder::new("fed.rollup.availability", "1")
                    .gmt(t)
                    .body_value("availability", format!("{pct:.4}"))
                    .success()
                    .unwrap();
                let branch = crate::federation::rollup_branch(site, "tg");
                let env = Envelope::new(branch, report.to_xml());
                depot.receive(&env.encode(EnvelopeMode::Body), t).unwrap();
            }
        }
        (depot, t0)
    }

    #[test]
    fn window_aggregate_reads_rule_fed_series_through_flat_namespace() {
        let (depot, t0) = depot_with_rollups();
        let q = QueryInterface::new(&depot);
        let series =
            format!("fed-availability:{}", crate::federation::rollup_branch("ncsa", "tg"));
        let agg = q.temporal().window_aggregate(&series, t0, t0 + 7 * 3600).unwrap();
        assert!(agg.known >= 4, "rule-fed points visible, got {}", agg.known);
        assert!((agg.mean - 80.0).abs() < 1e-9);
        // A name that is neither manual nor rule:branch still misses.
        assert!(q.temporal().window_aggregate("no:such=series", t0, t0 + 3600).is_none());
    }

    #[test]
    fn federated_aggregate_combines_rollup_series() {
        let (depot, t0) = depot_with_rollups();
        let q = QueryInterface::new(&depot);
        let temporal = q.temporal();
        let prefix = crate::federation::rollup_series_prefix();
        let agg = temporal.federated_aggregate(&prefix, t0, t0 + 7 * 3600).unwrap();
        assert_eq!(agg.series, format!("{prefix}*"));
        assert!((agg.min - 80.0).abs() < 1e-9, "worst site bounds the min");
        assert!((agg.max - 100.0).abs() < 1e-9, "best site bounds the max");
        assert!(agg.mean > 80.0 && agg.mean < 100.0, "VO mean between extremes");
        let per_site = temporal.window_aggregates(&prefix, t0, t0 + 7 * 3600);
        assert_eq!(per_site.len(), 3);
        assert_eq!(
            agg.known,
            per_site.iter().map(|(_, a)| a.known).sum::<usize>(),
            "combined known points are the per-site sum"
        );
        assert!(temporal.federated_aggregate("nothing:", t0, t0 + 3600).is_none());
    }

    #[test]
    fn incidents_found_with_exact_bounds() {
        let depot = depot_with_availability();
        let q = QueryInterface::new(&depot);
        let t0 = Timestamp::from_secs(600_000);
        let incidents = q.temporal().incidents(
            "availability:Grid:sdsc-tg-login1",
            99.0,
            t0,
            t0 + 25 * 600,
        );
        assert_eq!(incidents.len(), 1);
        let inc = &incidents[0];
        assert_eq!(inc.start, t0 + 9 * 600);
        assert_eq!(inc.end, t0 + 13 * 600);
        assert_eq!(inc.points, 4);
        assert_eq!(inc.trough, 50.0);
        // The healthy resource has no incidents.
        assert!(q
            .temporal()
            .incidents("availability:Grid:ncsa-tg-login2", 99.0, t0, t0 + 25 * 600)
            .is_empty());
    }

    #[test]
    fn incident_causes_join_on_trace_fields() {
        let depot = depot_with_availability();
        let q = QueryInterface::new(&depot);
        let t0 = Timestamp::from_secs(600_000);
        let incident = Incident {
            series: "availability:Grid:sdsc-tg-login1".into(),
            start: t0 + 9 * 600,
            end: t0 + 13 * 600,
            trough: 50.0,
            points: 4,
        };
        // Synthesize the daemon's span events: one failed run inside
        // the window, one successful run outside it, one on another
        // resource.
        let obs = inca_obs::Obs::new();
        let ring = std::sync::Arc::new(inca_obs::sinks::RingSink::new(16));
        obs.tracer().add_sink(ring.clone());
        let mk = |fired: Timestamp, resource: &str, outcome: &str| {
            obs.span("daemon.run")
                .trace_ctx(inca_obs::TraceContext::root())
                .field("reporter", "grid.services.gram.probe")
                .field("resource", resource)
                .field("fired_at", fired.as_secs())
                .field("outcome", outcome)
                .finish();
        };
        mk(t0 + 10 * 600, "sdsc-tg-login1", "failed");
        mk(t0 + 20 * 600, "sdsc-tg-login1", "succeeded");
        mk(t0 + 10 * 600, "ncsa-tg-login2", "succeeded");
        let events = ring.drain();
        let causes = q.temporal().incident_causes(&incident, "sdsc-tg-login1", &events);
        assert_eq!(causes.len(), 1);
        assert_eq!(causes[0].outcome, "failed");
        assert_eq!(causes[0].reporter, "grid.services.gram.probe");
        assert_eq!(causes[0].fired_at, t0 + 10 * 600);
        assert!(causes[0].trace_id.is_some(), "spans carry trace ids for lineage walks");
    }

    #[test]
    fn incident_causes_stored_answer_from_reopened_store() {
        use inca_obs::{TraceStore, TraceStoreConfig};
        let dir = std::env::temp_dir()
            .join(format!("inca-temporal-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let depot = depot_with_availability();
        let q = QueryInterface::new(&depot);
        let t0 = Timestamp::from_secs(600_000);
        let incident = Incident {
            series: "availability:Grid:sdsc-tg-login1".into(),
            start: t0 + 9 * 600,
            end: t0 + 13 * 600,
            trough: 50.0,
            points: 4,
        };

        let failed_trace;
        {
            let store = std::sync::Arc::new(
                TraceStore::open(&dir, TraceStoreConfig::default()).unwrap(),
            );
            let obs = inca_obs::Obs::new();
            obs.tracer().add_sink(store.clone());
            let mk = |fired: Timestamp, resource: &str, outcome: &str| {
                let ctx = inca_obs::TraceContext::root();
                let span = obs
                    .span("daemon.run")
                    .trace_ctx(ctx)
                    .field("reporter", "grid.services.gram.probe")
                    .field("resource", resource)
                    .field("fired_at", fired.as_secs())
                    .field("outcome", outcome);
                let child = span.child_ctx().unwrap();
                obs.span("depot.insert").trace_ctx(child).finish();
                span.finish();
                ctx.trace_id
            };
            failed_trace = mk(t0 + 10 * 600, "sdsc-tg-login1", "failed");
            mk(t0 + 20 * 600, "sdsc-tg-login1", "succeeded");
            mk(t0 + 10 * 600, "ncsa-tg-login2", "succeeded");
            obs.tracer().clear_sinks();
        } // the writing store is gone; only the files remain

        let store = TraceStore::open(&dir, TraceStoreConfig::default()).unwrap();
        let causes = q.temporal().incident_causes_stored(&incident, "sdsc-tg-login1", &store);
        assert_eq!(causes.len(), 1);
        assert_eq!(causes[0].outcome, "failed");
        assert_eq!(causes[0].trace_id, Some(failed_trace));

        let lifecycle = q.temporal().trace(&store, failed_trace);
        let names: Vec<&str> = lifecycle.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["daemon.run", "depot.insert"], "critical path order");

        let hist = depot
            .obs()
            .metrics()
            .histogram_of("inca_depot_temporal_query_seconds", &[("kind", "trace")])
            .expect("trace kind registered");
        assert_eq!(hist.count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resource_reports_match_query_interface() {
        let mut depot = Depot::new();
        let t = Timestamp::from_secs(1_000);
        for (branch, value) in [
            ("reporter=version.globus,resource=tg1,site=sdsc,vo=tg", "2.4.3"),
            ("reporter=version.globus,resource=tg2,site=ncsa,vo=tg", "2.4.1"),
        ] {
            let report = ReportBuilder::new("r", "1.0")
                .gmt(t)
                .body_value("packageVersion", value)
                .success()
                .unwrap();
            let env = Envelope::new(branch.parse().unwrap(), report.to_xml());
            depot.receive(&env.encode(EnvelopeMode::Body), t).unwrap();
        }
        let q = QueryInterface::new(&depot);
        let direct = q.reports(Some(&"resource=tg1,site=sdsc,vo=tg".parse().unwrap())).unwrap();
        let temporal = q.temporal().resource_reports("tg", "sdsc", "tg1");
        assert_eq!(temporal.len(), 1);
        assert_eq!(direct.len(), temporal.len());
        assert_eq!(direct[0].0, temporal[0].0);
        assert_eq!(direct[0].1.to_xml(), temporal[0].1.to_xml());
        assert_eq!(q.temporal().vo_reports("tg").len(), 2);
        assert!(q.temporal().vo_reports("other").is_empty());
    }

    #[test]
    fn temporal_metrics_register_per_kind() {
        let depot = Depot::with_obs(inca_obs::Obs::new());
        let q = QueryInterface::new(&depot);
        let temporal = q.temporal();
        let t = Timestamp::from_secs(1_000);
        temporal.window_aggregate("missing", t, t + 600);
        let hist = depot
            .obs()
            .metrics()
            .histogram_of("inca_depot_temporal_query_seconds", &[("kind", "aggregate")])
            .expect("aggregate series registered");
        assert_eq!(hist.count(), 1);
    }
}
