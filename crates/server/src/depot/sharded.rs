//! Sharded cache — the paper's proposed scalability fix, implemented
//! as an ablation.
//!
//! §5.2.2: "the cache will be split into multiple smaller files to
//! minimize XML parsing time". [`ShardedCache`] splits the single
//! document by the leading (most general) components of each branch
//! identifier — e.g. depth 2 shards by `vo` + `site` — so an update
//! only streams through its own shard. Query semantics are identical
//! to [`XmlCache`]; the `cache_shards` bench quantifies the insert-time
//! saving.

use std::collections::BTreeMap;
use std::sync::Arc;

use inca_obs::metrics::Gauge;
use inca_obs::Obs;
use inca_report::BranchId;

use crate::depot::cache::{CacheError, XmlCache};

/// A cache split into per-prefix shards.
#[derive(Debug, Clone)]
pub struct ShardedCache {
    /// How many general-most hierarchy components form the shard key.
    depth: usize,
    shards: BTreeMap<String, XmlCache>,
    /// Materialized shard count (`inca_depot_shards`).
    shards_gauge: Arc<Gauge>,
    /// Bytes of the largest shard (`inca_depot_shard_largest_bytes`).
    largest_gauge: Arc<Gauge>,
}

impl ShardedCache {
    /// Creates a cache sharded on the first `depth` hierarchy
    /// components (clamped to ≥ 1), observing into [`Obs::global`].
    pub fn new(depth: usize) -> ShardedCache {
        ShardedCache::with_obs(depth, &Obs::global())
    }

    /// Like [`ShardedCache::new`], with gauges registered in `obs`.
    pub fn with_obs(depth: usize, obs: &Obs) -> ShardedCache {
        ShardedCache {
            depth: depth.max(1),
            shards: BTreeMap::new(),
            shards_gauge: obs
                .metrics()
                .gauge("inca_depot_shards", "Materialized cache shards."),
            largest_gauge: obs.metrics().gauge(
                "inca_depot_shard_largest_bytes",
                "Size of the largest cache shard (the document an update streams through).",
            ),
        }
    }

    /// The shard key for a branch: its `depth` general-most pairs.
    fn shard_key(&self, branch: &BranchId) -> String {
        let mut key = String::new();
        for (i, (n, v)) in branch.hierarchy().take(self.depth).enumerate() {
            if i > 0 {
                key.push('|');
            }
            key.push_str(n);
            key.push('=');
            key.push_str(v);
        }
        key
    }

    /// Inserts or replaces the report at `branch` (touching only its
    /// shard).
    pub fn update(&mut self, branch: &BranchId, report_xml: &str) -> Result<(), CacheError> {
        let result = self
            .shards
            .entry(self.shard_key(branch))
            .or_default()
            .update(branch, report_xml);
        self.sync_gauges();
        result
    }

    /// Batched insert: items are grouped by shard and each touched
    /// shard streams its document exactly once
    /// ([`XmlCache::insert_batch`]), so a burst costs O(batch +
    /// touched-shard bytes) instead of O(batch × shard).
    pub fn insert_batch(&mut self, items: &[(&BranchId, &str)]) -> Result<(), CacheError> {
        let mut by_shard: BTreeMap<String, Vec<(&BranchId, &str)>> = BTreeMap::new();
        for &(branch, xml) in items {
            by_shard.entry(self.shard_key(branch)).or_default().push((branch, xml));
        }
        let mut result = Ok(());
        for (key, group) in by_shard {
            if let Err(e) = self.shards.entry(key).or_default().insert_batch(&group) {
                result = Err(e);
                break;
            }
        }
        self.sync_gauges();
        result
    }

    /// The persisted form: one `(shard key, document)` pair per shard.
    pub fn shard_documents(&self) -> impl Iterator<Item = (&str, &str)> {
        self.shards.iter().map(|(k, c)| (k.as_str(), c.document()))
    }

    /// Restores a cache persisted via [`ShardedCache::shard_documents`],
    /// validating every shard document. Gauges reflect the restored
    /// state immediately — a freshly loaded cache must not report zero
    /// (or stale) shard sizes until the first insert happens to land
    /// in the largest shard.
    pub fn from_documents<I, K, D>(depth: usize, docs: I, obs: &Obs) -> Result<ShardedCache, CacheError>
    where
        I: IntoIterator<Item = (K, D)>,
        K: Into<String>,
        D: Into<String>,
    {
        let mut cache = ShardedCache::with_obs(depth, obs);
        for (key, doc) in docs {
            cache.shards.insert(key.into(), XmlCache::from_document(doc.into())?);
        }
        cache.sync_gauges();
        Ok(cache)
    }

    /// Recomputes both gauges from the shard map. Every mutation (and
    /// every load) funnels through here so the exported
    /// `inca_depot_shard_largest_bytes` can never go stale against
    /// [`ShardedCache::largest_shard_bytes`].
    fn sync_gauges(&self) {
        self.shards_gauge.set(self.shards.len() as f64);
        self.largest_gauge.set(self.largest_shard_bytes() as f64);
    }

    /// The exact report at a full branch identifier, or `None`: the
    /// shard key routes the lookup to the one shard that could hold
    /// it, and that shard's branch index answers in one probe —
    /// no shard walk, no document scan.
    pub fn report_exact(&self, branch: &BranchId) -> Option<&str> {
        self.shards.get(&self.shard_key(branch))?.report_exact(branch)
    }

    /// All reports matching a suffix query, across shards.
    pub fn reports(
        &self,
        query: Option<&BranchId>,
    ) -> Result<Vec<(BranchId, String)>, CacheError> {
        let mut out = Vec::new();
        for shard in self.shards.values() {
            out.extend(shard.reports(query)?);
        }
        Ok(out)
    }

    /// Number of cached reports across all shards.
    pub fn report_count(&self) -> usize {
        self.shards.values().map(XmlCache::report_count).sum()
    }

    /// Total bytes across shards.
    pub fn size_bytes(&self) -> usize {
        self.shards.values().map(XmlCache::size_bytes).sum()
    }

    /// Number of shards currently materialized.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Size of the largest shard — the document an update actually
    /// streams through.
    pub fn largest_shard_bytes(&self) -> usize {
        self.shards.values().map(XmlCache::size_bytes).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inca_report::{ReportBuilder, Timestamp};

    fn report(name: &str, v: &str) -> String {
        ReportBuilder::new(name, "1.0")
            .gmt(Timestamp::from_secs(0))
            .body_value("v", v)
            .success()
            .unwrap()
            .to_xml()
    }

    fn branch(s: &str) -> BranchId {
        s.parse().unwrap()
    }

    #[test]
    fn shards_split_by_prefix() {
        let mut cache = ShardedCache::new(2); // vo + site
        cache.update(&branch("reporter=a,resource=m1,site=sdsc,vo=tg"), &report("a", "1")).unwrap();
        cache.update(&branch("reporter=b,resource=m2,site=ncsa,vo=tg"), &report("b", "2")).unwrap();
        cache.update(&branch("reporter=c,resource=m1,site=sdsc,vo=tg"), &report("c", "3")).unwrap();
        assert_eq!(cache.shard_count(), 2);
        assert_eq!(cache.report_count(), 3);
    }

    #[test]
    fn queries_span_shards() {
        let mut cache = ShardedCache::new(2);
        for (b, r) in [
            ("reporter=a,resource=m1,site=sdsc,vo=tg", "1"),
            ("reporter=b,resource=m2,site=ncsa,vo=tg", "2"),
            ("reporter=c,resource=m3,site=psc,vo=tg", "3"),
        ] {
            cache.update(&branch(b), &report("r", r)).unwrap();
        }
        let all = cache.reports(Some(&branch("vo=tg"))).unwrap();
        assert_eq!(all.len(), 3);
        let sdsc = cache.reports(Some(&branch("site=sdsc,vo=tg"))).unwrap();
        assert_eq!(sdsc.len(), 1);
    }

    #[test]
    fn exact_lookup_routes_to_one_shard() {
        let mut cache = ShardedCache::new(2);
        for (b, r) in [
            ("reporter=a,resource=m1,site=sdsc,vo=tg", "1"),
            ("reporter=b,resource=m2,site=ncsa,vo=tg", "2"),
        ] {
            cache.update(&branch(b), &report("r", r)).unwrap();
        }
        let hit = cache
            .report_exact(&branch("reporter=a,resource=m1,site=sdsc,vo=tg"))
            .expect("cached report found");
        assert!(hit.contains(">1<"));
        // A full identifier that only differs below the shard key
        // misses inside the right shard; an unknown site misses the
        // shard map entirely.
        assert!(cache.report_exact(&branch("reporter=z,resource=m1,site=sdsc,vo=tg")).is_none());
        assert!(cache.report_exact(&branch("reporter=a,resource=m1,site=psc,vo=tg")).is_none());
    }

    #[test]
    fn update_replaces_within_shard() {
        let mut cache = ShardedCache::new(1);
        let b = branch("reporter=a,site=sdsc,vo=tg");
        cache.update(&b, &report("a", "old")).unwrap();
        cache.update(&b, &report("a", "new")).unwrap();
        assert_eq!(cache.report_count(), 1);
        let (_, xml) = &cache.reports(None).unwrap()[0];
        assert!(xml.contains("new") && !xml.contains("old"));
    }

    #[test]
    fn deeper_sharding_shrinks_walked_documents() {
        // Same content in a depth-1 (one shard: all vo=tg) and a
        // depth-3 cache: the largest shard shrinks with depth.
        let mut coarse = ShardedCache::new(1);
        let mut fine = ShardedCache::new(3);
        for i in 0..60 {
            let b = branch(&format!(
                "reporter=r{i},resource=m{},site=s{},vo=tg",
                i % 6,
                i % 3
            ));
            let r = report(&format!("r{i}"), &"x".repeat(500));
            coarse.update(&b, &r).unwrap();
            fine.update(&b, &r).unwrap();
        }
        assert_eq!(coarse.shard_count(), 1);
        assert!(fine.shard_count() >= 3);
        assert_eq!(coarse.report_count(), fine.report_count());
        assert!(
            fine.largest_shard_bytes() < coarse.largest_shard_bytes() / 2,
            "fine {} vs coarse {}",
            fine.largest_shard_bytes(),
            coarse.largest_shard_bytes()
        );
    }

    #[test]
    fn depth_zero_clamped_to_one() {
        let cache = ShardedCache::new(0);
        assert_eq!(cache.depth, 1);
    }

    #[test]
    fn batch_insert_matches_sequential_updates() {
        let mut batched = ShardedCache::new(2);
        let mut reference = ShardedCache::new(2);
        let branches: Vec<BranchId> = (0..30)
            .map(|i| branch(&format!("reporter=r{i},resource=m{},site=s{},vo=tg", i % 5, i % 3)))
            .collect();
        let reports: Vec<String> = (0..30).map(|i| report(&format!("r{i}"), &i.to_string())).collect();
        let items: Vec<(&BranchId, &str)> =
            branches.iter().zip(reports.iter().map(String::as_str)).collect();
        batched.insert_batch(&items).unwrap();
        for (b, xml) in &items {
            reference.update(b, xml).unwrap();
        }
        assert_eq!(batched.shard_count(), reference.shard_count());
        let a: Vec<(&str, &str)> = batched.shard_documents().collect();
        let b: Vec<(&str, &str)> = reference.shard_documents().collect();
        assert_eq!(a, b, "per-shard documents must match the sequential result");
    }

    #[test]
    fn gauges_track_every_mutation_and_survive_reload() {
        // Regression: the largest-shard gauge used to be refreshed
        // only by plain updates, so a batch insert or a save/load
        // round-trip could leave it stale against the real maximum.
        let obs = Obs::new();
        let mut cache = ShardedCache::with_obs(2, &obs);
        let gauge = |name: &str| obs.metrics().gauge_value(name, &[]).unwrap();

        let branches: Vec<BranchId> = (0..12)
            .map(|i| branch(&format!("reporter=r{i},resource=m1,site=s{},vo=tg", i % 3)))
            .collect();
        let reports: Vec<String> =
            (0..12).map(|i| report(&format!("r{i}"), &"x".repeat(200 * (i + 1)))).collect();
        let items: Vec<(&BranchId, &str)> =
            branches.iter().zip(reports.iter().map(String::as_str)).collect();
        cache.insert_batch(&items).unwrap();
        assert_eq!(gauge("inca_depot_shards"), cache.shard_count() as f64);
        assert_eq!(
            gauge("inca_depot_shard_largest_bytes"),
            cache.largest_shard_bytes() as f64,
            "batch insert must refresh the largest-shard gauge"
        );

        // Save/load round-trip into a fresh registry: the gauges must
        // describe the loaded shards, not remain at zero.
        let docs: Vec<(String, String)> = cache
            .shard_documents()
            .map(|(k, d)| (k.to_string(), d.to_string()))
            .collect();
        let obs2 = Obs::new();
        let loaded = ShardedCache::from_documents(2, docs, &obs2).unwrap();
        assert_eq!(loaded.largest_shard_bytes(), cache.largest_shard_bytes());
        assert_eq!(
            obs2.metrics().gauge_value("inca_depot_shard_largest_bytes", &[]).unwrap(),
            loaded.largest_shard_bytes() as f64,
            "restored cache must report its real largest shard"
        );
        assert_eq!(
            obs2.metrics().gauge_value("inca_depot_shards", &[]).unwrap(),
            loaded.shard_count() as f64
        );
    }

    #[test]
    fn restore_of_empty_document_set_zeroes_gauges() {
        // An operator restoring an empty depot must see zeroed gauges,
        // not whatever the registry held before.
        let obs = Obs::new();
        obs.metrics().gauge("inca_depot_shards", "h").set(99.0);
        obs.metrics().gauge("inca_depot_shard_largest_bytes", "h").set(12_345.0);
        let empty: Vec<(String, String)> = Vec::new();
        let cache = ShardedCache::from_documents(2, empty, &obs).unwrap();
        assert_eq!(cache.shard_count(), 0);
        assert_eq!(obs.metrics().gauge_value("inca_depot_shards", &[]).unwrap(), 0.0);
        assert_eq!(
            obs.metrics().gauge_value("inca_depot_shard_largest_bytes", &[]).unwrap(),
            0.0
        );
    }

    #[test]
    fn restore_overwrites_stale_gauges_in_shared_registry() {
        // A depot restarting in-process reuses the same registry; the
        // restore path must overwrite the previous incarnation's values
        // rather than leave them describing the dead cache.
        let obs = Obs::new();
        let mut first = ShardedCache::with_obs(2, &obs);
        first
            .update(&branch("reporter=a,resource=m1,site=sdsc,vo=tg"), &report("a", &"x".repeat(5_000)))
            .unwrap();
        let stale = obs.metrics().gauge_value("inca_depot_shard_largest_bytes", &[]).unwrap();
        assert!(stale > 0.0);

        // Restore a much smaller cache into the SAME registry.
        let mut small = ShardedCache::new(2);
        small.update(&branch("reporter=b,resource=m2,site=ncsa,vo=tg"), &report("b", "1")).unwrap();
        let docs: Vec<(String, String)> =
            small.shard_documents().map(|(k, d)| (k.to_string(), d.to_string())).collect();
        let restored = ShardedCache::from_documents(2, docs, &obs).unwrap();
        let now = obs.metrics().gauge_value("inca_depot_shard_largest_bytes", &[]).unwrap();
        assert_eq!(now, restored.largest_shard_bytes() as f64);
        assert!(now < stale, "restore must shrink the stale gauge ({now} vs {stale})");
        assert_eq!(
            obs.metrics().gauge_value("inca_depot_shards", &[]).unwrap(),
            restored.shard_count() as f64
        );
    }

    #[test]
    fn shard_documents_round_trip_is_a_fixed_point() {
        // Persist → restore → persist yields byte-identical documents
        // and identical gauge values: the restore path neither reorders
        // nor re-serializes shard content.
        let obs = Obs::new();
        let mut cache = ShardedCache::with_obs(2, &obs);
        for i in 0..20 {
            cache
                .update(
                    &branch(&format!("reporter=r{i},resource=m{},site=s{},vo=tg", i % 4, i % 3)),
                    &report(&format!("r{i}"), &i.to_string()),
                )
                .unwrap();
        }
        let docs1: Vec<(String, String)> =
            cache.shard_documents().map(|(k, d)| (k.to_string(), d.to_string())).collect();
        let obs2 = Obs::new();
        let loaded = ShardedCache::from_documents(2, docs1.clone(), &obs2).unwrap();
        let docs2: Vec<(String, String)> =
            loaded.shard_documents().map(|(k, d)| (k.to_string(), d.to_string())).collect();
        assert_eq!(docs1, docs2, "round-trip must be a fixed point");
        assert_eq!(loaded.report_count(), cache.report_count());
        assert_eq!(
            obs2.metrics().gauge_value("inca_depot_shard_largest_bytes", &[]).unwrap(),
            obs.metrics().gauge_value("inca_depot_shard_largest_bytes", &[]).unwrap()
        );
    }

    #[test]
    fn from_documents_rejects_corrupt_shards() {
        let obs = Obs::new();
        let err = ShardedCache::from_documents(2, [("vo=tg", "<notACache/>")], &obs);
        assert!(err.is_err());
    }
}
