//! The depot: "Inca's facility for data management, caching and
//! archiving. The design of the depot was driven by the need to require
//! very little administration" (§3.2.2).

pub mod archive;
pub mod cache;
#[allow(clippy::module_inception)]
pub mod depot;
pub mod memo;
pub mod rope;
pub mod sharded;
