//! The depot's archival side: archival policies applied to report data
//! and to consumer-recorded series.
//!
//! "Archiving of numerical data is done by RRDTool. In order to
//! indicate that a piece of data is to be archived, an archival policy
//! for that data must be uploaded to the depot… one can assign several
//! pieces of data the same policy at the same time or can assign
//! policies on a reporter-by-reporter basis" (§3.2.2).
//!
//! An [`ArchiveRule`] is that uploaded policy: a branch-identifier
//! suffix selecting which reports it covers, an Inca path extracting
//! the numeric value from their bodies, and the [`ArchivePolicy`]
//! itself. Summary series recorded directly by data consumers (the
//! archived status percentages behind Figure 5) use
//! [`ArchiveStore::record`].

use std::collections::BTreeMap;
use std::sync::Arc;

use inca_obs::metrics::Counter;
use inca_obs::Obs;
use inca_report::{BranchId, Report, Timestamp};
use inca_rrd::{ArchivePolicy, ConsolidationFn, FetchResult, Rrd};
use inca_xml::IncaPath;

/// A policy uploaded to the depot: which data, where the number lives,
/// how to archive it.
#[derive(Debug, Clone)]
pub struct ArchiveRule {
    /// Rule name (for listing).
    pub name: String,
    /// Branch-identifier suffix selecting the covered reports.
    pub query: BranchId,
    /// Path to the numeric value inside matching report bodies.
    pub path: IncaPath,
    /// The archival policy.
    pub policy: ArchivePolicy,
    /// Expected seconds between measurements (the reporter's period).
    pub period_secs: u64,
}

/// The depot's collection of archives.
#[derive(Debug)]
pub struct ArchiveStore {
    rules: Vec<ArchiveRule>,
    /// (rule index, full branch string) → per-series RRD.
    rule_series: BTreeMap<(usize, String), Rrd>,
    /// Consumer-recorded summary series.
    manual_series: BTreeMap<String, Rrd>,
    /// Successful series writes (`inca_depot_archive_writes_total`).
    writes: Arc<Counter>,
}

impl ArchiveStore {
    /// An empty store observing into [`Obs::global`].
    pub fn new() -> ArchiveStore {
        ArchiveStore::with_obs(&Obs::global())
    }

    /// An empty store whose write counter registers in `obs` (for
    /// isolated metrics in tests and embedded setups).
    pub fn with_obs(obs: &Obs) -> ArchiveStore {
        ArchiveStore {
            rules: Vec::new(),
            rule_series: BTreeMap::new(),
            manual_series: BTreeMap::new(),
            writes: obs.metrics().counter(
                "inca_depot_archive_writes_total",
                "Successful archive series writes (RRD updates).",
            ),
        }
    }

    /// Uploads a rule ("this configuration has to be done only once").
    pub fn add_rule(&mut self, rule: ArchiveRule) {
        self.rules.push(rule);
    }

    /// The uploaded rules.
    pub fn rules(&self) -> &[ArchiveRule] {
        &self.rules
    }

    /// Offers a just-cached report to every matching rule. Returns how
    /// many rules ingested a value. Reports whose body lacks the
    /// rule's path (e.g. failures) are skipped silently — a gap in the
    /// archive, exactly what RRDTool's unknown handling is for.
    pub fn ingest(&mut self, branch: &BranchId, report: &Report, now: Timestamp) -> usize {
        let mut ingested = 0;
        for (idx, rule) in self.rules.iter().enumerate() {
            if !branch.matches_suffix(&rule.query) {
                continue;
            }
            let value: Option<f64> = rule
                .path
                .resolve(report.body.root())
                .map(|el| el.text())
                .and_then(|text| text.parse().ok());
            let Some(value) = value else { continue };
            let key = (idx, branch.to_string());
            let rrd = self.rule_series.entry(key).or_insert_with(|| {
                rule.policy
                    .build(now - rule.period_secs, rule.period_secs)
                    .expect("policy compiles to a valid RRD")
            });
            if rrd.update_single(now, value).is_ok() {
                ingested += 1;
            }
        }
        self.writes.add(ingested as u64);
        ingested
    }

    /// Records a point on a named summary series (consumer-side
    /// archiving, e.g. the per-category pass percentages of Figure 5).
    /// The series is created on first use with the given policy.
    pub fn record(
        &mut self,
        series: &str,
        policy: &ArchivePolicy,
        period_secs: u64,
        t: Timestamp,
        value: f64,
    ) {
        let rrd = self.manual_series.entry(series.to_string()).or_insert_with(|| {
            policy.build(t - period_secs, period_secs).expect("policy compiles to a valid RRD")
        });
        if rrd.update_single(t, value).is_ok() {
            self.writes.inc();
        }
    }

    /// Like [`ArchiveStore::record`], but a series created by this call
    /// gets a tiered multi-resolution layout
    /// ([`ArchivePolicy::build_tiered`] with the given
    /// `(consolidation factor, history seconds)` tiers) instead of the
    /// policy's single base archive — the layout the self-scrape
    /// pipeline uses so month/quarter windows over Inca's own telemetry
    /// downsample instead of replaying base resolution.
    pub fn record_tiered(
        &mut self,
        series: &str,
        policy: &ArchivePolicy,
        period_secs: u64,
        tiers: &[(u32, u64)],
        t: Timestamp,
        value: f64,
    ) {
        let rrd = self.manual_series.entry(series.to_string()).or_insert_with(|| {
            policy
                .build_tiered(t - period_secs, period_secs, tiers)
                .expect("tiered policy compiles to a valid RRD")
        });
        if rrd.update_single(t, value).is_ok() {
            self.writes.inc();
        }
    }

    /// Fetches a rule-fed series for one branch.
    pub fn fetch_rule_series(
        &self,
        rule_name: &str,
        branch: &BranchId,
        cf: ConsolidationFn,
        start: Timestamp,
        end: Timestamp,
    ) -> Option<FetchResult> {
        let idx = self.rules.iter().position(|r| r.name == rule_name)?;
        let rrd = self.rule_series.get(&(idx, branch.to_string()))?;
        rrd.fetch(cf, start, end).ok()
    }

    /// Fetches a consumer-recorded series from the archive whose
    /// resolution best matches `target_step` (see
    /// [`Rrd::fetch_resolution`] for the selection rules). With the
    /// single-archive policies [`ArchivePolicy::build`] produces this
    /// degrades to [`ArchiveStore::fetch_series`]; tiered policies
    /// ([`ArchivePolicy::build_tiered`]) give it real choices.
    pub fn fetch_series_resolution(
        &self,
        series: &str,
        cf: ConsolidationFn,
        start: Timestamp,
        end: Timestamp,
        target_step: u64,
    ) -> Option<FetchResult> {
        self.manual_series.get(series)?.fetch_resolution(cf, start, end, target_step).ok()
    }

    /// Fetches a consumer-recorded series.
    pub fn fetch_series(
        &self,
        series: &str,
        cf: ConsolidationFn,
        start: Timestamp,
        end: Timestamp,
    ) -> Option<FetchResult> {
        self.manual_series.get(series)?.fetch(cf, start, end).ok()
    }

    /// Names of all series currently held (rule-fed and manual).
    pub fn series_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .rule_series
            .keys()
            .map(|(idx, branch)| format!("{}:{branch}", self.rules[*idx].name))
            .collect();
        names.extend(self.manual_series.keys().cloned());
        names
    }

    /// Total bounded storage across all archives.
    pub fn storage_bytes(&self) -> usize {
        self.rule_series.values().chain(self.manual_series.values()).map(Rrd::storage_bytes).sum()
    }

    /// Serializes rules and every series to a single text document
    /// (sections separated by `%%`-prefixed headers; RRD payloads are
    /// the bit-exact [`Rrd::dump`] form).
    pub fn dump(&self) -> String {
        let mut out = String::from("archive-store v1\n");
        for rule in &self.rules {
            out.push_str(&format!(
                "%%rule name={} query={} path={} policy={} granularity={} history={} extremes={} period={}\n",
                rule.name,
                rule.query,
                rule.path,
                rule.policy.name,
                rule.policy.granularity,
                rule.policy.history_secs,
                rule.policy.keep_extremes,
                rule.period_secs
            ));
        }
        for ((rule_idx, branch), rrd) in &self.rule_series {
            out.push_str(&format!("%%rule-series rule={rule_idx} branch={branch}\n"));
            out.push_str(&rrd.dump());
        }
        for (name, rrd) in &self.manual_series {
            out.push_str(&format!("%%manual-series name={name}\n"));
            out.push_str(&rrd.dump());
        }
        out
    }

    /// Total successful series writes (rule ingests plus consumer
    /// records) over the store's lifetime.
    pub fn write_count(&self) -> u64 {
        self.writes.get()
    }

    /// Restores a store from [`ArchiveStore::dump`] output.
    pub fn restore(text: &str) -> Result<ArchiveStore, String> {
        let mut lines = text.lines().peekable();
        match lines.next() {
            Some("archive-store v1") => {}
            other => return Err(format!("unknown archive dump header {other:?}")),
        }
        let mut store = ArchiveStore::new();
        while let Some(header) = lines.next() {
            if let Some(rest) = header.strip_prefix("%%rule ") {
                let kv = kv_map(rest);
                let get = |k: &str| {
                    kv.get(k).cloned().ok_or_else(|| format!("rule missing {k}"))
                };
                store.add_rule(ArchiveRule {
                    name: get("name")?,
                    query: get("query")?.parse().map_err(|e| format!("bad query: {e}"))?,
                    path: get("path")?.parse().map_err(|e| format!("bad path: {e}"))?,
                    policy: ArchivePolicy {
                        name: get("policy")?,
                        granularity: get("granularity")?
                            .parse()
                            .map_err(|e| format!("bad granularity: {e}"))?,
                        history_secs: get("history")?
                            .parse()
                            .map_err(|e| format!("bad history: {e}"))?,
                        keep_extremes: get("extremes")? == "true",
                    },
                    period_secs: get("period")?.parse().map_err(|e| format!("bad period: {e}"))?,
                });
            } else if let Some(rest) = header.strip_prefix("%%rule-series ") {
                let (idx_part, branch_part) = rest
                    .split_once(" branch=")
                    .ok_or("rule-series header missing branch")?;
                let rule_idx: usize = idx_part
                    .strip_prefix("rule=")
                    .and_then(|v| v.parse().ok())
                    .ok_or("bad rule index")?;
                let rrd = read_rrd_block(&mut lines)?;
                store.rule_series.insert((rule_idx, branch_part.to_string()), rrd);
            } else if let Some(rest) = header.strip_prefix("%%manual-series ") {
                let name = rest.strip_prefix("name=").ok_or("manual-series missing name")?;
                let rrd = read_rrd_block(&mut lines)?;
                store.manual_series.insert(name.to_string(), rrd);
            } else {
                return Err(format!("unexpected line in archive dump: {header:?}"));
            }
        }
        Ok(store)
    }
}

impl Default for ArchiveStore {
    fn default() -> ArchiveStore {
        ArchiveStore::new()
    }
}

fn kv_map(s: &str) -> std::collections::BTreeMap<String, String> {
    // Rule fields never contain spaces except the path (which contains
    // ", "); normalize by splitting on " <key>=" boundaries.
    let keys = ["name", "query", "path", "policy", "granularity", "history", "extremes", "period"];
    let mut out = std::collections::BTreeMap::new();
    let mut rest = s;
    while let Some(eq) = rest.find('=') {
        let key = rest[..eq].trim().to_string();
        rest = &rest[eq + 1..];
        // Value runs until the next " <known-key>=".
        let mut end = rest.len();
        for k in keys {
            let marker = format!(" {k}=");
            if let Some(pos) = rest.find(&marker) {
                end = end.min(pos);
            }
        }
        out.insert(key, rest[..end].to_string());
        rest = rest[end..].trim_start();
        if rest.is_empty() {
            break;
        }
    }
    out
}

/// Consumes one `Rrd::dump` block (terminated by the next `%%` header
/// or end of input).
fn read_rrd_block<'a, I: Iterator<Item = &'a str>>(
    lines: &mut std::iter::Peekable<I>,
) -> Result<Rrd, String> {
    let mut block = String::new();
    while let Some(line) = lines.peek() {
        if line.starts_with("%%") {
            break;
        }
        block.push_str(line);
        block.push('\n');
        lines.next();
    }
    Rrd::restore(&block).map_err(|e| format!("bad RRD block: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use inca_report::ReportBuilder;

    fn bandwidth_report(mbps: f64, t: Timestamp) -> Report {
        ReportBuilder::new("network.bandwidth.pathload", "1.0")
            .gmt(t)
            .metric("bandwidth", &[("lowerBound", &format!("{mbps:.2}"), Some("Mbps"))])
            .success()
            .unwrap()
    }

    fn bandwidth_rule() -> ArchiveRule {
        ArchiveRule {
            name: "bandwidth".into(),
            query: "tool=pathload,vo=tg".parse().unwrap(),
            path: "value, statistic=lowerBound, metric=bandwidth".parse().unwrap(),
            policy: ArchivePolicy::every("hourly-week", 7 * 86_400),
            period_secs: 3_600,
        }
    }

    fn branch() -> BranchId {
        "dest=caltech,tool=pathload,vo=tg".parse().unwrap()
    }

    #[test]
    fn ingest_matching_reports() {
        let mut store = ArchiveStore::new();
        store.add_rule(bandwidth_rule());
        let t0 = Timestamp::from_secs(100_000);
        for i in 1..=5u64 {
            let t = t0 + i * 3_600;
            let n = store.ingest(&branch(), &bandwidth_report(980.0 + i as f64, t), t);
            assert_eq!(n, 1);
        }
        let f = store
            .fetch_rule_series("bandwidth", &branch(), ConsolidationFn::Average, t0, t0 + 6 * 3_600)
            .unwrap();
        assert!(f.known_points().count() >= 4);
    }

    #[test]
    fn non_matching_branch_ignored() {
        let mut store = ArchiveStore::new();
        store.add_rule(bandwidth_rule());
        let other: BranchId = "dest=caltech,tool=spruce,vo=tg".parse().unwrap();
        let t = Timestamp::from_secs(100_000);
        assert_eq!(store.ingest(&other, &bandwidth_report(990.0, t), t), 0);
    }

    #[test]
    fn failed_reports_leave_gaps_not_errors() {
        let mut store = ArchiveStore::new();
        store.add_rule(bandwidth_rule());
        let t = Timestamp::from_secs(100_000);
        let failed = ReportBuilder::new("network.bandwidth.pathload", "1.0")
            .gmt(t)
            .failure("pathload: destination unreachable")
            .unwrap();
        assert_eq!(store.ingest(&branch(), &failed, t), 0);
    }

    #[test]
    fn one_rule_many_branches() {
        let mut store = ArchiveStore::new();
        store.add_rule(bandwidth_rule());
        let t = Timestamp::from_secs(100_000);
        let b1: BranchId = "dest=caltech,tool=pathload,vo=tg".parse().unwrap();
        let b2: BranchId = "dest=ncsa,tool=pathload,vo=tg".parse().unwrap();
        store.ingest(&b1, &bandwidth_report(990.0, t + 3_600), t + 3_600);
        store.ingest(&b2, &bandwidth_report(500.0, t + 3_600), t + 3_600);
        assert_eq!(store.series_names().len(), 2);
    }

    #[test]
    fn manual_series_record_and_fetch() {
        let mut store = ArchiveStore::new();
        let policy = ArchivePolicy::every("summary", 86_400);
        let t0 = Timestamp::from_secs(600_000);
        for i in 1..=10u64 {
            store.record("grid-availability:sdsc", &policy, 600, t0 + i * 600, 100.0 - i as f64);
        }
        let f = store
            .fetch_series("grid-availability:sdsc", ConsolidationFn::Average, t0, t0 + 7_000)
            .unwrap();
        assert!(f.known_points().count() >= 8);
        assert!(store.fetch_series("nonexistent", ConsolidationFn::Average, t0, t0 + 1).is_none());
    }

    #[test]
    fn dump_restore_roundtrip() {
        let mut store = ArchiveStore::new();
        store.add_rule(bandwidth_rule());
        let t0 = Timestamp::from_secs(100_000);
        for i in 1..=5u64 {
            let t = t0 + i * 3_600;
            store.ingest(&branch(), &bandwidth_report(980.0 + i as f64, t), t);
        }
        store.record(
            "availability:Grid:sdsc-tg1",
            &ArchivePolicy::every("summary", 86_400),
            600,
            t0 + 600,
            98.5,
        );
        let dump = store.dump();
        let restored = ArchiveStore::restore(&dump).unwrap();
        assert_eq!(restored.dump(), dump, "dump must be a fixed point");
        assert_eq!(restored.rules().len(), 1);
        assert_eq!(restored.rules()[0].name, "bandwidth");
        let a = restored
            .fetch_rule_series("bandwidth", &branch(), ConsolidationFn::Average, t0, t0 + 6 * 3_600)
            .unwrap();
        let b = store
            .fetch_rule_series("bandwidth", &branch(), ConsolidationFn::Average, t0, t0 + 6 * 3_600)
            .unwrap();
        assert!(a.same_series(&b), "{a:?} != {b:?}");
        assert!(restored
            .fetch_series("availability:Grid:sdsc-tg1", ConsolidationFn::Average, t0, t0 + 3_600)
            .is_some());
    }

    #[test]
    fn restore_rejects_garbage() {
        assert!(ArchiveStore::restore("").is_err());
        assert!(ArchiveStore::restore("archive-store v9\n").is_err());
        assert!(ArchiveStore::restore("archive-store v1\nbogus line\n").is_err());
    }

    #[test]
    fn storage_is_bounded_by_policy() {
        let mut store = ArchiveStore::new();
        let policy = ArchivePolicy::every("day", 86_400);
        let t0 = Timestamp::from_secs(600_000);
        store.record("s", &policy, 600, t0 + 600, 1.0);
        let after_one = store.storage_bytes();
        for i in 2..=1_000u64 {
            store.record("s", &policy, 600, t0 + i * 600, 1.0);
        }
        assert_eq!(store.storage_bytes(), after_one, "ring storage must not grow");
    }
}
