//! The depot cache: one XML document, updated by streaming parse.
//!
//! "The cache is implemented by using a SAX parser and a single XML
//! file. The SAX parser is used for both updates and queries to the
//! cache. The initial design included the use of DOM parsing on the
//! cache, but it was quickly discovered that the memory requirements of
//! the DOM parser grew too rapidly" (§3.2.2).
//!
//! The cache document nests `<branch name="…" id="…">` elements
//! following the branch identifier's hierarchy (general component
//! outermost: `vo`, then `site`, …) with the raw `<incaReport>` spliced
//! at the innermost level. "Further updates of the report will result
//! in the replacement of the previous copy" — an update streams through
//! the document exactly once, locating the splice point by token
//! offsets, and rebuilds the string around it. No tree is ever built,
//! so memory stays at two document buffers regardless of report count;
//! time is linear in cache size, which is precisely the behaviour
//! Figure 9 measures.
//!
//! Reads no longer pay that walk. The cache keeps a persistent
//! branch index — branch path → byte range of its `<branch>`
//! element, plus the byte range of the report stored directly at each
//! path — maintained *incrementally* by [`XmlCache::update`] and
//! [`XmlCache::insert_batch`] (a splice shifts affected ranges by the
//! byte delta; it never re-tokenizes). Queries ([`XmlCache::subtree`],
//! [`XmlCache::reports`], [`XmlCache::report_exact`]) are O(result)
//! lookups into that index. The original streaming implementations
//! survive as [`XmlCache::scan_subtree`] / [`XmlCache::scan_reports`]:
//! the debug oracle the property tests compare against, byte for byte.

use std::collections::BTreeMap;
use std::fmt;

use inca_report::BranchId;
use inca_xml::{escape::escape_attr, Token, Tokenizer, XmlError};

/// Errors from cache operations.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheError {
    /// The cache document itself failed to parse (corruption).
    Corrupt(String),
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::Corrupt(m) => write!(f, "cache corrupt: {m}"),
        }
    }
}

impl std::error::Error for CacheError {}

impl From<XmlError> for CacheError {
    fn from(e: XmlError) -> Self {
        CacheError::Corrupt(e.to_string())
    }
}

/// Where an update must touch the document.
#[derive(Debug, PartialEq, Eq)]
enum Splice {
    /// Replace the byte range of an existing `<incaReport>`.
    Replace { start: usize, end: usize },
    /// Insert at `at`, creating hierarchy levels from `missing_from`.
    Insert { at: usize, missing_from: usize },
}

/// A branch path in cache-document order: general component first
/// (`vo` outermost), exactly the nesting order of the `<branch>`
/// elements. Suffix queries become *prefix* matches on these keys, so
/// a `BTreeMap` range scan answers them in O(result).
type PathKey = Vec<(String, String)>;

const BRANCH_CLOSE: &str = "</branch>";

/// Ceiling (bytes) under which debug builds cross-check every mutation
/// against the streaming oracle. The check is O(cache), so running it
/// on large documents would turn the replay experiments (Figure 8/9
/// tests, which time `receive` for real — their smallest steady cache
/// is 200 KB) into measurements of the oracle instead of the cache.
/// Unit and property tests all operate far below this ceiling and keep
/// full coverage.
#[cfg(debug_assertions)]
const DEBUG_ORACLE_MAX_DOC: usize = 128 * 1024;

/// The single-document XML cache.
#[derive(Debug, Clone)]
pub struct XmlCache {
    doc: String,
    index: BranchIndex,
    generation: u64,
}

/// The document alone defines cache identity; the index is derived
/// state and the generation is mutation bookkeeping.
impl PartialEq for XmlCache {
    fn eq(&self, other: &XmlCache) -> bool {
        self.doc == other.doc
    }
}

impl Eq for XmlCache {}

impl Default for XmlCache {
    fn default() -> Self {
        XmlCache::new()
    }
}

impl XmlCache {
    /// An empty cache.
    pub fn new() -> XmlCache {
        XmlCache {
            doc: "<incaCache></incaCache>".to_string(),
            index: BranchIndex { root_close: "<incaCache>".len(), ..BranchIndex::default() },
            generation: 0,
        }
    }

    /// The full document (the "no branch identifier supplied" query of
    /// §3.2.3: "the entire contents of the cache is returned").
    pub fn document(&self) -> &str {
        &self.doc
    }

    /// Rebuilds a cache from a persisted document, validating the root
    /// and well-formedness (persistence support) and rebuilding the
    /// branch index from scratch — the only place it is ever rebuilt.
    pub fn from_document(doc: String) -> Result<XmlCache, CacheError> {
        let index = BranchIndex::build(&doc)?;
        let cache = XmlCache { doc, index, generation: 0 };
        // A full walk validates well-formedness and every branch id,
        // and cross-checks the freshly built index.
        let scanned = cache.scan_reports(None)?;
        if scanned.len() != cache.index.reports.len() {
            return Err(CacheError::Corrupt(
                "branch index disagrees with a full scan".into(),
            ));
        }
        if !cache.doc.starts_with("<incaCache") {
            return Err(CacheError::Corrupt("document root is not <incaCache>".into()));
        }
        Ok(cache)
    }

    /// Document size in bytes — the x-axis of Figure 9.
    pub fn size_bytes(&self) -> usize {
        self.doc.len()
    }

    /// Number of cached reports — one index entry per report, O(1).
    pub fn report_count(&self) -> usize {
        self.index.reports.len()
    }

    /// Monotone counter bumped by every successful mutation. Memoized
    /// query layers compare generations instead of documents to decide
    /// whether a cached result is still valid.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Inserts or replaces the report stored at `branch`.
    ///
    /// The splice point comes from the branch index (no stream walk):
    /// an existing report's recorded byte range, or the canonical
    /// position inside the deepest existing ancestor level (report
    /// before child branches, branches sorted by `(name, id)` — see
    /// `BranchIndex::insert_point`). After the splice the index
    /// shifts affected ranges by the byte delta and records any levels
    /// the fragment created. The report XML is spliced verbatim (it was
    /// validated upstream by the envelope decode), so the remaining
    /// cost is the rebuild of the document string.
    pub fn update(&mut self, branch: &BranchId, report_xml: &str) -> Result<(), CacheError> {
        let hierarchy: PathKey = branch
            .hierarchy()
            .map(|(n, v)| (n.to_string(), v.to_string()))
            .collect();
        let splice = match self.index.reports.get(&hierarchy) {
            Some(&(start, end)) => Splice::Replace { start, end },
            None => {
                let (at, missing_from) = self.index.insert_point(&hierarchy);
                Splice::Insert { at, missing_from }
            }
        };
        #[cfg(debug_assertions)]
        if self.doc.len() <= DEBUG_ORACLE_MAX_DOC {
            let refs: Vec<(&str, &str)> =
                hierarchy.iter().map(|(n, v)| (n.as_str(), v.as_str())).collect();
            debug_assert_eq!(
                splice,
                Self::find_splice(&self.doc, &refs)?,
                "indexed splice point diverged from the streaming oracle"
            );
        }
        match splice {
            Splice::Replace { start, end } => {
                let mut out = String::with_capacity(self.doc.len() + report_xml.len());
                out.push_str(&self.doc[..start]);
                out.push_str(report_xml);
                out.push_str(&self.doc[end..]);
                self.doc = out;
                self.index.splice_shift(start, end, report_xml.len());
            }
            Splice::Insert { at, missing_from } => {
                let mut fragment = String::with_capacity(report_xml.len() + 128);
                let mut open_lens = Vec::with_capacity(hierarchy.len() - missing_from);
                for (name, id) in &hierarchy[missing_from..] {
                    let before = fragment.len();
                    fragment.push_str("<branch name=\"");
                    fragment.push_str(&escape_attr(name));
                    fragment.push_str("\" id=\"");
                    fragment.push_str(&escape_attr(id));
                    fragment.push_str("\">");
                    open_lens.push(fragment.len() - before);
                }
                let report_at = fragment.len();
                fragment.push_str(report_xml);
                for _ in &hierarchy[missing_from..] {
                    fragment.push_str(BRANCH_CLOSE);
                }
                let mut out = String::with_capacity(self.doc.len() + fragment.len());
                out.push_str(&self.doc[..at]);
                out.push_str(&fragment);
                out.push_str(&self.doc[at..]);
                self.doc = out;
                self.index.splice_shift(at, at, fragment.len());
                // Record the levels the fragment created: level j skips
                // j open tags at the front and j close tags at the back.
                let mut open_prefix = 0usize;
                for (j, open_len) in open_lens.iter().enumerate() {
                    let start = at + open_prefix;
                    let end = at + fragment.len() - BRANCH_CLOSE.len() * j;
                    self.index
                        .branches
                        .insert(hierarchy[..missing_from + j + 1].to_vec(), (start, end));
                    open_prefix += open_len;
                }
                self.index
                    .reports
                    .insert(hierarchy, (at + report_at, at + report_at + report_xml.len()));
            }
        }
        self.generation += 1;
        self.debug_check_index();
        Ok(())
    }

    /// Debug-build invariant: the incrementally maintained index must
    /// equal a from-scratch rebuild after every mutation.
    fn debug_check_index(&self) {
        #[cfg(debug_assertions)]
        if self.doc.len() <= DEBUG_ORACLE_MAX_DOC {
            debug_assert_eq!(
                self.index,
                BranchIndex::build(&self.doc).expect("mutated cache stays well-formed"),
                "persistent branch index diverged from a fresh rebuild"
            );
        }
    }

    /// Inserts or replaces `items.len()` reports in one pass.
    ///
    /// This is the §5.2.2 amortization: [`XmlCache::update`] streams
    /// the whole document once *per report*, so a burst of N arrivals
    /// costs O(N × cache). `insert_batch` streams the document exactly
    /// once to index every splice point, then rebuilds the string
    /// exactly once — O(N + cache) — while producing a document
    /// **byte-identical** to applying the same updates sequentially
    /// (the `batch_matches_sequential` property test holds this
    /// equivalence).
    ///
    /// Duplicate branches within one batch behave like sequential
    /// updates: the report lands where the first occurrence would have
    /// inserted it, holding the content of the last occurrence. On
    /// error (a corrupt document) the cache is left untouched.
    pub fn insert_batch(&mut self, items: &[(&BranchId, &str)]) -> Result<(), CacheError> {
        match items {
            [] => return Ok(()),
            [(branch, xml)] => return self.update(branch, xml),
            _ => {}
        }
        // Dedup: position follows the first occurrence of a branch,
        // content follows the last (sequential update semantics).
        let mut order: Vec<Vec<(String, String)>> = Vec::with_capacity(items.len());
        let mut content: BTreeMap<Vec<(String, String)>, &str> = BTreeMap::new();
        for (branch, xml) in items {
            let h: Vec<(String, String)> = branch
                .hierarchy()
                .map(|(n, v)| (n.to_string(), v.to_string()))
                .collect();
            if !content.contains_key(&h) {
                order.push(h.clone());
            }
            content.insert(h, xml);
        }
        // Every splice point comes straight from the persistent index
        // (the pre-batch document state, exactly what a fresh stream
        // walk used to gather).
        let mut patches: Vec<(usize, Patch<'_>)> = Vec::new();
        let mut inserts: BTreeMap<usize, (PathKey, InsertNode)> = BTreeMap::new();
        for h in order {
            let xml = content[&h];
            if let Some(&(start, end)) = self.index.reports.get(&h) {
                patches.push((start, Patch::Replace { end, xml, path: h }));
                continue;
            }
            // Canonical position inside the deepest existing level.
            let (at, depth) = self.index.insert_point(&h);
            inserts
                .entry(at)
                .or_insert_with(|| (h[..depth].to_vec(), InsertNode::default()))
                .1
                .add(&h[depth..], xml);
        }
        let mut grown = 0usize;
        for (at, (parent, node)) in inserts {
            grown += node.rendered_len();
            patches.push((at, Patch::Insert(parent, node)));
        }
        // Replace ranges are disjoint report subtrees and insert
        // points sit on close tags outside them, so ordering by offset
        // yields one well-formed left-to-right rebuild.
        patches.sort_by_key(|(offset, _)| *offset);
        let mut out = String::with_capacity(self.doc.len() + grown);
        let mut cursor = 0usize;
        // Bookkeeping for the incremental index maintenance: the byte
        // delta of each applied patch (keyed by its old end offset, in
        // document order), the new ranges of replaced reports, and the
        // rendered fragments to index afterwards.
        let mut applied: Vec<(usize, i64)> = Vec::new();
        let mut targets: Vec<(PathKey, (usize, usize))> = Vec::new();
        let mut fresh: Vec<(PathKey, usize, InsertNode)> = Vec::new();
        for (offset, patch) in patches {
            out.push_str(&self.doc[cursor..offset]);
            match patch {
                Patch::Replace { end, xml, path } => {
                    let new_start = out.len();
                    out.push_str(xml);
                    applied.push((end, xml.len() as i64 - (end - offset) as i64));
                    targets.push((path, (new_start, new_start + xml.len())));
                    cursor = end;
                }
                Patch::Insert(parent, node) => {
                    let new_start = out.len();
                    node.render(&mut out);
                    applied.push((offset, (out.len() - new_start) as i64));
                    fresh.push((parent, new_start, node));
                    cursor = offset;
                }
            }
        }
        out.push_str(&self.doc[cursor..]);
        self.doc = out;
        self.index.apply_batch(applied, targets, fresh);
        self.generation += 1;
        self.debug_check_index();
        Ok(())
    }

    /// Streams to the point where `hierarchy` lives (or should live).
    /// Retained as the debug oracle for the indexed splice lookup in
    /// [`XmlCache::update`].
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    fn find_splice(doc: &str, hierarchy: &[(&str, &str)]) -> Result<Splice, CacheError> {
        let mut tok = Tokenizer::new(doc);
        // Consume the root start tag.
        match tok.next_token()? {
            Some(Token::StartTag { name, .. }) if name == "incaCache" => {}
            other => return Err(CacheError::Corrupt(format!("bad root: {other:?}"))),
        }
        let mut matched = 0usize;
        loop {
            let pre = tok.offset();
            let token = tok
                .next_token()?
                .ok_or_else(|| CacheError::Corrupt("unexpected end of cache".into()))?;
            match token {
                Token::StartTag { name: "branch", ref attrs, self_closing } => {
                    let pair = (attr(attrs, "name"), attr(attrs, "id"));
                    match hierarchy.get(matched).copied() {
                        // Looking for a report at the current level: it
                        // belongs *before* every child branch.
                        None => return Ok(Splice::Insert { at: pre, missing_from: matched }),
                        Some((n, v)) if !self_closing && pair == (Some(n), Some(v)) => {
                            matched += 1;
                        }
                        Some((n, v)) => {
                            // Siblings sit in canonical `(name, id)`
                            // order; the first one sorting after the
                            // target is the insertion point.
                            if let (Some(cn), Some(cv)) = pair {
                                if (cn, cv) > (n, v) {
                                    return Ok(Splice::Insert {
                                        at: pre,
                                        missing_from: matched,
                                    });
                                }
                            }
                            if !self_closing {
                                skip_subtree(&mut tok, "branch")?;
                            }
                        }
                    }
                }
                Token::StartTag { name: "incaReport", self_closing, .. } => {
                    if matched == hierarchy.len() {
                        let end = if self_closing {
                            tok.offset()
                        } else {
                            skip_subtree(&mut tok, "incaReport")?
                        };
                        return Ok(Splice::Replace { start: pre, end });
                    }
                    if !self_closing {
                        skip_subtree(&mut tok, "incaReport")?;
                    }
                }
                Token::EndTag { name: "branch" } => {
                    // The level we were inside closed without the next
                    // target component: insert just before this close.
                    return Ok(Splice::Insert { at: pre, missing_from: matched });
                }
                Token::EndTag { name: "incaCache" } => {
                    return Ok(Splice::Insert { at: pre, missing_from: matched });
                }
                Token::StartTag { self_closing, name, .. } => {
                    // Unknown element (future cache extensions): skip.
                    if !self_closing {
                        skip_subtree(&mut tok, name)?;
                    }
                }
                _ => {}
            }
        }
    }

    /// Returns the raw subtree for the deepest level of `query`
    /// (general-first hierarchy from a suffix query), or `None` when
    /// the branch does not exist.
    ///
    /// A full branch identifier yields `<branch …><incaReport>…` for a
    /// single report; a shorter (suffix) query yields the containing
    /// level with every report below it — "this can either be a single
    /// report, a set of related reports, or a specific portion of a
    /// report" (§3.2.3).
    ///
    /// O(log cache): one index lookup, one slice copy. The matched
    /// level is exactly the branch element at the query's path, so the
    /// result is byte-identical to [`XmlCache::scan_subtree`] — the
    /// property tests hold the two together.
    pub fn subtree(&self, query: &BranchId) -> Result<Option<String>, CacheError> {
        let path: PathKey = query
            .hierarchy()
            .map(|(n, v)| (n.to_string(), v.to_string()))
            .collect();
        Ok(self.index.branches.get(&path).map(|&(start, end)| self.doc[start..end].to_string()))
    }

    /// The full-scan twin of [`XmlCache::subtree`]: streams the whole
    /// document to find the queried level. Kept as the debug oracle —
    /// O(cache), trust it over the index when they disagree.
    pub fn scan_subtree(&self, query: &BranchId) -> Result<Option<String>, CacheError> {
        let hierarchy: Vec<(&str, &str)> = query.hierarchy().collect();
        let mut tok = Tokenizer::new(&self.doc);
        match tok.next_token()? {
            Some(Token::StartTag { name, .. }) if name == "incaCache" => {}
            other => return Err(CacheError::Corrupt(format!("bad root: {other:?}"))),
        }
        let mut matched = 0usize;
        loop {
            let pre = tok.offset();
            let token = match tok.next_token()? {
                Some(t) => t,
                None => return Ok(None),
            };
            match token {
                Token::StartTag { name: "branch", ref attrs, self_closing } => {
                    let pair = (attr(attrs, "name"), attr(attrs, "id"));
                    let want = hierarchy.get(matched).copied();
                    if !self_closing
                        && want.map_or(false, |(n, v)| pair == (Some(n), Some(v)))
                    {
                        matched += 1;
                        if matched == hierarchy.len() {
                            let end = skip_subtree(&mut tok, "branch")?;
                            return Ok(Some(self.doc[pre..end].to_string()));
                        }
                    } else if !self_closing {
                        skip_subtree(&mut tok, "branch")?;
                    }
                }
                Token::StartTag { name, self_closing, .. } => {
                    if !self_closing {
                        skip_subtree(&mut tok, name)?;
                    }
                }
                Token::EndTag { name: "branch" } | Token::EndTag { name: "incaCache" } => {
                    // Either a matched level closed without the target
                    // (ids are unique per level, so it cannot exist
                    // elsewhere) or the document ended: not found.
                    return Ok(None);
                }
                _ => {}
            }
        }
    }

    /// Collects `(branch, report_xml)` pairs whose branch matches the
    /// suffix `query` (or all reports when `query` is `None`). Used by
    /// data consumers.
    ///
    /// O(result log cache): a suffix query is a prefix of the
    /// general-first index keys, so one `BTreeMap` range scan finds
    /// every match; results are then ordered by byte offset, which is
    /// document order — byte-identical to [`XmlCache::scan_reports`].
    pub fn reports(&self, query: Option<&BranchId>) -> Result<Vec<(BranchId, String)>, CacheError> {
        let mut hits: Vec<(&PathKey, (usize, usize))> = match query {
            None => self.index.reports.iter().map(|(k, &v)| (k, v)).collect(),
            Some(q) => {
                let prefix: PathKey = q
                    .hierarchy()
                    .map(|(n, v)| (n.to_string(), v.to_string()))
                    .collect();
                self.index
                    .reports
                    .range(prefix.clone()..)
                    .take_while(|(k, _)| k.starts_with(&prefix[..]))
                    .map(|(k, &v)| (k, v))
                    .collect()
            }
        };
        hits.sort_by_key(|&(_, (start, _))| start);
        hits.into_iter()
            .map(|(path, (start, end))| {
                let pairs: Vec<(String, String)> = path.iter().rev().cloned().collect();
                let branch =
                    BranchId::new(pairs).map_err(|e| CacheError::Corrupt(e.to_string()))?;
                Ok((branch, self.doc[start..end].to_string()))
            })
            .collect()
    }

    /// The report stored *exactly at* `branch` (no suffix matching):
    /// one index lookup, no allocation beyond the probe key. `None`
    /// when the branch holds no direct report.
    pub fn report_exact(&self, branch: &BranchId) -> Option<&str> {
        let path: PathKey = branch
            .hierarchy()
            .map(|(n, v)| (n.to_string(), v.to_string()))
            .collect();
        self.index.reports.get(&path).map(|&(start, end)| &self.doc[start..end])
    }

    /// The full-scan twin of [`XmlCache::reports`]: walks the whole
    /// cache in one stream. Kept as the debug oracle — O(cache), trust
    /// it over the index when they disagree.
    pub fn scan_reports(
        &self,
        query: Option<&BranchId>,
    ) -> Result<Vec<(BranchId, String)>, CacheError> {
        let mut tok = Tokenizer::new(&self.doc);
        match tok.next_token()? {
            Some(Token::StartTag { name, .. }) if name == "incaCache" => {}
            other => return Err(CacheError::Corrupt(format!("bad root: {other:?}"))),
        }
        let mut path: Vec<(String, String)> = Vec::new();
        let mut out = Vec::new();
        loop {
            let pre = tok.offset();
            let token = match tok.next_token()? {
                Some(t) => t,
                None => break,
            };
            match token {
                Token::StartTag { name: "branch", ref attrs, self_closing } => {
                    if !self_closing {
                        match (attr(attrs, "name"), attr(attrs, "id")) {
                            (Some(n), Some(v)) => path.push((n.to_string(), v.to_string())),
                            _ => {
                                return Err(CacheError::Corrupt(
                                    "branch element missing name/id".into(),
                                ))
                            }
                        }
                    }
                }
                Token::EndTag { name: "branch" } => {
                    path.pop();
                }
                Token::StartTag { name: "incaReport", self_closing, .. } => {
                    let end = if self_closing {
                        tok.offset()
                    } else {
                        skip_subtree(&mut tok, "incaReport")?
                    };
                    // The branch id is the path reversed back to
                    // specific-first order.
                    let pairs: Vec<(String, String)> = path.iter().rev().cloned().collect();
                    let branch = BranchId::new(pairs)
                        .map_err(|e| CacheError::Corrupt(e.to_string()))?;
                    let keep = query.map_or(true, |q| branch.matches_suffix(q));
                    if keep {
                        out.push((branch, self.doc[pre..end].to_string()));
                    }
                }
                Token::EndTag { name: "incaCache" } => break,
                Token::StartTag { name, self_closing, .. } => {
                    if !self_closing {
                        skip_subtree(&mut tok, name)?;
                    }
                }
                _ => {}
            }
        }
        Ok(out)
    }
}


/// One splice of a batched rebuild.
enum Patch<'a> {
    /// Replace an existing `<incaReport>` (range end + new bytes + the
    /// branch path whose index entry the replacement re-points).
    Replace { end: usize, xml: &'a str, path: PathKey },
    /// Insert a merged fragment of new levels and reports at the
    /// canonical position inside the branch at the carried parent path.
    Insert(PathKey, InsertNode),
}

/// The persistent read index: the byte range of every `<branch>`
/// element (through its close tag) keyed by general-first path, the
/// byte range of the report stored directly at each path (the one
/// [`XmlCache::update`] replaces), and the offset of `</incaCache>`.
///
/// Built from scratch only by [`XmlCache::from_document`]; every
/// mutation maintains it incrementally by shifting affected ranges —
/// [`BranchIndex::splice_shift`] for a single splice,
/// [`BranchIndex::apply_batch`] for a batched rebuild.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct BranchIndex {
    branches: BTreeMap<PathKey, (usize, usize)>,
    reports: BTreeMap<PathKey, (usize, usize)>,
    root_close: usize,
}

impl BranchIndex {
    fn build(doc: &str) -> Result<BranchIndex, CacheError> {
        let mut tok = Tokenizer::new(doc);
        match tok.next_token()? {
            Some(Token::StartTag { name, .. }) if name == "incaCache" => {}
            other => return Err(CacheError::Corrupt(format!("bad root: {other:?}"))),
        }
        let mut path: PathKey = Vec::new();
        let mut starts: Vec<usize> = Vec::new();
        let mut index = BranchIndex::default();
        loop {
            let pre = tok.offset();
            let token = tok
                .next_token()?
                .ok_or_else(|| CacheError::Corrupt("unexpected end of cache".into()))?;
            match token {
                Token::StartTag { name: "branch", ref attrs, self_closing } => {
                    if !self_closing {
                        match (attr(attrs, "name"), attr(attrs, "id")) {
                            (Some(n), Some(v)) => {
                                path.push((n.to_string(), v.to_string()));
                                starts.push(pre);
                            }
                            _ => {
                                return Err(CacheError::Corrupt(
                                    "branch element missing name/id".into(),
                                ))
                            }
                        }
                    }
                }
                Token::EndTag { name: "branch" } => {
                    let start = starts
                        .pop()
                        .ok_or_else(|| CacheError::Corrupt("unbalanced </branch>".into()))?;
                    if index.branches.insert(path.clone(), (start, tok.offset())).is_some() {
                        return Err(CacheError::Corrupt(
                            "duplicate branch path (ids must be unique per level)".into(),
                        ));
                    }
                    path.pop();
                }
                Token::StartTag { name: "incaReport", self_closing, .. } => {
                    let end = if self_closing {
                        tok.offset()
                    } else {
                        skip_subtree(&mut tok, "incaReport")?
                    };
                    if index.reports.insert(path.clone(), (pre, end)).is_some() {
                        return Err(CacheError::Corrupt(
                            "duplicate report directly under one branch path".into(),
                        ));
                    }
                }
                Token::EndTag { name: "incaCache" } => {
                    index.root_close = pre;
                    return Ok(index);
                }
                Token::StartTag { name, self_closing, .. } => {
                    if !self_closing {
                        skip_subtree(&mut tok, name)?;
                    }
                }
                _ => {}
            }
        }
    }

    /// The canonical insertion point for `hierarchy`'s missing part:
    /// inside the deepest existing ancestor, positioned so siblings
    /// stay in canonical order — the level's direct report first, then
    /// child branches sorted by `(name, id)`. Returns `(byte offset,
    /// matched depth)`.
    ///
    /// Canonical placement is what makes the document a pure function
    /// of cache *content*: two caches holding the same reports render
    /// byte-identical documents no matter what order the reports
    /// arrived in — the property the delivery-chaos tests pin down.
    fn insert_point(&self, hierarchy: &[(String, String)]) -> (usize, usize) {
        let mut depth = hierarchy.len();
        while depth > 0 && !self.branches.contains_key(&hierarchy[..depth]) {
            depth -= 1;
        }
        let parent = &hierarchy[..depth];
        let child = hierarchy.get(depth).map(|(n, v)| (n.as_str(), v.as_str()));
        (self.child_insert_at(parent, child), depth)
    }

    /// Where a new direct child of the (existing) level at `parent`
    /// goes: a direct report (`child` = `None`) before every child
    /// branch; a child branch before the first existing sibling that
    /// sorts after it; either just before the level's close tag when
    /// nothing follows.
    fn child_insert_at(&self, parent: &[(String, String)], child: Option<(&str, &str)>) -> usize {
        let mut best: Option<usize> = None;
        let children = self
            .branches
            .range(parent.to_vec()..)
            .take_while(|(key, _)| key.starts_with(parent))
            .filter(|(key, _)| key.len() == parent.len() + 1);
        for (key, &(start, _)) in children {
            let (name, id) = &key[parent.len()];
            let follows = match child {
                None => true,
                Some((n, v)) => (name.as_str(), id.as_str()) > (n, v),
            };
            if follows {
                best = Some(best.map_or(start, |b| b.min(start)));
            }
        }
        best.unwrap_or_else(|| {
            if parent.is_empty() {
                self.root_close
            } else {
                self.branches[parent].1 - BRANCH_CLOSE.len()
            }
        })
    }

    /// Adjusts every entry for the replacement of old byte range
    /// `[start, end)` by `new_len` bytes (`start == end` is a pure
    /// insert). Nesting means an entry is entirely after the splice
    /// (shift both ends), contains it or *is* the replaced report
    /// (shift the end only), or is entirely before (untouched); an
    /// entry ending exactly at an insert point stays put, because the
    /// fragment lands after it.
    fn splice_shift(&mut self, start: usize, end: usize, new_len: usize) {
        let delta = new_len as i64 - (end - start) as i64;
        if delta == 0 {
            return;
        }
        let shift = |x: usize| (x as i64 + delta) as usize;
        for range in self.branches.values_mut().chain(self.reports.values_mut()) {
            if range.0 >= end {
                range.0 = shift(range.0);
                range.1 = shift(range.1);
            } else if range.1 > start {
                range.1 = shift(range.1);
            }
        }
        self.root_close = shift(self.root_close);
    }

    /// Re-coordinates the whole index after a batched rebuild.
    ///
    /// `applied` holds `(old end offset, byte delta)` per patch in
    /// document order; a start coordinate moves by the deltas of every
    /// patch ending at or before it, an end coordinate by those ending
    /// strictly before it (an insert at the coordinate itself lands
    /// after the entry). The replaced reports (`targets`) get their
    /// recorded new ranges, then the rendered fragments (`fresh`) are
    /// walked to index the levels and reports they created.
    fn apply_batch(
        &mut self,
        applied: Vec<(usize, i64)>,
        targets: Vec<(PathKey, (usize, usize))>,
        fresh: Vec<(PathKey, usize, InsertNode)>,
    ) {
        let ends: Vec<usize> = applied.iter().map(|&(end, _)| end).collect();
        let cums: Vec<i64> = applied
            .iter()
            .scan(0i64, |acc, &(_, delta)| {
                *acc += delta;
                Some(*acc)
            })
            .collect();
        let before = |count: usize| if count == 0 { 0 } else { cums[count - 1] };
        let for_start = |x: usize| before(ends.partition_point(|&e| e <= x));
        let for_end = |x: usize| before(ends.partition_point(|&e| e < x));
        for range in self.branches.values_mut().chain(self.reports.values_mut()) {
            range.0 = (range.0 as i64 + for_start(range.0)) as usize;
            range.1 = (range.1 as i64 + for_end(range.1)) as usize;
        }
        self.root_close = (self.root_close as i64 + for_start(self.root_close)) as usize;
        for (path, range) in targets {
            self.reports.insert(path, range);
        }
        for (mut path, start, node) in fresh {
            node.index_into(&mut path, start, &mut self.branches, &mut self.reports);
        }
    }
}

/// Merged fragment for every batch item inserting at one splice
/// point. Entries keep *canonical* order — a level's direct report
/// first, then child branches sorted by `(name, id)` — the same order
/// sequential updates produce now that every splice point is
/// canonical, so batch and one-at-a-time ingestion render identical
/// bytes.
#[derive(Default)]
struct InsertNode {
    entries: Vec<InsertEntry>,
}

enum InsertEntry {
    Report(String),
    Branch(String, String, InsertNode),
}

impl InsertNode {
    fn add(&mut self, rest: &[(String, String)], xml: &str) {
        match rest.split_first() {
            // The level's direct report precedes every child branch.
            None => self.entries.insert(0, InsertEntry::Report(xml.to_string())),
            Some(((n, v), tail)) => {
                for entry in &mut self.entries {
                    if let InsertEntry::Branch(en, ev, child) = entry {
                        if en == n && ev == v {
                            return child.add(tail, xml);
                        }
                    }
                }
                let mut child = InsertNode::default();
                child.add(tail, xml);
                let at = self
                    .entries
                    .iter()
                    .position(|e| match e {
                        InsertEntry::Report(_) => false,
                        InsertEntry::Branch(en, ev, _) => {
                            (en.as_str(), ev.as_str()) > (n.as_str(), v.as_str())
                        }
                    })
                    .unwrap_or(self.entries.len());
                self.entries.insert(at, InsertEntry::Branch(n.clone(), v.clone(), child));
            }
        }
    }

    fn rendered_len(&self) -> usize {
        self.entries
            .iter()
            .map(|e| match e {
                InsertEntry::Report(xml) => xml.len(),
                // Upper bound: attr escaping can only grow the tag.
                InsertEntry::Branch(n, v, child) => {
                    64 + 2 * (n.len() + v.len()) + child.rendered_len()
                }
            })
            .sum()
    }

    fn render(&self, out: &mut String) {
        for entry in &self.entries {
            match entry {
                InsertEntry::Report(xml) => out.push_str(xml),
                InsertEntry::Branch(n, v, child) => {
                    out.push_str("<branch name=\"");
                    out.push_str(&escape_attr(n));
                    out.push_str("\" id=\"");
                    out.push_str(&escape_attr(v));
                    out.push_str("\">");
                    child.render(out);
                    out.push_str(BRANCH_CLOSE);
                }
            }
        }
    }

    /// Mirrors [`InsertNode::render`] offset-for-offset to index what
    /// the fragment created: `at` is where the fragment begins in the
    /// *new* document and `path` the branch level it rendered into.
    /// Returns the rendered byte length.
    fn index_into(
        &self,
        path: &mut PathKey,
        at: usize,
        branches: &mut BTreeMap<PathKey, (usize, usize)>,
        reports: &mut BTreeMap<PathKey, (usize, usize)>,
    ) -> usize {
        let mut offset = at;
        for entry in &self.entries {
            match entry {
                InsertEntry::Report(xml) => {
                    reports.entry(path.clone()).or_insert((offset, offset + xml.len()));
                    offset += xml.len();
                }
                InsertEntry::Branch(n, v, child) => {
                    let open = "<branch name=\"".len()
                        + escape_attr(n).len()
                        + "\" id=\"".len()
                        + escape_attr(v).len()
                        + "\">".len();
                    path.push((n.clone(), v.clone()));
                    let inner = child.index_into(path, offset + open, branches, reports);
                    let total = open + inner + BRANCH_CLOSE.len();
                    branches.insert(path.clone(), (offset, offset + total));
                    path.pop();
                    offset += total;
                }
            }
        }
        offset - at
    }
}

fn attr<'a>(attrs: &'a [inca_xml::Attribute<'a>], name: &str) -> Option<&'a str> {
    attrs.iter().find(|a| a.name == name).map(|a| a.value.as_ref())
}

/// Consumes tokens until the already-opened element `name` closes;
/// returns the byte offset just past its end tag.
fn skip_subtree(tok: &mut Tokenizer<'_>, name: &str) -> Result<usize, CacheError> {
    let mut depth = 1usize;
    loop {
        let token = tok
            .next_token()?
            .ok_or_else(|| CacheError::Corrupt(format!("<{name}> never closes")))?;
        match token {
            Token::StartTag { self_closing: false, .. } => depth += 1,
            Token::EndTag { .. } => {
                depth -= 1;
                if depth == 0 {
                    return Ok(tok.offset());
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inca_report::{Report, ReportBuilder, Timestamp};

    fn report(name: &str, value: &str) -> String {
        ReportBuilder::new(name, "1.0")
            .host("h")
            .gmt(Timestamp::from_secs(0))
            .body_value("v", value)
            .success()
            .unwrap()
            .to_xml()
    }

    fn branch(s: &str) -> BranchId {
        s.parse().unwrap()
    }

    #[test]
    fn empty_cache() {
        let cache = XmlCache::new();
        assert_eq!(cache.report_count(), 0);
        assert!(cache.size_bytes() > 0);
        assert_eq!(cache.subtree(&branch("vo=t")).unwrap(), None);
        assert!(cache.reports(None).unwrap().is_empty());
    }

    #[test]
    fn insert_creates_hierarchy() {
        let mut cache = XmlCache::new();
        let b = branch("reporter=version.globus,resource=tg1,site=sdsc,vo=teragrid");
        cache.update(&b, &report("version.globus", "2.4.3")).unwrap();
        assert_eq!(cache.report_count(), 1);
        let doc = cache.document();
        assert!(doc.contains(r#"<branch name="vo" id="teragrid">"#));
        assert!(doc.contains(r#"<branch name="reporter" id="version.globus">"#));
        // vo is outermost.
        assert!(
            doc.find(r#"id="teragrid""#).unwrap() < doc.find(r#"id="sdsc""#).unwrap()
        );
    }

    #[test]
    fn update_replaces_previous_copy() {
        let mut cache = XmlCache::new();
        let b = branch("reporter=version.globus,resource=tg1,site=sdsc,vo=teragrid");
        cache.update(&b, &report("version.globus", "2.4.0")).unwrap();
        let size_before = cache.size_bytes();
        cache.update(&b, &report("version.globus", "2.4.3")).unwrap();
        assert_eq!(cache.report_count(), 1, "update must replace, not append");
        assert!(cache.document().contains("2.4.3"));
        assert!(!cache.document().contains("2.4.0"));
        // Same-size reports keep the cache size steady, as §5.2.1
        // observed ("the cache size remained steady at 1.5 MB").
        assert_eq!(cache.size_bytes(), size_before);
    }

    #[test]
    fn sibling_reports_share_hierarchy_levels() {
        let mut cache = XmlCache::new();
        cache
            .update(
                &branch("reporter=a,resource=r1,site=sdsc,vo=tg"),
                &report("a", "1"),
            )
            .unwrap();
        cache
            .update(
                &branch("reporter=b,resource=r1,site=sdsc,vo=tg"),
                &report("b", "2"),
            )
            .unwrap();
        cache
            .update(
                &branch("reporter=a,resource=r2,site=sdsc,vo=tg"),
                &report("a", "3"),
            )
            .unwrap();
        assert_eq!(cache.report_count(), 3);
        // Only one vo level and one site level exist.
        assert_eq!(cache.document().matches(r#"name="vo""#).count(), 1);
        assert_eq!(cache.document().matches(r#"name="site""#).count(), 1);
        assert_eq!(cache.document().matches(r#"name="resource""#).count(), 2);
    }

    #[test]
    fn subtree_full_branch_returns_single_report() {
        let mut cache = XmlCache::new();
        let b = branch("reporter=a,resource=r1,site=sdsc,vo=tg");
        cache.update(&b, &report("a", "1")).unwrap();
        cache.update(&branch("reporter=b,resource=r1,site=sdsc,vo=tg"), &report("b", "2")).unwrap();
        let sub = cache.subtree(&b).unwrap().unwrap();
        assert!(sub.contains("<incaReport"));
        assert!(sub.contains(">1</"));
        assert!(!sub.contains(">2</"));
    }

    #[test]
    fn subtree_suffix_returns_related_reports() {
        let mut cache = XmlCache::new();
        cache.update(&branch("reporter=a,resource=r1,site=sdsc,vo=tg"), &report("a", "1")).unwrap();
        cache.update(&branch("reporter=b,resource=r2,site=sdsc,vo=tg"), &report("b", "2")).unwrap();
        cache.update(&branch("reporter=c,resource=r3,site=ncsa,vo=tg"), &report("c", "3")).unwrap();
        let sdsc = cache.subtree(&branch("site=sdsc,vo=tg")).unwrap().unwrap();
        assert!(sdsc.contains(">1</") && sdsc.contains(">2</"));
        assert!(!sdsc.contains(">3</"));
        let whole = cache.subtree(&branch("vo=tg")).unwrap().unwrap();
        assert_eq!(whole.matches("<incaReport").count(), 3);
    }

    #[test]
    fn subtree_missing_returns_none() {
        let mut cache = XmlCache::new();
        cache.update(&branch("reporter=a,resource=r1,site=sdsc,vo=tg"), &report("a", "1")).unwrap();
        assert_eq!(cache.subtree(&branch("site=psc,vo=tg")).unwrap(), None);
        assert_eq!(cache.subtree(&branch("vo=other")).unwrap(), None);
        assert_eq!(
            cache.subtree(&branch("reporter=zzz,resource=r1,site=sdsc,vo=tg")).unwrap(),
            None
        );
    }

    #[test]
    fn reports_lists_with_branches() {
        let mut cache = XmlCache::new();
        let b1 = branch("reporter=a,resource=r1,site=sdsc,vo=tg");
        let b2 = branch("reporter=b,resource=r2,site=ncsa,vo=tg");
        cache.update(&b1, &report("a", "1")).unwrap();
        cache.update(&b2, &report("b", "2")).unwrap();
        let all = cache.reports(None).unwrap();
        assert_eq!(all.len(), 2);
        assert!(all.iter().any(|(b, _)| *b == b1));
        assert!(all.iter().any(|(b, _)| *b == b2));
        let sdsc_only = cache.reports(Some(&branch("site=sdsc,vo=tg"))).unwrap();
        assert_eq!(sdsc_only.len(), 1);
        assert_eq!(sdsc_only[0].0, b1);
        // Every extracted report parses.
        for (_, xml) in all {
            Report::parse(&xml).unwrap();
        }
    }

    #[test]
    fn cached_report_roundtrips_exactly() {
        let mut cache = XmlCache::new();
        let xml = report("escaping.test", "tricky < & > \"text\"");
        let b = branch("reporter=escaping.test,resource=r,site=s,vo=v");
        cache.update(&b, &xml).unwrap();
        let (_, got) = &cache.reports(Some(&b)).unwrap()[0];
        assert_eq!(*got, xml, "splice must be byte-exact");
    }

    #[test]
    fn branch_values_with_xml_specials_escaped_in_attrs() {
        let mut cache = XmlCache::new();
        let b = BranchId::new([("reporter", "a&b\"c"), ("vo", "t<g")]).unwrap();
        cache.update(&b, &report("x", "1")).unwrap();
        let all = cache.reports(None).unwrap();
        assert_eq!(all[0].0, b, "attribute escaping must roundtrip");
        // And the subtree query still finds it.
        assert!(cache.subtree(&b).unwrap().is_some());
    }

    #[test]
    fn many_updates_scale_linearly_not_quadratically_in_count() {
        // Structural check only: 200 distinct reports all present.
        let mut cache = XmlCache::new();
        for i in 0..200 {
            let b = branch(&format!("reporter=r{i},resource=m{},site=s{},vo=tg", i % 10, i % 3));
            cache.update(&b, &report(&format!("r{i}"), &i.to_string())).unwrap();
        }
        assert_eq!(cache.report_count(), 200);
        // Re-update them all; count must not grow.
        for i in 0..200 {
            let b = branch(&format!("reporter=r{i},resource=m{},site=s{},vo=tg", i % 10, i % 3));
            cache.update(&b, &report(&format!("r{i}"), "updated")).unwrap();
        }
        assert_eq!(cache.report_count(), 200);
    }

    #[test]
    fn single_component_branch() {
        let mut cache = XmlCache::new();
        let b = branch("series=depot-response");
        cache.update(&b, &report("s", "1")).unwrap();
        assert_eq!(cache.report_count(), 1);
        assert!(cache.subtree(&b).unwrap().is_some());
    }

    /// Applies `items` one `update` at a time — the reference
    /// semantics every `insert_batch` result must match byte-for-byte.
    fn sequential(items: &[(&BranchId, &str)]) -> XmlCache {
        let mut cache = XmlCache::new();
        for (b, xml) in items {
            cache.update(b, xml).unwrap();
        }
        cache
    }

    #[test]
    fn batch_empty_and_singleton() {
        let mut cache = XmlCache::new();
        cache.insert_batch(&[]).unwrap();
        assert_eq!(cache.report_count(), 0);
        let b = branch("reporter=a,site=s,vo=tg");
        let xml = report("a", "1");
        cache.insert_batch(&[(&b, xml.as_str())]).unwrap();
        assert_eq!(cache.document(), sequential(&[(&b, xml.as_str())]).document());
    }

    #[test]
    fn batch_into_empty_cache_matches_sequential() {
        let branches: Vec<BranchId> = (0..20)
            .map(|i| branch(&format!("reporter=r{i},resource=m{},site=s{},vo=tg", i % 4, i % 2)))
            .collect();
        let reports: Vec<String> = (0..20).map(|i| report(&format!("r{i}"), &i.to_string())).collect();
        let items: Vec<(&BranchId, &str)> =
            branches.iter().zip(reports.iter().map(String::as_str)).collect();
        let mut batched = XmlCache::new();
        batched.insert_batch(&items).unwrap();
        assert_eq!(batched.document(), sequential(&items).document());
        assert_eq!(batched.report_count(), 20);
    }

    #[test]
    fn batch_mixes_replaces_and_inserts() {
        // Pre-populate, then batch a mix of updates to existing
        // branches and brand-new siblings/sites.
        let seed: Vec<BranchId> = (0..10)
            .map(|i| branch(&format!("reporter=r{i},resource=m{},site=s0,vo=tg", i % 3)))
            .collect();
        let seed_reports: Vec<String> = (0..10).map(|i| report(&format!("r{i}"), "old")).collect();
        let seed_items: Vec<(&BranchId, &str)> =
            seed.iter().zip(seed_reports.iter().map(String::as_str)).collect();

        let fresh: Vec<BranchId> = vec![
            branch("reporter=r2,resource=m2,site=s0,vo=tg"), // replace
            branch("reporter=new1,resource=m0,site=s0,vo=tg"), // new reporter, old resource
            branch("reporter=new2,resource=m9,site=s0,vo=tg"), // new resource
            branch("reporter=new3,resource=m0,site=s9,vo=tg"), // new site
            branch("reporter=new4,resource=m1,site=s9,vo=tg"), // shares the new site
            branch("site=s0,vo=tg"),                           // intermediate-level report
        ];
        let fresh_reports: Vec<String> =
            (0..fresh.len()).map(|i| report(&format!("n{i}"), "new")).collect();
        let fresh_items: Vec<(&BranchId, &str)> =
            fresh.iter().zip(fresh_reports.iter().map(String::as_str)).collect();

        let mut batched = sequential(&seed_items);
        batched.insert_batch(&fresh_items).unwrap();
        let mut reference = sequential(&seed_items);
        for (b, xml) in &fresh_items {
            reference.update(b, xml).unwrap();
        }
        assert_eq!(batched.document(), reference.document());
        assert_eq!(batched.report_count(), 15);
    }

    #[test]
    fn batch_duplicate_branch_last_write_wins() {
        let b1 = branch("reporter=a,site=s,vo=tg");
        let b2 = branch("reporter=b,site=s,vo=tg");
        let (ra1, ra2, rb) = (report("a", "first"), report("a", "second"), report("b", "x"));
        let items: Vec<(&BranchId, &str)> =
            vec![(&b1, ra1.as_str()), (&b2, rb.as_str()), (&b1, ra2.as_str())];
        let mut batched = XmlCache::new();
        batched.insert_batch(&items).unwrap();
        assert_eq!(batched.document(), sequential(&items).document());
        assert_eq!(batched.report_count(), 2);
        assert!(batched.document().contains("second"));
        assert!(!batched.document().contains("first"));
    }

    #[test]
    fn batch_with_escaped_branch_values_matches_sequential() {
        let b1 = BranchId::new([("reporter", "a&b\"c"), ("vo", "t<g")]).unwrap();
        let b2 = BranchId::new([("reporter", "plain"), ("vo", "t<g")]).unwrap();
        let (r1, r2) = (report("x", "1"), report("y", "2"));
        let items: Vec<(&BranchId, &str)> = vec![(&b1, r1.as_str()), (&b2, r2.as_str())];
        let mut batched = XmlCache::new();
        batched.insert_batch(&items).unwrap();
        assert_eq!(batched.document(), sequential(&items).document());
        assert!(batched.subtree(&b1).unwrap().is_some());
        assert!(batched.subtree(&b2).unwrap().is_some());
    }

    /// Indexed reads must be byte-identical to the streaming oracle.
    fn assert_reads_match_scan(cache: &XmlCache, queries: &[BranchId]) {
        assert_eq!(
            cache.reports(None).unwrap(),
            cache.scan_reports(None).unwrap(),
            "indexed reports(None) diverged from the scan oracle"
        );
        for q in queries {
            assert_eq!(
                cache.subtree(q).unwrap(),
                cache.scan_subtree(q).unwrap(),
                "indexed subtree({q}) diverged from the scan oracle"
            );
            assert_eq!(
                cache.reports(Some(q)).unwrap(),
                cache.scan_reports(Some(q)).unwrap(),
                "indexed reports({q}) diverged from the scan oracle"
            );
        }
    }

    #[test]
    fn indexed_reads_match_scan_across_mixed_mutations() {
        let mut cache = XmlCache::new();
        let queries: Vec<BranchId> = [
            "vo=tg",
            "site=sdsc,vo=tg",
            "site=ncsa,vo=tg",
            "resource=m1,site=sdsc,vo=tg",
            "reporter=a,resource=m1,site=sdsc,vo=tg",
            "reporter=zzz,resource=m1,site=sdsc,vo=tg",
            "vo=other",
        ]
        .iter()
        .map(|s| branch(s))
        .collect();
        cache.update(&branch("reporter=a,resource=m1,site=sdsc,vo=tg"), &report("a", "1")).unwrap();
        assert_reads_match_scan(&cache, &queries);
        cache.update(&branch("reporter=b,resource=m2,site=ncsa,vo=tg"), &report("b", "2")).unwrap();
        assert_reads_match_scan(&cache, &queries);
        let (b3, b4, b5) = (
            branch("reporter=c,resource=m1,site=sdsc,vo=tg"),
            branch("reporter=a,resource=m1,site=sdsc,vo=tg"),
            branch("site=sdsc,vo=tg"),
        );
        let (r3, r4, r5) = (report("c", "3"), report("a", "longer-replacement"), report("s", "5"));
        cache
            .insert_batch(&[(&b3, r3.as_str()), (&b4, r4.as_str()), (&b5, r5.as_str())])
            .unwrap();
        assert_reads_match_scan(&cache, &queries);
        cache.update(&branch("reporter=d,resource=m9,site=psc,vo=tg"), &report("d", "6")).unwrap();
        assert_reads_match_scan(&cache, &queries);
        // a (replaced in the batch), b, c, the site-level report, d.
        assert_eq!(cache.report_count(), 5);
    }

    #[test]
    fn generation_bumps_on_every_mutation() {
        let mut cache = XmlCache::new();
        assert_eq!(cache.generation(), 0);
        let b = branch("reporter=a,site=s,vo=tg");
        cache.update(&b, &report("a", "1")).unwrap();
        assert_eq!(cache.generation(), 1);
        cache.update(&b, &report("a", "2")).unwrap();
        assert_eq!(cache.generation(), 2);
        let b2 = branch("reporter=b,site=s,vo=tg");
        let (ra, rb) = (report("a", "3"), report("b", "4"));
        cache.insert_batch(&[(&b, ra.as_str()), (&b2, rb.as_str())]).unwrap();
        assert_eq!(cache.generation(), 3, "one batch bumps the generation once");
        cache.insert_batch(&[]).unwrap();
        assert_eq!(cache.generation(), 3, "an empty batch is not a mutation");
    }

    #[test]
    fn report_exact_ignores_suffix_matches() {
        let mut cache = XmlCache::new();
        let deep = branch("reporter=a,resource=m1,site=sdsc,vo=tg");
        let mid = branch("site=sdsc,vo=tg");
        cache.update(&deep, &report("a", "deep")).unwrap();
        assert_eq!(cache.report_exact(&deep), Some(cache.reports(Some(&deep)).unwrap()[0].1.as_str()));
        // The site level contains a report below it but stores none
        // directly, so exact lookup misses where suffix matching hits.
        assert!(cache.report_exact(&mid).is_none());
        assert_eq!(cache.reports(Some(&mid)).unwrap().len(), 1);
        cache.update(&mid, &report("summary", "mid")).unwrap();
        assert!(cache.report_exact(&mid).unwrap().contains("mid"));
        assert!(cache.report_exact(&deep).unwrap().contains("deep"));
        assert!(cache.report_exact(&branch("vo=other")).is_none());
    }

    #[test]
    fn from_document_rebuilds_a_working_index() {
        let mut cache = XmlCache::new();
        for i in 0..10 {
            let b = branch(&format!("reporter=r{i},resource=m{},site=s{},vo=tg", i % 3, i % 2));
            cache.update(&b, &report(&format!("r{i}"), &i.to_string())).unwrap();
        }
        let mut reloaded = XmlCache::from_document(cache.document().to_string()).unwrap();
        assert_eq!(reloaded.report_count(), 10);
        assert_eq!(reloaded.reports(None).unwrap(), cache.reports(None).unwrap());
        // And the rebuilt index keeps working through further writes.
        reloaded.update(&branch("reporter=r0,resource=m0,site=s0,vo=tg"), &report("r0", "new")).unwrap();
        assert!(reloaded.report_exact(&branch("reporter=r0,resource=m0,site=s0,vo=tg")).unwrap().contains("new"));
    }

    #[test]
    fn from_document_rejects_duplicate_sibling_reports() {
        let dup = "<incaCache><branch name=\"vo\" id=\"tg\">\
                   <incaReport>one</incaReport><incaReport>two</incaReport>\
                   </branch></incaCache>";
        assert!(matches!(
            XmlCache::from_document(dup.to_string()),
            Err(CacheError::Corrupt(_))
        ));
        let dup_branch = "<incaCache><branch name=\"vo\" id=\"tg\"></branch>\
                          <branch name=\"vo\" id=\"tg\"></branch></incaCache>";
        assert!(matches!(
            XmlCache::from_document(dup_branch.to_string()),
            Err(CacheError::Corrupt(_))
        ));
    }

    #[test]
    fn report_at_intermediate_level_coexists_with_deeper_reports() {
        // A report stored at site level and another at reporter level
        // below the same site.
        let mut cache = XmlCache::new();
        cache.update(&branch("site=sdsc,vo=tg"), &report("site-summary", "ok")).unwrap();
        cache
            .update(&branch("reporter=a,resource=r1,site=sdsc,vo=tg"), &report("a", "1"))
            .unwrap();
        assert_eq!(cache.report_count(), 2);
        let site = cache.subtree(&branch("site=sdsc,vo=tg")).unwrap().unwrap();
        assert_eq!(site.matches("<incaReport").count(), 2);
        let deep = cache.subtree(&branch("reporter=a,resource=r1,site=sdsc,vo=tg")).unwrap();
        assert_eq!(deep.unwrap().matches("<incaReport").count(), 1);
    }
}
