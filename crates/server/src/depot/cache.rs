//! The depot cache: one XML document, updated by streaming parse.
//!
//! "The cache is implemented by using a SAX parser and a single XML
//! file. The SAX parser is used for both updates and queries to the
//! cache. The initial design included the use of DOM parsing on the
//! cache, but it was quickly discovered that the memory requirements of
//! the DOM parser grew too rapidly" (§3.2.2).
//!
//! The cache document nests `<branch name="…" id="…">` elements
//! following the branch identifier's hierarchy (general component
//! outermost: `vo`, then `site`, …) with the raw `<incaReport>` spliced
//! at the innermost level. "Further updates of the report will result
//! in the replacement of the previous copy" — an update streams through
//! the document exactly once, locating the splice point by token
//! offsets, and rebuilds the string around it. No tree is ever built,
//! so memory stays at two document buffers regardless of report count;
//! time is linear in cache size, which is precisely the behaviour
//! Figure 9 measures.

use std::collections::BTreeMap;
use std::fmt;

use inca_report::BranchId;
use inca_xml::{escape::escape_attr, Token, Tokenizer, XmlError};

/// Errors from cache operations.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheError {
    /// The cache document itself failed to parse (corruption).
    Corrupt(String),
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::Corrupt(m) => write!(f, "cache corrupt: {m}"),
        }
    }
}

impl std::error::Error for CacheError {}

impl From<XmlError> for CacheError {
    fn from(e: XmlError) -> Self {
        CacheError::Corrupt(e.to_string())
    }
}

/// Where an update must touch the document.
#[derive(Debug, PartialEq, Eq)]
enum Splice {
    /// Replace the byte range of an existing `<incaReport>`.
    Replace { start: usize, end: usize },
    /// Insert at `at`, creating hierarchy levels from `missing_from`.
    Insert { at: usize, missing_from: usize },
}

/// The single-document XML cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlCache {
    doc: String,
}

impl Default for XmlCache {
    fn default() -> Self {
        XmlCache::new()
    }
}

impl XmlCache {
    /// An empty cache.
    pub fn new() -> XmlCache {
        XmlCache { doc: "<incaCache></incaCache>".to_string() }
    }

    /// The full document (the "no branch identifier supplied" query of
    /// §3.2.3: "the entire contents of the cache is returned").
    pub fn document(&self) -> &str {
        &self.doc
    }

    /// Rebuilds a cache from a persisted document, validating the root
    /// and well-formedness (persistence support).
    pub fn from_document(doc: String) -> Result<XmlCache, CacheError> {
        // A full walk validates well-formedness and the root element.
        let cache = XmlCache { doc };
        cache.reports(None)?;
        if !cache.doc.starts_with("<incaCache") {
            return Err(CacheError::Corrupt("document root is not <incaCache>".into()));
        }
        Ok(cache)
    }

    /// Document size in bytes — the x-axis of Figure 9.
    pub fn size_bytes(&self) -> usize {
        self.doc.len()
    }

    /// Number of cached reports.
    pub fn report_count(&self) -> usize {
        // Report bodies escape all '<', so the literal tag text cannot
        // occur inside report content; substring counting is exact.
        self.doc.matches("<incaReport").count()
    }

    /// Inserts or replaces the report stored at `branch`.
    ///
    /// The report XML is spliced verbatim (it was validated upstream by
    /// the envelope decode), so the cost here is the stream walk to the
    /// splice point plus the rebuild of the document string.
    pub fn update(&mut self, branch: &BranchId, report_xml: &str) -> Result<(), CacheError> {
        let hierarchy: Vec<(&str, &str)> = branch.hierarchy().collect();
        let splice = Self::find_splice(&self.doc, &hierarchy)?;
        match splice {
            Splice::Replace { start, end } => {
                let mut out = String::with_capacity(self.doc.len() + report_xml.len());
                out.push_str(&self.doc[..start]);
                out.push_str(report_xml);
                out.push_str(&self.doc[end..]);
                self.doc = out;
            }
            Splice::Insert { at, missing_from } => {
                let mut fragment = String::with_capacity(report_xml.len() + 128);
                for (name, id) in &hierarchy[missing_from..] {
                    fragment.push_str(&format!(
                        "<branch name=\"{}\" id=\"{}\">",
                        escape_attr(name),
                        escape_attr(id)
                    ));
                }
                fragment.push_str(report_xml);
                for _ in &hierarchy[missing_from..] {
                    fragment.push_str("</branch>");
                }
                let mut out = String::with_capacity(self.doc.len() + fragment.len());
                out.push_str(&self.doc[..at]);
                out.push_str(&fragment);
                out.push_str(&self.doc[at..]);
                self.doc = out;
            }
        }
        Ok(())
    }

    /// Inserts or replaces `items.len()` reports in one pass.
    ///
    /// This is the §5.2.2 amortization: [`XmlCache::update`] streams
    /// the whole document once *per report*, so a burst of N arrivals
    /// costs O(N × cache). `insert_batch` streams the document exactly
    /// once to index every splice point, then rebuilds the string
    /// exactly once — O(N + cache) — while producing a document
    /// **byte-identical** to applying the same updates sequentially
    /// (the `batch_matches_sequential` property test holds this
    /// equivalence).
    ///
    /// Duplicate branches within one batch behave like sequential
    /// updates: the report lands where the first occurrence would have
    /// inserted it, holding the content of the last occurrence. On
    /// error (a corrupt document) the cache is left untouched.
    pub fn insert_batch(&mut self, items: &[(&BranchId, &str)]) -> Result<(), CacheError> {
        match items {
            [] => return Ok(()),
            [(branch, xml)] => return self.update(branch, xml),
            _ => {}
        }
        // Dedup: position follows the first occurrence of a branch,
        // content follows the last (sequential update semantics).
        let mut order: Vec<Vec<(String, String)>> = Vec::with_capacity(items.len());
        let mut content: BTreeMap<Vec<(String, String)>, &str> = BTreeMap::new();
        for (branch, xml) in items {
            let h: Vec<(String, String)> = branch
                .hierarchy()
                .map(|(n, v)| (n.to_string(), v.to_string()))
                .collect();
            if !content.contains_key(&h) {
                order.push(h.clone());
            }
            content.insert(h, xml);
        }
        // One stream over the document indexes every splice point.
        let index = CacheIndex::build(&self.doc)?;
        let mut patches: Vec<(usize, Patch<'_>)> = Vec::new();
        let mut inserts: BTreeMap<usize, InsertNode> = BTreeMap::new();
        for h in order {
            let xml = content[&h];
            if let Some(&(start, end)) = index.reports.get(&h) {
                patches.push((start, Patch::Replace { end, xml }));
                continue;
            }
            // Deepest existing level: insert just before its close tag
            // (the root entry guarantees the loop terminates).
            let mut depth = h.len();
            let at = loop {
                if let Some(&at) = index.closes.get(&h[..depth]) {
                    break at;
                }
                depth -= 1;
            };
            inserts.entry(at).or_default().add(&h[depth..], xml);
        }
        let mut grown = 0usize;
        for (at, node) in inserts {
            grown += node.rendered_len();
            patches.push((at, Patch::Insert(node)));
        }
        // Replace ranges are disjoint report subtrees and insert
        // points sit on close tags outside them, so ordering by offset
        // yields one well-formed left-to-right rebuild.
        patches.sort_by_key(|(offset, _)| *offset);
        let mut out = String::with_capacity(self.doc.len() + grown);
        let mut cursor = 0usize;
        for (offset, patch) in patches {
            out.push_str(&self.doc[cursor..offset]);
            match patch {
                Patch::Replace { end, xml } => {
                    out.push_str(xml);
                    cursor = end;
                }
                Patch::Insert(node) => {
                    node.render(&mut out);
                    cursor = offset;
                }
            }
        }
        out.push_str(&self.doc[cursor..]);
        self.doc = out;
        Ok(())
    }

    /// Streams to the point where `hierarchy` lives (or should live).
    fn find_splice(doc: &str, hierarchy: &[(&str, &str)]) -> Result<Splice, CacheError> {
        let mut tok = Tokenizer::new(doc);
        // Consume the root start tag.
        match tok.next_token()? {
            Some(Token::StartTag { name, .. }) if name == "incaCache" => {}
            other => return Err(CacheError::Corrupt(format!("bad root: {other:?}"))),
        }
        let mut matched = 0usize;
        loop {
            let pre = tok.offset();
            let token = tok
                .next_token()?
                .ok_or_else(|| CacheError::Corrupt("unexpected end of cache".into()))?;
            match token {
                Token::StartTag { name: "branch", ref attrs, self_closing } => {
                    let pair = (attr(attrs, "name"), attr(attrs, "id"));
                    let want = hierarchy.get(matched).copied();
                    if !self_closing
                        && want.map_or(false, |(n, v)| pair == (Some(n), Some(v)))
                    {
                        matched += 1;
                    } else if !self_closing {
                        skip_subtree(&mut tok, "branch")?;
                    }
                }
                Token::StartTag { name: "incaReport", self_closing, .. } => {
                    if matched == hierarchy.len() {
                        let end = if self_closing {
                            tok.offset()
                        } else {
                            skip_subtree(&mut tok, "incaReport")?
                        };
                        return Ok(Splice::Replace { start: pre, end });
                    }
                    if !self_closing {
                        skip_subtree(&mut tok, "incaReport")?;
                    }
                }
                Token::EndTag { name: "branch" } => {
                    // The level we were inside closed without the next
                    // target component: insert just before this close.
                    return Ok(Splice::Insert { at: pre, missing_from: matched });
                }
                Token::EndTag { name: "incaCache" } => {
                    return Ok(Splice::Insert { at: pre, missing_from: matched });
                }
                Token::StartTag { self_closing, name, .. } => {
                    // Unknown element (future cache extensions): skip.
                    if !self_closing {
                        skip_subtree(&mut tok, name)?;
                    }
                }
                _ => {}
            }
        }
    }

    /// Returns the raw subtree for the deepest level of `query`
    /// (general-first hierarchy from a suffix query), or `None` when
    /// the branch does not exist.
    ///
    /// A full branch identifier yields `<branch …><incaReport>…` for a
    /// single report; a shorter (suffix) query yields the containing
    /// level with every report below it — "this can either be a single
    /// report, a set of related reports, or a specific portion of a
    /// report" (§3.2.3).
    pub fn subtree(&self, query: &BranchId) -> Result<Option<String>, CacheError> {
        let hierarchy: Vec<(&str, &str)> = query.hierarchy().collect();
        let mut tok = Tokenizer::new(&self.doc);
        match tok.next_token()? {
            Some(Token::StartTag { name, .. }) if name == "incaCache" => {}
            other => return Err(CacheError::Corrupt(format!("bad root: {other:?}"))),
        }
        let mut matched = 0usize;
        loop {
            let pre = tok.offset();
            let token = match tok.next_token()? {
                Some(t) => t,
                None => return Ok(None),
            };
            match token {
                Token::StartTag { name: "branch", ref attrs, self_closing } => {
                    let pair = (attr(attrs, "name"), attr(attrs, "id"));
                    let want = hierarchy.get(matched).copied();
                    if !self_closing
                        && want.map_or(false, |(n, v)| pair == (Some(n), Some(v)))
                    {
                        matched += 1;
                        if matched == hierarchy.len() {
                            let end = skip_subtree(&mut tok, "branch")?;
                            return Ok(Some(self.doc[pre..end].to_string()));
                        }
                    } else if !self_closing {
                        skip_subtree(&mut tok, "branch")?;
                    }
                }
                Token::StartTag { name, self_closing, .. } => {
                    if !self_closing {
                        skip_subtree(&mut tok, name)?;
                    }
                }
                Token::EndTag { name: "branch" } | Token::EndTag { name: "incaCache" } => {
                    // Either a matched level closed without the target
                    // (ids are unique per level, so it cannot exist
                    // elsewhere) or the document ended: not found.
                    return Ok(None);
                }
                _ => {}
            }
        }
    }

    /// Walks the whole cache collecting `(branch, report_xml)` pairs
    /// whose branch matches the suffix `query` (or all reports when
    /// `query` is `None`). Used by data consumers.
    pub fn reports(&self, query: Option<&BranchId>) -> Result<Vec<(BranchId, String)>, CacheError> {
        let mut tok = Tokenizer::new(&self.doc);
        match tok.next_token()? {
            Some(Token::StartTag { name, .. }) if name == "incaCache" => {}
            other => return Err(CacheError::Corrupt(format!("bad root: {other:?}"))),
        }
        let mut path: Vec<(String, String)> = Vec::new();
        let mut out = Vec::new();
        loop {
            let pre = tok.offset();
            let token = match tok.next_token()? {
                Some(t) => t,
                None => break,
            };
            match token {
                Token::StartTag { name: "branch", ref attrs, self_closing } => {
                    if !self_closing {
                        match (attr(attrs, "name"), attr(attrs, "id")) {
                            (Some(n), Some(v)) => path.push((n.to_string(), v.to_string())),
                            _ => {
                                return Err(CacheError::Corrupt(
                                    "branch element missing name/id".into(),
                                ))
                            }
                        }
                    }
                }
                Token::EndTag { name: "branch" } => {
                    path.pop();
                }
                Token::StartTag { name: "incaReport", self_closing, .. } => {
                    let end = if self_closing {
                        tok.offset()
                    } else {
                        skip_subtree(&mut tok, "incaReport")?
                    };
                    // The branch id is the path reversed back to
                    // specific-first order.
                    let pairs: Vec<(String, String)> = path.iter().rev().cloned().collect();
                    let branch = BranchId::new(pairs)
                        .map_err(|e| CacheError::Corrupt(e.to_string()))?;
                    let keep = query.map_or(true, |q| branch.matches_suffix(q));
                    if keep {
                        out.push((branch, self.doc[pre..end].to_string()));
                    }
                }
                Token::EndTag { name: "incaCache" } => break,
                Token::StartTag { name, self_closing, .. } => {
                    if !self_closing {
                        skip_subtree(&mut tok, name)?;
                    }
                }
                _ => {}
            }
        }
        Ok(out)
    }
}


/// One splice of a batched rebuild.
enum Patch<'a> {
    /// Replace an existing `<incaReport>` (range end + new bytes).
    Replace { end: usize, xml: &'a str },
    /// Insert a merged fragment of new levels and reports.
    Insert(InsertNode),
}

/// Everything a batch needs to know about the current document,
/// gathered in a single stream: the byte range of the first
/// `<incaReport>` directly under each branch path (the one
/// [`XmlCache::update`] would replace) and the close-tag offset of
/// each path (where an update inserts missing content). The empty
/// path maps to `</incaCache>`.
#[derive(Default)]
struct CacheIndex {
    reports: BTreeMap<Vec<(String, String)>, (usize, usize)>,
    closes: BTreeMap<Vec<(String, String)>, usize>,
}

impl CacheIndex {
    fn build(doc: &str) -> Result<CacheIndex, CacheError> {
        let mut tok = Tokenizer::new(doc);
        match tok.next_token()? {
            Some(Token::StartTag { name, .. }) if name == "incaCache" => {}
            other => return Err(CacheError::Corrupt(format!("bad root: {other:?}"))),
        }
        let mut path: Vec<(String, String)> = Vec::new();
        let mut index = CacheIndex::default();
        loop {
            let pre = tok.offset();
            let token = tok
                .next_token()?
                .ok_or_else(|| CacheError::Corrupt("unexpected end of cache".into()))?;
            match token {
                Token::StartTag { name: "branch", ref attrs, self_closing } => {
                    if !self_closing {
                        match (attr(attrs, "name"), attr(attrs, "id")) {
                            (Some(n), Some(v)) => path.push((n.to_string(), v.to_string())),
                            _ => {
                                return Err(CacheError::Corrupt(
                                    "branch element missing name/id".into(),
                                ))
                            }
                        }
                    }
                }
                Token::EndTag { name: "branch" } => {
                    index.closes.entry(path.clone()).or_insert(pre);
                    if path.pop().is_none() {
                        return Err(CacheError::Corrupt("unbalanced </branch>".into()));
                    }
                }
                Token::StartTag { name: "incaReport", self_closing, .. } => {
                    let end = if self_closing {
                        tok.offset()
                    } else {
                        skip_subtree(&mut tok, "incaReport")?
                    };
                    index.reports.entry(path.clone()).or_insert((pre, end));
                }
                Token::EndTag { name: "incaCache" } => {
                    index.closes.insert(Vec::new(), pre);
                    return Ok(index);
                }
                Token::StartTag { name, self_closing, .. } => {
                    if !self_closing {
                        skip_subtree(&mut tok, name)?;
                    }
                }
                _ => {}
            }
        }
    }
}

/// Merged fragment for every batch item inserting at one splice
/// point. Entries keep arrival order, which is exactly the document
/// order sequential updates would have produced: each later update
/// lands just before the close tag, i.e. after everything inserted
/// there earlier.
#[derive(Default)]
struct InsertNode {
    entries: Vec<InsertEntry>,
}

enum InsertEntry {
    Report(String),
    Branch(String, String, InsertNode),
}

impl InsertNode {
    fn add(&mut self, rest: &[(String, String)], xml: &str) {
        match rest.split_first() {
            None => self.entries.push(InsertEntry::Report(xml.to_string())),
            Some(((n, v), tail)) => {
                for entry in &mut self.entries {
                    if let InsertEntry::Branch(en, ev, child) = entry {
                        if en == n && ev == v {
                            return child.add(tail, xml);
                        }
                    }
                }
                let mut child = InsertNode::default();
                child.add(tail, xml);
                self.entries.push(InsertEntry::Branch(n.clone(), v.clone(), child));
            }
        }
    }

    fn rendered_len(&self) -> usize {
        self.entries
            .iter()
            .map(|e| match e {
                InsertEntry::Report(xml) => xml.len(),
                // Upper bound: attr escaping can only grow the tag.
                InsertEntry::Branch(n, v, child) => {
                    64 + 2 * (n.len() + v.len()) + child.rendered_len()
                }
            })
            .sum()
    }

    fn render(&self, out: &mut String) {
        for entry in &self.entries {
            match entry {
                InsertEntry::Report(xml) => out.push_str(xml),
                InsertEntry::Branch(n, v, child) => {
                    out.push_str("<branch name=\"");
                    out.push_str(&escape_attr(n));
                    out.push_str("\" id=\"");
                    out.push_str(&escape_attr(v));
                    out.push_str("\">");
                    child.render(out);
                    out.push_str("</branch>");
                }
            }
        }
    }
}

fn attr<'a>(attrs: &'a [inca_xml::Attribute<'a>], name: &str) -> Option<&'a str> {
    attrs.iter().find(|a| a.name == name).map(|a| a.value.as_ref())
}

/// Consumes tokens until the already-opened element `name` closes;
/// returns the byte offset just past its end tag.
fn skip_subtree(tok: &mut Tokenizer<'_>, name: &str) -> Result<usize, CacheError> {
    let mut depth = 1usize;
    loop {
        let token = tok
            .next_token()?
            .ok_or_else(|| CacheError::Corrupt(format!("<{name}> never closes")))?;
        match token {
            Token::StartTag { self_closing: false, .. } => depth += 1,
            Token::EndTag { .. } => {
                depth -= 1;
                if depth == 0 {
                    return Ok(tok.offset());
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inca_report::{Report, ReportBuilder, Timestamp};

    fn report(name: &str, value: &str) -> String {
        ReportBuilder::new(name, "1.0")
            .host("h")
            .gmt(Timestamp::from_secs(0))
            .body_value("v", value)
            .success()
            .unwrap()
            .to_xml()
    }

    fn branch(s: &str) -> BranchId {
        s.parse().unwrap()
    }

    #[test]
    fn empty_cache() {
        let cache = XmlCache::new();
        assert_eq!(cache.report_count(), 0);
        assert!(cache.size_bytes() > 0);
        assert_eq!(cache.subtree(&branch("vo=t")).unwrap(), None);
        assert!(cache.reports(None).unwrap().is_empty());
    }

    #[test]
    fn insert_creates_hierarchy() {
        let mut cache = XmlCache::new();
        let b = branch("reporter=version.globus,resource=tg1,site=sdsc,vo=teragrid");
        cache.update(&b, &report("version.globus", "2.4.3")).unwrap();
        assert_eq!(cache.report_count(), 1);
        let doc = cache.document();
        assert!(doc.contains(r#"<branch name="vo" id="teragrid">"#));
        assert!(doc.contains(r#"<branch name="reporter" id="version.globus">"#));
        // vo is outermost.
        assert!(
            doc.find(r#"id="teragrid""#).unwrap() < doc.find(r#"id="sdsc""#).unwrap()
        );
    }

    #[test]
    fn update_replaces_previous_copy() {
        let mut cache = XmlCache::new();
        let b = branch("reporter=version.globus,resource=tg1,site=sdsc,vo=teragrid");
        cache.update(&b, &report("version.globus", "2.4.0")).unwrap();
        let size_before = cache.size_bytes();
        cache.update(&b, &report("version.globus", "2.4.3")).unwrap();
        assert_eq!(cache.report_count(), 1, "update must replace, not append");
        assert!(cache.document().contains("2.4.3"));
        assert!(!cache.document().contains("2.4.0"));
        // Same-size reports keep the cache size steady, as §5.2.1
        // observed ("the cache size remained steady at 1.5 MB").
        assert_eq!(cache.size_bytes(), size_before);
    }

    #[test]
    fn sibling_reports_share_hierarchy_levels() {
        let mut cache = XmlCache::new();
        cache
            .update(
                &branch("reporter=a,resource=r1,site=sdsc,vo=tg"),
                &report("a", "1"),
            )
            .unwrap();
        cache
            .update(
                &branch("reporter=b,resource=r1,site=sdsc,vo=tg"),
                &report("b", "2"),
            )
            .unwrap();
        cache
            .update(
                &branch("reporter=a,resource=r2,site=sdsc,vo=tg"),
                &report("a", "3"),
            )
            .unwrap();
        assert_eq!(cache.report_count(), 3);
        // Only one vo level and one site level exist.
        assert_eq!(cache.document().matches(r#"name="vo""#).count(), 1);
        assert_eq!(cache.document().matches(r#"name="site""#).count(), 1);
        assert_eq!(cache.document().matches(r#"name="resource""#).count(), 2);
    }

    #[test]
    fn subtree_full_branch_returns_single_report() {
        let mut cache = XmlCache::new();
        let b = branch("reporter=a,resource=r1,site=sdsc,vo=tg");
        cache.update(&b, &report("a", "1")).unwrap();
        cache.update(&branch("reporter=b,resource=r1,site=sdsc,vo=tg"), &report("b", "2")).unwrap();
        let sub = cache.subtree(&b).unwrap().unwrap();
        assert!(sub.contains("<incaReport"));
        assert!(sub.contains(">1</"));
        assert!(!sub.contains(">2</"));
    }

    #[test]
    fn subtree_suffix_returns_related_reports() {
        let mut cache = XmlCache::new();
        cache.update(&branch("reporter=a,resource=r1,site=sdsc,vo=tg"), &report("a", "1")).unwrap();
        cache.update(&branch("reporter=b,resource=r2,site=sdsc,vo=tg"), &report("b", "2")).unwrap();
        cache.update(&branch("reporter=c,resource=r3,site=ncsa,vo=tg"), &report("c", "3")).unwrap();
        let sdsc = cache.subtree(&branch("site=sdsc,vo=tg")).unwrap().unwrap();
        assert!(sdsc.contains(">1</") && sdsc.contains(">2</"));
        assert!(!sdsc.contains(">3</"));
        let whole = cache.subtree(&branch("vo=tg")).unwrap().unwrap();
        assert_eq!(whole.matches("<incaReport").count(), 3);
    }

    #[test]
    fn subtree_missing_returns_none() {
        let mut cache = XmlCache::new();
        cache.update(&branch("reporter=a,resource=r1,site=sdsc,vo=tg"), &report("a", "1")).unwrap();
        assert_eq!(cache.subtree(&branch("site=psc,vo=tg")).unwrap(), None);
        assert_eq!(cache.subtree(&branch("vo=other")).unwrap(), None);
        assert_eq!(
            cache.subtree(&branch("reporter=zzz,resource=r1,site=sdsc,vo=tg")).unwrap(),
            None
        );
    }

    #[test]
    fn reports_lists_with_branches() {
        let mut cache = XmlCache::new();
        let b1 = branch("reporter=a,resource=r1,site=sdsc,vo=tg");
        let b2 = branch("reporter=b,resource=r2,site=ncsa,vo=tg");
        cache.update(&b1, &report("a", "1")).unwrap();
        cache.update(&b2, &report("b", "2")).unwrap();
        let all = cache.reports(None).unwrap();
        assert_eq!(all.len(), 2);
        assert!(all.iter().any(|(b, _)| *b == b1));
        assert!(all.iter().any(|(b, _)| *b == b2));
        let sdsc_only = cache.reports(Some(&branch("site=sdsc,vo=tg"))).unwrap();
        assert_eq!(sdsc_only.len(), 1);
        assert_eq!(sdsc_only[0].0, b1);
        // Every extracted report parses.
        for (_, xml) in all {
            Report::parse(&xml).unwrap();
        }
    }

    #[test]
    fn cached_report_roundtrips_exactly() {
        let mut cache = XmlCache::new();
        let xml = report("escaping.test", "tricky < & > \"text\"");
        let b = branch("reporter=escaping.test,resource=r,site=s,vo=v");
        cache.update(&b, &xml).unwrap();
        let (_, got) = &cache.reports(Some(&b)).unwrap()[0];
        assert_eq!(*got, xml, "splice must be byte-exact");
    }

    #[test]
    fn branch_values_with_xml_specials_escaped_in_attrs() {
        let mut cache = XmlCache::new();
        let b = BranchId::new([("reporter", "a&b\"c"), ("vo", "t<g")]).unwrap();
        cache.update(&b, &report("x", "1")).unwrap();
        let all = cache.reports(None).unwrap();
        assert_eq!(all[0].0, b, "attribute escaping must roundtrip");
        // And the subtree query still finds it.
        assert!(cache.subtree(&b).unwrap().is_some());
    }

    #[test]
    fn many_updates_scale_linearly_not_quadratically_in_count() {
        // Structural check only: 200 distinct reports all present.
        let mut cache = XmlCache::new();
        for i in 0..200 {
            let b = branch(&format!("reporter=r{i},resource=m{},site=s{},vo=tg", i % 10, i % 3));
            cache.update(&b, &report(&format!("r{i}"), &i.to_string())).unwrap();
        }
        assert_eq!(cache.report_count(), 200);
        // Re-update them all; count must not grow.
        for i in 0..200 {
            let b = branch(&format!("reporter=r{i},resource=m{},site=s{},vo=tg", i % 10, i % 3));
            cache.update(&b, &report(&format!("r{i}"), "updated")).unwrap();
        }
        assert_eq!(cache.report_count(), 200);
    }

    #[test]
    fn single_component_branch() {
        let mut cache = XmlCache::new();
        let b = branch("series=depot-response");
        cache.update(&b, &report("s", "1")).unwrap();
        assert_eq!(cache.report_count(), 1);
        assert!(cache.subtree(&b).unwrap().is_some());
    }

    /// Applies `items` one `update` at a time — the reference
    /// semantics every `insert_batch` result must match byte-for-byte.
    fn sequential(items: &[(&BranchId, &str)]) -> XmlCache {
        let mut cache = XmlCache::new();
        for (b, xml) in items {
            cache.update(b, xml).unwrap();
        }
        cache
    }

    #[test]
    fn batch_empty_and_singleton() {
        let mut cache = XmlCache::new();
        cache.insert_batch(&[]).unwrap();
        assert_eq!(cache.report_count(), 0);
        let b = branch("reporter=a,site=s,vo=tg");
        let xml = report("a", "1");
        cache.insert_batch(&[(&b, xml.as_str())]).unwrap();
        assert_eq!(cache.document(), sequential(&[(&b, xml.as_str())]).document());
    }

    #[test]
    fn batch_into_empty_cache_matches_sequential() {
        let branches: Vec<BranchId> = (0..20)
            .map(|i| branch(&format!("reporter=r{i},resource=m{},site=s{},vo=tg", i % 4, i % 2)))
            .collect();
        let reports: Vec<String> = (0..20).map(|i| report(&format!("r{i}"), &i.to_string())).collect();
        let items: Vec<(&BranchId, &str)> =
            branches.iter().zip(reports.iter().map(String::as_str)).collect();
        let mut batched = XmlCache::new();
        batched.insert_batch(&items).unwrap();
        assert_eq!(batched.document(), sequential(&items).document());
        assert_eq!(batched.report_count(), 20);
    }

    #[test]
    fn batch_mixes_replaces_and_inserts() {
        // Pre-populate, then batch a mix of updates to existing
        // branches and brand-new siblings/sites.
        let seed: Vec<BranchId> = (0..10)
            .map(|i| branch(&format!("reporter=r{i},resource=m{},site=s0,vo=tg", i % 3)))
            .collect();
        let seed_reports: Vec<String> = (0..10).map(|i| report(&format!("r{i}"), "old")).collect();
        let seed_items: Vec<(&BranchId, &str)> =
            seed.iter().zip(seed_reports.iter().map(String::as_str)).collect();

        let fresh: Vec<BranchId> = vec![
            branch("reporter=r2,resource=m2,site=s0,vo=tg"), // replace
            branch("reporter=new1,resource=m0,site=s0,vo=tg"), // new reporter, old resource
            branch("reporter=new2,resource=m9,site=s0,vo=tg"), // new resource
            branch("reporter=new3,resource=m0,site=s9,vo=tg"), // new site
            branch("reporter=new4,resource=m1,site=s9,vo=tg"), // shares the new site
            branch("site=s0,vo=tg"),                           // intermediate-level report
        ];
        let fresh_reports: Vec<String> =
            (0..fresh.len()).map(|i| report(&format!("n{i}"), "new")).collect();
        let fresh_items: Vec<(&BranchId, &str)> =
            fresh.iter().zip(fresh_reports.iter().map(String::as_str)).collect();

        let mut batched = sequential(&seed_items);
        batched.insert_batch(&fresh_items).unwrap();
        let mut reference = sequential(&seed_items);
        for (b, xml) in &fresh_items {
            reference.update(b, xml).unwrap();
        }
        assert_eq!(batched.document(), reference.document());
        assert_eq!(batched.report_count(), 15);
    }

    #[test]
    fn batch_duplicate_branch_last_write_wins() {
        let b1 = branch("reporter=a,site=s,vo=tg");
        let b2 = branch("reporter=b,site=s,vo=tg");
        let (ra1, ra2, rb) = (report("a", "first"), report("a", "second"), report("b", "x"));
        let items: Vec<(&BranchId, &str)> =
            vec![(&b1, ra1.as_str()), (&b2, rb.as_str()), (&b1, ra2.as_str())];
        let mut batched = XmlCache::new();
        batched.insert_batch(&items).unwrap();
        assert_eq!(batched.document(), sequential(&items).document());
        assert_eq!(batched.report_count(), 2);
        assert!(batched.document().contains("second"));
        assert!(!batched.document().contains("first"));
    }

    #[test]
    fn batch_with_escaped_branch_values_matches_sequential() {
        let b1 = BranchId::new([("reporter", "a&b\"c"), ("vo", "t<g")]).unwrap();
        let b2 = BranchId::new([("reporter", "plain"), ("vo", "t<g")]).unwrap();
        let (r1, r2) = (report("x", "1"), report("y", "2"));
        let items: Vec<(&BranchId, &str)> = vec![(&b1, r1.as_str()), (&b2, r2.as_str())];
        let mut batched = XmlCache::new();
        batched.insert_batch(&items).unwrap();
        assert_eq!(batched.document(), sequential(&items).document());
        assert!(batched.subtree(&b1).unwrap().is_some());
        assert!(batched.subtree(&b2).unwrap().is_some());
    }

    #[test]
    fn report_at_intermediate_level_coexists_with_deeper_reports() {
        // A report stored at site level and another at reporter level
        // below the same site.
        let mut cache = XmlCache::new();
        cache.update(&branch("site=sdsc,vo=tg"), &report("site-summary", "ok")).unwrap();
        cache
            .update(&branch("reporter=a,resource=r1,site=sdsc,vo=tg"), &report("a", "1"))
            .unwrap();
        assert_eq!(cache.report_count(), 2);
        let site = cache.subtree(&branch("site=sdsc,vo=tg")).unwrap().unwrap();
        assert_eq!(site.matches("<incaReport").count(), 2);
        let deep = cache.subtree(&branch("reporter=a,resource=r1,site=sdsc,vo=tg")).unwrap();
        assert_eq!(deep.unwrap().matches("<incaReport").count(), 1);
    }
}
