//! The O(report) write path: an arena-backed rope over the VO document.
//!
//! [`super::cache::XmlCache`] deliberately reproduces §5.2.2: the cache
//! is one contiguous XML string, so every insert memmoves bytes
//! proportional to the whole cache (Figure 9's growth curve). PR 4 made
//! *reads* O(result) via the persistent branch index; this module does
//! the same for *writes*. It stays beside the splice implementation —
//! which remains the byte-identity oracle, exactly as `scan_*` is for
//! reads — and the depot picks between them per
//! [`super::depot::CacheBackend`].
//!
//! ## Representation
//!
//! * **Arena** — one append-only `String`. Report bytes and
//!   pre-rendered `<branch name=… id=…>` open tags are appended once
//!   and never moved; pieces of the document are `(start, end)` ranges
//!   into it. Replaced reports leave their old bytes behind as garbage
//!   ([`RopeCache::arena_bytes`] vs [`RopeCache::size_bytes`] tracks
//!   the ratio).
//! * **Tree** — branch levels keyed by raw `(name, id)` in a
//!   `BTreeMap`, which *is* the canonical sibling order the splice
//!   cache maintains (PR 5: at every level the level's direct report
//!   precedes child branches; branches sort by `(name, id)`). Because
//!   the canonical document is a pure function of cache content, an
//!   in-order walk of this tree reproduces the splice document
//!   byte-for-byte — no piece offsets need shifting, ever.
//!
//! An insert is a tree walk plus an arena append: O(report + depth ·
//! log fanout), independent of cache size. [`RopeCache::document`]
//! materializes the contiguous string only on demand and caches it per
//! [`RopeCache::generation`], so repeated reads between mutations cost
//! one `Arc` clone — the same generation the depot's `QueryMemo` keys
//! its entries by.

use std::collections::BTreeMap;
use std::sync::Arc;

use inca_report::BranchId;
use inca_xml::escape::escape_attr;
use parking_lot::Mutex;

use super::cache::{CacheError, XmlCache};

const ROOT_OPEN: &str = "<incaCache>";
const ROOT_CLOSE: &str = "</incaCache>";
const BRANCH_CLOSE: &str = "</branch>";

/// Arenas smaller than this are never compacted — the garbage is not
/// worth a rebuild pass.
pub const COMPACT_MIN_ARENA_BYTES: usize = 256 * 1024;

/// Garbage fraction of the arena (`garbage_bytes / arena_bytes`) above
/// which [`RopeCache::maybe_compact`] rebuilds.
pub const COMPACT_GARBAGE_RATIO: f64 = 0.5;

/// A byte range into the arena.
type Span = (usize, usize);

/// One branch level. The open tag is rendered (escaped) into the arena
/// when the level is created; the close tag is a shared constant.
#[derive(Debug, Default)]
struct Node {
    /// Arena range of the rendered `<branch name=… id=…>` open tag.
    /// `None` only for the synthetic root (`<incaCache>`).
    open: Option<Span>,
    /// Arena range of this level's direct report, if any.
    report: Option<Span>,
    /// Child levels in canonical `(name, id)` order.
    children: BTreeMap<(String, String), Node>,
}

/// Arena-backed rope representation of the depot cache.
///
/// Mirrors the [`XmlCache`] API (`update`, `insert_batch`, `subtree`,
/// `reports`, `report_exact`, `from_document`, `generation`) with the
/// same semantics — including generation-bump behaviour, batch dedup
/// (last content wins) and canonical document order — but with O(report)
/// writes. `document()` returns an `Arc<String>` because the string is
/// materialized lazily and shared between readers at the same
/// generation.
#[derive(Debug)]
pub struct RopeCache {
    arena: String,
    root: Node,
    generation: u64,
    /// Length of the materialized document — maintained incrementally
    /// so `size_bytes` is O(1) without materializing.
    live_bytes: usize,
    /// Arena bytes still referenced by some span — the rest is garbage
    /// left behind by replaced reports, reclaimable by [`Self::compact`].
    live_arena: usize,
    report_count: usize,
    /// `(generation, document)` of the last materialization. Interior
    /// mutability: readers holding a shared lock still warm the cache.
    doc_cache: Mutex<Option<(u64, Arc<String>)>>,
}

impl Default for RopeCache {
    fn default() -> Self {
        RopeCache::new()
    }
}

impl PartialEq for RopeCache {
    fn eq(&self, other: &Self) -> bool {
        self.document() == other.document()
    }
}

impl RopeCache {
    /// An empty cache.
    pub fn new() -> RopeCache {
        RopeCache {
            arena: String::new(),
            root: Node::default(),
            generation: 0,
            live_bytes: ROOT_OPEN.len() + ROOT_CLOSE.len(),
            live_arena: 0,
            report_count: 0,
            doc_cache: Mutex::new(None),
        }
    }

    /// Rebuilds a rope from a persisted document.
    ///
    /// Validation and scanning are delegated to the splice oracle
    /// (`XmlCache::from_document` — well-formedness, branch-id checks,
    /// index cross-check); the scanned reports are then re-inserted on
    /// the O(report) path. One O(document) pass at load time, exactly
    /// like the splice cache.
    pub fn from_document(doc: String) -> Result<RopeCache, CacheError> {
        let oracle = XmlCache::from_document(doc)?;
        let mut rope = RopeCache::new();
        for (branch, xml) in oracle.reports(None)? {
            rope.insert(&branch, &xml);
        }
        rope.generation = 0;
        debug_assert_eq!(*rope.document(), *oracle.document());
        Ok(rope)
    }

    /// Monotone counter bumped by every successful mutation — same
    /// contract as [`XmlCache::generation`], and the key under which
    /// both `document()` and the depot's `QueryMemo` cache results.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Materialized document length in bytes, maintained incrementally
    /// (O(1), no materialization).
    pub fn size_bytes(&self) -> usize {
        self.live_bytes
    }

    /// Total arena bytes, including garbage left by replaced reports.
    /// `arena_bytes - (size_bytes - root wrapper)` is reclaimable.
    pub fn arena_bytes(&self) -> usize {
        self.arena.len()
    }

    /// Number of cached reports, O(1).
    pub fn report_count(&self) -> usize {
        self.report_count
    }

    /// Inserts or replaces the report stored at `branch`.
    ///
    /// One tree walk creating missing levels (each open tag rendered
    /// into the arena once) plus one arena append for the report bytes:
    /// O(report + depth · log fanout), independent of cache size.
    pub fn update(&mut self, branch: &BranchId, report_xml: &str) -> Result<(), CacheError> {
        self.insert(branch, report_xml);
        self.generation += 1;
        Ok(())
    }

    /// Inserts or replaces `items.len()` reports with one generation
    /// bump (none for an empty batch) — the same observable semantics
    /// as [`XmlCache::insert_batch`], including duplicate handling
    /// (last content wins). Unlike the splice cache there is no
    /// amortization to orchestrate: each insert is already O(report).
    pub fn insert_batch(&mut self, items: &[(&BranchId, &str)]) -> Result<(), CacheError> {
        if items.is_empty() {
            return Ok(());
        }
        for (branch, xml) in items {
            self.insert(branch, xml);
        }
        self.generation += 1;
        Ok(())
    }

    fn insert(&mut self, branch: &BranchId, report_xml: &str) {
        let arena = &mut self.arena;
        let live_bytes = &mut self.live_bytes;
        let live_arena = &mut self.live_arena;
        let mut node = &mut self.root;
        for (name, id) in branch.hierarchy() {
            node = node.children.entry((name.to_string(), id.to_string())).or_insert_with(|| {
                let start = arena.len();
                arena.push_str("<branch name=\"");
                arena.push_str(&escape_attr(name));
                arena.push_str("\" id=\"");
                arena.push_str(&escape_attr(id));
                arena.push_str("\">");
                *live_bytes += (arena.len() - start) + BRANCH_CLOSE.len();
                *live_arena += arena.len() - start;
                Node { open: Some((start, arena.len())), ..Node::default() }
            });
        }
        let start = arena.len();
        arena.push_str(report_xml);
        *live_arena += report_xml.len();
        match node.report.replace((start, arena.len())) {
            Some((old_start, old_end)) => {
                *live_bytes -= old_end - old_start;
                *live_bytes += report_xml.len();
                *live_arena -= old_end - old_start;
            }
            None => {
                *live_bytes += report_xml.len();
                self.report_count += 1;
            }
        }
    }

    /// Arena bytes no longer referenced by any span — the residue of
    /// replaced reports, reclaimable by [`Self::compact`]. O(1).
    pub fn garbage_bytes(&self) -> usize {
        self.arena.len() - self.live_arena
    }

    /// Rebuilds the arena with only live spans, dropping all garbage.
    ///
    /// One canonical tree walk copies each referenced range into a
    /// fresh arena and rewrites the span in place — O(live bytes),
    /// independent of how much garbage accrued. The document is
    /// untouched (same bytes, same generation), so the materialization
    /// cache and every `QueryMemo` entry keyed on the generation stay
    /// valid.
    pub fn compact(&mut self) {
        let old = std::mem::take(&mut self.arena);
        let mut fresh = String::with_capacity(self.live_arena);
        Self::compact_node(&mut self.root, &old, &mut fresh);
        debug_assert_eq!(fresh.len(), self.live_arena, "live_arena drifted from spans");
        self.arena = fresh;
    }

    fn compact_node(node: &mut Node, old: &str, fresh: &mut String) {
        if let Some(span) = node.open.as_mut() {
            *span = copy_span(*span, old, fresh);
        }
        if let Some(span) = node.report.as_mut() {
            *span = copy_span(*span, old, fresh);
        }
        for child in node.children.values_mut() {
            Self::compact_node(child, old, fresh);
        }
    }

    /// Compacts when the garbage ratio crosses
    /// [`COMPACT_GARBAGE_RATIO`] on an arena of at least
    /// [`COMPACT_MIN_ARENA_BYTES`]; returns whether a rebuild ran. The
    /// depot calls this after every ingest, which bounds arena overhead
    /// at ~2× the live document while keeping rebuilds rare (each one
    /// must re-accumulate half an arena of garbage to trigger the
    /// next).
    pub fn maybe_compact(&mut self) -> bool {
        if self.arena.len() < COMPACT_MIN_ARENA_BYTES {
            return false;
        }
        if (self.garbage_bytes() as f64) < COMPACT_GARBAGE_RATIO * self.arena.len() as f64 {
            return false;
        }
        self.compact();
        true
    }

    /// The full document, materialized on demand and cached until the
    /// next mutation. Readers at the same generation share one
    /// allocation (`Arc` clone).
    pub fn document(&self) -> Arc<String> {
        let mut cached = self.doc_cache.lock();
        if let Some((generation, doc)) = cached.as_ref() {
            if *generation == self.generation {
                return Arc::clone(doc);
            }
        }
        let mut out = String::with_capacity(self.live_bytes);
        out.push_str(ROOT_OPEN);
        self.render(&self.root, &mut out);
        out.push_str(ROOT_CLOSE);
        debug_assert_eq!(out.len(), self.live_bytes, "size_bytes drifted from the document");
        let doc = Arc::new(out);
        *cached = Some((self.generation, Arc::clone(&doc)));
        doc
    }

    /// Canonical in-order render of a node's *contents* (report, then
    /// children wrapped in their tags). The caller supplies the
    /// wrapping open/close tags.
    fn render(&self, node: &Node, out: &mut String) {
        if let Some((start, end)) = node.report {
            out.push_str(&self.arena[start..end]);
        }
        for child in node.children.values() {
            let (start, end) = child.open.expect("non-root nodes carry an open tag");
            out.push_str(&self.arena[start..end]);
            self.render(child, out);
            out.push_str(BRANCH_CLOSE);
        }
    }

    fn node_at(&self, branch: &BranchId) -> Option<&Node> {
        let mut node = &self.root;
        for (name, id) in branch.hierarchy() {
            node = node.children.get(&(name.to_string(), id.to_string()))?;
        }
        Some(node)
    }

    /// The sub-document rooted at the branch level addressed by
    /// `query`, or `None` when the level does not exist. Byte-identical
    /// to [`XmlCache::subtree`]: the branch element including its own
    /// open/close tags. O(result).
    pub fn subtree(&self, query: &BranchId) -> Result<Option<String>, CacheError> {
        let node = match self.node_at(query) {
            Some(n) => n,
            None => return Ok(None),
        };
        let (start, end) = match node.open {
            Some(span) => span,
            // An empty query addresses the synthetic root, which the
            // splice index never records either.
            None => return Ok(None),
        };
        let mut out = String::new();
        out.push_str(&self.arena[start..end]);
        self.render(node, &mut out);
        out.push_str(BRANCH_CLOSE);
        Ok(Some(out))
    }

    /// Collects `(branch, report_xml)` pairs under the level addressed
    /// by `query` (all reports when `None`), in document order —
    /// byte-identical to [`XmlCache::reports`]. Document order falls
    /// out of the canonical tree walk: a level's direct report precedes
    /// its children, children visit in `(name, id)` order.
    pub fn reports(&self, query: Option<&BranchId>) -> Result<Vec<(BranchId, String)>, CacheError> {
        let mut path: Vec<(&str, &str)> = Vec::new();
        let node = match query {
            None => &self.root,
            Some(q) => {
                for pair in q.hierarchy() {
                    path.push(pair);
                }
                match self.node_at(q) {
                    Some(n) => n,
                    None => return Ok(Vec::new()),
                }
            }
        };
        let mut out = Vec::new();
        self.collect(node, &mut path, &mut out)?;
        Ok(out)
    }

    fn collect<'a>(
        &'a self,
        node: &'a Node,
        path: &mut Vec<(&'a str, &'a str)>,
        out: &mut Vec<(BranchId, String)>,
    ) -> Result<(), CacheError> {
        if let Some((start, end)) = node.report {
            // The path is general-first; branch identifiers read
            // specific-first.
            let pairs: Vec<(String, String)> =
                path.iter().rev().map(|(n, v)| (n.to_string(), v.to_string())).collect();
            let branch = BranchId::new(pairs).map_err(|e| CacheError::Corrupt(e.to_string()))?;
            out.push((branch, self.arena[start..end].to_string()));
        }
        for ((name, id), child) in &node.children {
            path.push((name, id));
            self.collect(child, path, out)?;
            path.pop();
        }
        Ok(())
    }

    /// The report stored *exactly at* `branch`: a tree walk, then a
    /// borrowed arena slice. `None` when the level holds no direct
    /// report.
    pub fn report_exact(&self, branch: &BranchId) -> Option<&str> {
        let (start, end) = self.node_at(branch)?.report?;
        Some(&self.arena[start..end])
    }
}

/// Copies one live range into the fresh arena and returns its new span.
fn copy_span(span: Span, old: &str, fresh: &mut String) -> Span {
    let start = fresh.len();
    fresh.push_str(&old[span.0..span.1]);
    (start, fresh.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> BranchId {
        s.parse().unwrap()
    }

    /// Splice oracle mirroring the same operations.
    fn pair() -> (RopeCache, XmlCache) {
        (RopeCache::new(), XmlCache::new())
    }

    #[test]
    fn empty_documents_match() {
        let (rope, oracle) = pair();
        assert_eq!(*rope.document(), *oracle.document());
        assert_eq!(rope.size_bytes(), oracle.size_bytes());
    }

    #[test]
    fn single_insert_matches_oracle() {
        let (mut rope, mut oracle) = pair();
        let id = b("reporter=version.gcc,resource=m1,site=sdsc,vo=tg");
        rope.update(&id, "<incaReport>gcc</incaReport>").unwrap();
        oracle.update(&id, "<incaReport>gcc</incaReport>").unwrap();
        assert_eq!(*rope.document(), *oracle.document());
        assert_eq!(rope.size_bytes(), oracle.size_bytes());
        assert_eq!(rope.report_count(), 1);
        assert_eq!(rope.generation(), 1);
    }

    #[test]
    fn replacement_reuses_level_and_tracks_garbage() {
        let (mut rope, mut oracle) = pair();
        let id = b("reporter=r,site=s");
        for (cache_op, xml) in
            [("first", "<incaReport>one</incaReport>"), ("second", "<incaReport>two two</incaReport>")]
        {
            let _ = cache_op;
            rope.update(&id, xml).unwrap();
            oracle.update(&id, xml).unwrap();
        }
        assert_eq!(*rope.document(), *oracle.document());
        assert_eq!(rope.report_count(), 1);
        // The first report's bytes are garbage in the arena now.
        assert!(rope.arena_bytes() > rope.size_bytes() - ROOT_OPEN.len() - ROOT_CLOSE.len());
    }

    #[test]
    fn canonical_order_holds_regardless_of_insert_order() {
        let ids = [
            "reporter=z,site=s",
            "reporter=a,site=s",
            "site=s", // report at an interior level, before child branches
            "reporter=a,site=q",
        ];
        let (mut rope, mut oracle) = pair();
        for id in ids {
            rope.update(&b(id), "<incaReport/>").unwrap();
            oracle.update(&b(id), "<incaReport/>").unwrap();
        }
        assert_eq!(*rope.document(), *oracle.document());
        let (mut rope2, mut oracle2) = pair();
        for id in ids.iter().rev() {
            rope2.update(&b(id), "<incaReport/>").unwrap();
            oracle2.update(&b(id), "<incaReport/>").unwrap();
        }
        assert_eq!(*rope2.document(), *rope.document());
        assert_eq!(*oracle2.document(), *oracle.document());
    }

    #[test]
    fn batch_bumps_generation_once_and_dedups_last_wins() {
        let (mut rope, mut oracle) = pair();
        let x = b("reporter=x,site=s");
        let y = b("reporter=y,site=s");
        let items: Vec<(&BranchId, &str)> = vec![
            (&x, "<incaReport>first</incaReport>"),
            (&y, "<incaReport>other</incaReport>"),
            (&x, "<incaReport>last</incaReport>"),
        ];
        rope.insert_batch(&items).unwrap();
        oracle.insert_batch(&items).unwrap();
        assert_eq!(rope.generation(), 1);
        assert_eq!(*rope.document(), *oracle.document());
        assert_eq!(rope.report_exact(&x).unwrap(), "<incaReport>last</incaReport>");
        rope.insert_batch(&[]).unwrap();
        assert_eq!(rope.generation(), 1, "empty batch must not bump");
    }

    #[test]
    fn reads_match_oracle() {
        let (mut rope, mut oracle) = pair();
        for id in ["reporter=a,resource=m1,site=s,vo=tg", "reporter=b,resource=m1,site=s,vo=tg",
                   "reporter=a,resource=m2,site=s,vo=tg", "reporter=c,resource=m9,site=t,vo=tg"] {
            let xml = format!("<incaReport>{id}</incaReport>");
            rope.update(&b(id), &xml).unwrap();
            oracle.update(&b(id), &xml).unwrap();
        }
        for q in ["vo=tg", "site=s,vo=tg", "resource=m1,site=s,vo=tg",
                  "reporter=a,resource=m2,site=s,vo=tg", "site=missing,vo=tg"] {
            let q = b(q);
            assert_eq!(rope.subtree(&q).unwrap(), oracle.subtree(&q).unwrap(), "subtree {q:?}");
            assert_eq!(rope.reports(Some(&q)).unwrap(), oracle.reports(Some(&q)).unwrap());
            assert_eq!(rope.report_exact(&q), oracle.report_exact(&q));
        }
        assert_eq!(rope.reports(None).unwrap(), oracle.reports(None).unwrap());
    }

    #[test]
    fn attribute_escaping_matches_oracle() {
        let (mut rope, mut oracle) = pair();
        let id = BranchId::new(vec![("reporter".to_string(), "a<b&\"c\"".to_string())]).unwrap();
        rope.update(&id, "<incaReport/>").unwrap();
        oracle.update(&id, "<incaReport/>").unwrap();
        assert_eq!(*rope.document(), *oracle.document());
        assert_eq!(rope.report_exact(&id), oracle.report_exact(&id));
    }

    #[test]
    fn document_is_cached_per_generation() {
        let (mut rope, _) = pair();
        rope.update(&b("reporter=r,site=s"), "<incaReport/>").unwrap();
        let first = rope.document();
        let second = rope.document();
        assert!(Arc::ptr_eq(&first, &second), "same generation must share one allocation");
        rope.update(&b("reporter=q,site=s"), "<incaReport/>").unwrap();
        let third = rope.document();
        assert!(!Arc::ptr_eq(&first, &third));
    }

    #[test]
    fn compaction_preserves_bytes_and_drops_garbage() {
        let (mut rope, mut oracle) = pair();
        // Replace the same branches repeatedly so most of the arena is
        // dead report bytes.
        for round in 0..20 {
            for id in ["reporter=a,site=s", "reporter=b,site=s", "site=s"] {
                let xml = format!("<incaReport>round {round} {id}</incaReport>");
                rope.update(&b(id), &xml).unwrap();
                oracle.update(&b(id), &xml).unwrap();
            }
        }
        assert!(rope.garbage_bytes() > 0, "replacements must leave garbage");
        let before = rope.document();
        let generation = rope.generation();
        rope.compact();
        assert_eq!(rope.garbage_bytes(), 0, "compaction reclaims all garbage");
        assert_eq!(rope.arena_bytes(), rope.arena.len());
        assert_eq!(rope.generation(), generation, "compaction is not a mutation");
        let after = rope.document();
        assert!(Arc::ptr_eq(&before, &after), "materialization cache survives compaction");
        // Force a re-render from the rewritten spans and check against
        // the splice oracle byte-for-byte.
        rope.update(&b("reporter=z,site=t"), "<incaReport/>").unwrap();
        oracle.update(&b("reporter=z,site=t"), "<incaReport/>").unwrap();
        assert_eq!(*rope.document(), *oracle.document());
        // Reads still resolve through the rewritten spans.
        assert_eq!(rope.subtree(&b("site=s")).unwrap(), oracle.subtree(&b("site=s")).unwrap());
        assert_eq!(rope.reports(None).unwrap(), oracle.reports(None).unwrap());
    }

    #[test]
    fn maybe_compact_respects_thresholds() {
        let mut rope = RopeCache::new();
        let id = b("reporter=r,site=s");
        rope.update(&id, "<incaReport>tiny</incaReport>").unwrap();
        rope.update(&id, "<incaReport>tiny2</incaReport>").unwrap();
        assert!(rope.garbage_bytes() > 0);
        assert!(!rope.maybe_compact(), "arenas under the floor are left alone");
        // Grow past the floor with one big report, then replace it so
        // garbage dominates.
        let big = format!("<incaReport>{}</incaReport>", "x".repeat(COMPACT_MIN_ARENA_BYTES));
        rope.update(&id, &big).unwrap();
        rope.update(&id, "<incaReport>small again</incaReport>").unwrap();
        assert!(rope.arena_bytes() >= COMPACT_MIN_ARENA_BYTES);
        assert!(
            rope.garbage_bytes() as f64 >= COMPACT_GARBAGE_RATIO * rope.arena_bytes() as f64
        );
        assert!(rope.maybe_compact(), "past both thresholds a rebuild must run");
        assert_eq!(rope.garbage_bytes(), 0);
        assert!(rope.arena_bytes() < COMPACT_MIN_ARENA_BYTES, "arena shrank to live bytes");
    }

    #[test]
    fn from_document_roundtrips() {
        let (mut rope, _) = pair();
        for id in ["reporter=a,site=s,vo=tg", "reporter=b,site=t,vo=tg", "site=s,vo=tg"] {
            rope.update(&b(id), &format!("<incaReport>{id}</incaReport>")).unwrap();
        }
        let doc = rope.document();
        let restored = RopeCache::from_document((*doc).clone()).unwrap();
        assert_eq!(*restored.document(), *doc);
        assert_eq!(restored.report_count(), rope.report_count());
        assert_eq!(restored.size_bytes(), rope.size_bytes());
        assert_eq!(restored.generation(), 0);
        assert!(RopeCache::from_document("<wrong/>".to_string()).is_err());
    }
}
