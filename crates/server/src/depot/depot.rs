//! The depot proper: receive → unpack → cache → archive, timed.
//!
//! §5.2 defines *response time* as "the time that the centralized
//! controller must wait while the depot receives and processes the
//! envelope" and breaks it into "(1) receiving the report and unpacking
//! the SOAP envelope … and (2) processing the cache to find the
//! appropriate location for the report". [`Depot::receive`] reproduces
//! exactly that decomposition and returns both components in
//! [`DepotTiming`] — the data behind Table 4 and Figure 9.

use std::borrow::Cow;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use inca_obs::metrics::{Counter, Gauge, Histogram, BATCH_SIZE_BOUNDS, DEFAULT_LATENCY_BOUNDS};
use inca_obs::trace::Span;
use inca_obs::{Obs, Severity, TraceContext};
use inca_report::{BranchId, Report, Timestamp};
use inca_wire::envelope::EnvelopeView;
#[cfg(test)]
use inca_wire::envelope::Envelope;
use inca_wire::message::WireError;

use crate::depot::archive::{ArchiveRule, ArchiveStore};
use crate::depot::cache::{CacheError, XmlCache};
use crate::depot::memo::{MemoValue, QueryMemo};
use crate::depot::rope::RopeCache;
use crate::stats::ResponseStats;

/// Errors from depot processing.
#[derive(Debug)]
pub enum DepotError {
    /// The envelope could not be unpacked or its report was invalid.
    Envelope(WireError),
    /// The cache update failed (corruption).
    Cache(CacheError),
}

impl fmt::Display for DepotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DepotError::Envelope(e) => write!(f, "envelope error: {e}"),
            DepotError::Cache(e) => write!(f, "cache error: {e}"),
        }
    }
}

impl std::error::Error for DepotError {}

impl From<WireError> for DepotError {
    fn from(e: WireError) -> Self {
        DepotError::Envelope(e)
    }
}

impl From<CacheError> for DepotError {
    fn from(e: CacheError) -> Self {
        DepotError::Cache(e)
    }
}

/// The timing decomposition of one received envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepotTiming {
    /// Unpacking the envelope (grows with report size — Figure 9's
    /// gap between the two lines).
    pub unpack: Duration,
    /// Locating and splicing into the cache (grows with cache size —
    /// Figure 9's lower line).
    pub insert: Duration,
    /// Feeding matching archive rules.
    pub archive: Duration,
    /// Size of the unpacked report in bytes.
    pub report_size: usize,
}

impl DepotTiming {
    /// Unpack + insert: the paper's "response time" (archival happens
    /// after the controller has been released).
    pub fn response(&self) -> Duration {
        self.unpack + self.insert
    }
}

/// Which cache representation a depot runs on.
///
/// The splice cache is the paper's measured design and stays the
/// byte-identity oracle; the rope is the O(report) write path beside it
/// (see [`RopeCache`]). Both produce the same canonical document, so a
/// depot can be persisted under one backend and restored under the
/// other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CacheBackend {
    /// Contiguous-string splice cache ([`XmlCache`], §5.2.2 semantics).
    #[default]
    Splice,
    /// Arena-backed rope with lazy materialization ([`RopeCache`]).
    Rope,
}

/// The depot's cache storage: one of the two backends.
#[derive(Debug)]
enum CacheStore {
    Splice(XmlCache),
    Rope(RopeCache),
}

impl CacheStore {
    fn update(&mut self, branch: &BranchId, xml: &str) -> Result<(), CacheError> {
        match self {
            CacheStore::Splice(c) => c.update(branch, xml),
            CacheStore::Rope(c) => c.update(branch, xml),
        }
    }

    fn insert_batch(&mut self, items: &[(&BranchId, &str)]) -> Result<(), CacheError> {
        match self {
            CacheStore::Splice(c) => c.insert_batch(items),
            CacheStore::Rope(c) => c.insert_batch(items),
        }
    }

    fn generation(&self) -> u64 {
        match self {
            CacheStore::Splice(c) => c.generation(),
            CacheStore::Rope(c) => c.generation(),
        }
    }

    fn size_bytes(&self) -> usize {
        match self {
            CacheStore::Splice(c) => c.size_bytes(),
            CacheStore::Rope(c) => c.size_bytes(),
        }
    }

    fn arena_bytes(&self) -> usize {
        match self {
            // The splice cache *is* its document: no arena, no garbage.
            CacheStore::Splice(c) => c.size_bytes(),
            CacheStore::Rope(c) => c.arena_bytes(),
        }
    }

    fn maybe_compact(&mut self) -> bool {
        match self {
            // The splice cache carries no garbage to reclaim.
            CacheStore::Splice(_) => false,
            CacheStore::Rope(c) => c.maybe_compact(),
        }
    }

    fn report_count(&self) -> usize {
        match self {
            CacheStore::Splice(c) => c.report_count(),
            CacheStore::Rope(c) => c.report_count(),
        }
    }

    fn subtree(&self, query: &BranchId) -> Result<Option<String>, CacheError> {
        match self {
            CacheStore::Splice(c) => c.subtree(query),
            CacheStore::Rope(c) => c.subtree(query),
        }
    }

    fn reports(&self, query: Option<&BranchId>) -> Result<Vec<(BranchId, String)>, CacheError> {
        match self {
            CacheStore::Splice(c) => c.reports(query),
            CacheStore::Rope(c) => c.reports(query),
        }
    }

    fn report_exact(&self, branch: &BranchId) -> Option<&str> {
        match self {
            CacheStore::Splice(c) => c.report_exact(branch),
            CacheStore::Rope(c) => c.report_exact(branch),
        }
    }

    fn document(&self) -> Cow<'_, str> {
        match self {
            CacheStore::Splice(c) => Cow::Borrowed(c.document()),
            CacheStore::Rope(c) => Cow::Owned((*c.document()).clone()),
        }
    }
}

/// Backend-agnostic read view of a depot's cache.
///
/// What [`Depot::cache`] hands to the querying interface: the common
/// read surface of both backends. `document()` borrows from the splice
/// cache and materializes (generation-cached inside [`RopeCache`]) on
/// the rope.
#[derive(Debug, Clone, Copy)]
pub enum CacheRef<'a> {
    /// A splice-backed depot's cache.
    Splice(&'a XmlCache),
    /// A rope-backed depot's cache.
    Rope(&'a RopeCache),
}

impl<'a> CacheRef<'a> {
    /// Which backend this view reads from.
    pub fn backend(&self) -> CacheBackend {
        match self {
            CacheRef::Splice(_) => CacheBackend::Splice,
            CacheRef::Rope(_) => CacheBackend::Rope,
        }
    }

    /// The full cache document.
    pub fn document(&self) -> Cow<'a, str> {
        match self {
            CacheRef::Splice(c) => Cow::Borrowed(c.document()),
            CacheRef::Rope(c) => Cow::Owned((*c.document()).clone()),
        }
    }

    /// Document size in bytes (O(1) on both backends).
    pub fn size_bytes(&self) -> usize {
        match self {
            CacheRef::Splice(c) => c.size_bytes(),
            CacheRef::Rope(c) => c.size_bytes(),
        }
    }

    /// Number of cached reports (O(1) on both backends).
    pub fn report_count(&self) -> usize {
        match self {
            CacheRef::Splice(c) => c.report_count(),
            CacheRef::Rope(c) => c.report_count(),
        }
    }

    /// Mutation counter — the memo/materialization cache key.
    pub fn generation(&self) -> u64 {
        match self {
            CacheRef::Splice(c) => c.generation(),
            CacheRef::Rope(c) => c.generation(),
        }
    }
}

/// The depot: cache, archive, statistics, and their instrumentation.
#[derive(Debug)]
pub struct Depot {
    cache: CacheStore,
    archive: ArchiveStore,
    stats: ResponseStats,
    obs: Obs,
    /// Envelope-unpack latency (`inca_depot_unpack_seconds`).
    unpack_hist: Arc<Histogram>,
    /// Cache-splice latency (`inca_depot_insert_seconds`) — Figure 9's
    /// lower line.
    insert_hist: Arc<Histogram>,
    /// Cache size in bytes (`inca_depot_cache_bytes`).
    cache_bytes: Arc<Gauge>,
    /// Cached report count (`inca_depot_cache_reports`).
    cache_reports: Arc<Gauge>,
    /// Backing-store bytes including rope garbage
    /// (`inca_depot_arena_bytes`); equals `inca_depot_cache_bytes` on
    /// the splice backend.
    arena_bytes: Arc<Gauge>,
    /// Rope-arena compactions run (`inca_depot_compactions_total`).
    compactions: Arc<Counter>,
    /// Reports per batched ingest (`inca_depot_batch_size`).
    batch_size_hist: Arc<Histogram>,
    /// Whole-batch cache-splice latency
    /// (`inca_depot_batch_insert_seconds`); the amortized per-report
    /// share additionally lands in `inca_depot_insert_seconds`.
    batch_insert_hist: Arc<Histogram>,
    /// Recent query results, stamped with the cache generation that
    /// produced them (see [`QueryMemo`]). Interior mutability keeps it
    /// usable through the controller's shared read guard.
    memo: QueryMemo,
}

/// Distinct query keys the depot memoizes before evicting — sized for
/// the status pages' working set, small enough that a full probe is a
/// handful of string compares.
const QUERY_MEMO_CAPACITY: usize = 32;

impl Depot {
    /// An empty depot observing into [`Obs::global`].
    pub fn new() -> Depot {
        Depot::with_obs(Obs::global())
    }

    /// An empty depot on the given cache backend, observing into
    /// [`Obs::global`].
    pub fn with_backend(backend: CacheBackend) -> Depot {
        Depot::with_obs_backend(Obs::global(), backend)
    }

    /// An empty depot whose spans and metrics go to `obs` (isolated
    /// registries for tests, embedded setups with their own handle).
    pub fn with_obs(obs: Obs) -> Depot {
        Depot::with_obs_backend(obs, CacheBackend::default())
    }

    /// An empty depot with an explicit observability handle and cache
    /// backend.
    pub fn with_obs_backend(obs: Obs, backend: CacheBackend) -> Depot {
        let unpack_hist = obs.metrics().histogram(
            "inca_depot_unpack_seconds",
            "Time unpacking one received envelope.",
            &DEFAULT_LATENCY_BOUNDS,
        );
        let insert_hist = obs.metrics().histogram(
            "inca_depot_insert_seconds",
            "Time splicing one report into the cache document.",
            &DEFAULT_LATENCY_BOUNDS,
        );
        let cache_bytes =
            obs.metrics().gauge("inca_depot_cache_bytes", "Cache document size in bytes.");
        let cache_reports =
            obs.metrics().gauge("inca_depot_cache_reports", "Reports held in the cache.");
        let arena_bytes = obs.metrics().gauge(
            "inca_depot_arena_bytes",
            "Cache backing-store bytes including rope-arena garbage.",
        );
        let compactions = obs.metrics().counter(
            "inca_depot_compactions_total",
            "Rope-arena compaction rebuilds triggered by the garbage-ratio threshold.",
        );
        let batch_size_hist = obs.metrics().histogram(
            "inca_depot_batch_size",
            "Reports accepted per batched ingest.",
            &BATCH_SIZE_BOUNDS,
        );
        let batch_insert_hist = obs.metrics().histogram(
            "inca_depot_batch_insert_seconds",
            "Time splicing one whole batch into the cache document.",
            &DEFAULT_LATENCY_BOUNDS,
        );
        Depot {
            cache: match backend {
                CacheBackend::Splice => CacheStore::Splice(XmlCache::new()),
                CacheBackend::Rope => CacheStore::Rope(RopeCache::new()),
            },
            archive: ArchiveStore::with_obs(&obs),
            stats: ResponseStats::new(),
            obs,
            unpack_hist,
            insert_hist,
            cache_bytes,
            cache_reports,
            arena_bytes,
            compactions,
            batch_size_hist,
            batch_insert_hist,
            memo: QueryMemo::new(QUERY_MEMO_CAPACITY),
        }
    }

    /// The observability handle this depot reports into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Uploads an archival policy rule.
    pub fn add_archive_rule(&mut self, rule: ArchiveRule) {
        self.archive.add_rule(rule);
    }

    /// Receives one encoded envelope at (virtual) time `now`,
    /// returning the measured timing decomposition.
    ///
    /// Binary frames take the zero-copy path: the report bytes are
    /// borrowed straight out of the payload (structurally skimmed, not
    /// parsed) and spliced into the cache; XML materialization waits
    /// until an archive rule or query actually needs the report tree.
    pub fn receive(&mut self, envelope_bytes: &[u8], now: Timestamp) -> Result<DepotTiming, DepotError> {
        let span = self.obs.span("depot.insert").field("bytes", envelope_bytes.len());
        let t0 = Instant::now();
        let envelope = match EnvelopeView::decode(envelope_bytes) {
            Ok(e) => e,
            Err(e) => {
                span.severity(Severity::Warn).field("error", &e).finish();
                return Err(e.into());
            }
        };
        // Join the report's trace if the envelope carried one; the
        // archive leg re-parents on this insert span.
        let mut span = span.field("branch", &envelope.address);
        if let Some(ctx) = envelope.trace {
            span = span.trace_ctx(ctx);
        }
        let archive_ctx = span.child_ctx();
        let trace_id = envelope.trace.map_or(0, |ctx| ctx.trace_id);
        let t1 = Instant::now();
        if let Err(e) = self.cache.update(&envelope.address, &envelope.report_xml) {
            span.severity(Severity::Error).field("error", &e).finish();
            return Err(e.into());
        }
        let t2 = Instant::now();
        // Archival: only if some rule matches does the report get
        // re-parsed for value extraction.
        if self
            .archive
            .rules()
            .iter()
            .any(|r| envelope.address.matches_suffix(&r.query))
        {
            let mut archive_span =
                self.obs.span("depot.archive.write").field("branch", &envelope.address);
            if let Some(ctx) = archive_ctx {
                archive_span = archive_span.trace_ctx(ctx);
            }
            if let Ok(report) = Report::parse(&envelope.report_xml) {
                let ingested = self.archive.ingest(&envelope.address, &report, now);
                archive_span.field("series", ingested).finish();
            }
        }
        let t3 = Instant::now();
        let timing = DepotTiming {
            unpack: t1 - t0,
            insert: t2 - t1,
            archive: t3 - t2,
            report_size: envelope.report_xml.len(),
        };
        self.stats
            .record(timing.report_size, timing.response().as_secs_f64());
        // Exemplars tie the aggregate latency back to one concrete
        // trace (a no-op when the envelope carried no context).
        self.unpack_hist.observe_duration_with_exemplar(timing.unpack, trace_id);
        self.insert_hist.observe_duration_with_exemplar(timing.insert, trace_id);
        if self.cache.maybe_compact() {
            self.compactions.inc();
        }
        self.cache_bytes.set(self.cache.size_bytes() as f64);
        self.cache_reports.set(self.cache.report_count() as f64);
        self.arena_bytes.set(self.cache.arena_bytes() as f64);
        span.field("size", timing.report_size)
            .field("cache_bytes", self.cache.size_bytes())
            .finish();
        Ok(timing)
    }

    /// Receives a burst of encoded envelopes at (virtual) time `now`,
    /// returning one timing/error per envelope in input order.
    ///
    /// Per-report behaviour — validation, trace lineage (each accepted
    /// report still gets its own `depot.insert` span joined on the
    /// envelope's trace), archival, and response statistics — matches
    /// N calls to [`Depot::receive`]. The difference is the splice:
    /// the whole batch goes through [`XmlCache::insert_batch`], which
    /// streams the cache document **once**, so the per-tick cost drops
    /// from O(batch × cache) to O(batch + cache). Each report's
    /// [`DepotTiming::insert`] is its amortized share of that single
    /// pass. A decode failure rejects only that envelope; a cache
    /// failure (corruption) rejects the batch without mutating.
    pub fn receive_batch(
        &mut self,
        envelopes: &[Vec<u8>],
        now: Timestamp,
    ) -> Vec<Result<DepotTiming, DepotError>> {
        struct Pending<'a> {
            index: usize,
            envelope: EnvelopeView<'a>,
            unpack: Duration,
            span: Span,
            archive_ctx: Option<TraceContext>,
            trace_id: u64,
        }
        let total_bytes: usize = envelopes.iter().map(Vec::len).sum();
        let batch_span = self
            .obs
            .span("depot.insert_batch")
            .field("envelopes", envelopes.len())
            .field("bytes", total_bytes);
        let mut results: Vec<Option<Result<DepotTiming, DepotError>>> =
            (0..envelopes.len()).map(|_| None).collect();
        let mut accepted: Vec<Pending> = Vec::with_capacity(envelopes.len());
        for (index, bytes) in envelopes.iter().enumerate() {
            let span = self.obs.span("depot.insert").field("bytes", bytes.len());
            let t0 = Instant::now();
            match EnvelopeView::decode(bytes) {
                Ok(envelope) => {
                    let unpack = t0.elapsed();
                    let mut span =
                        span.field("branch", &envelope.address).field("batched", true);
                    if let Some(ctx) = envelope.trace {
                        span = span.trace_ctx(ctx);
                    }
                    let archive_ctx = span.child_ctx();
                    let trace_id = envelope.trace.map_or(0, |ctx| ctx.trace_id);
                    accepted.push(Pending { index, envelope, unpack, span, archive_ctx, trace_id });
                }
                Err(e) => {
                    span.severity(Severity::Warn).field("error", &e).finish();
                    results[index] = Some(Err(e.into()));
                }
            }
        }
        // One pass splices every accepted report (a stream of the
        // splice document, or N O(report) rope appends).
        let items: Vec<(&BranchId, &str)> = accepted
            .iter()
            .map(|p| (&p.envelope.address, p.envelope.report_xml.as_ref()))
            .collect();
        let t1 = Instant::now();
        let insert_result = self.cache.insert_batch(&items);
        let insert_total = t1.elapsed();
        drop(items);
        if let Err(e) = insert_result {
            batch_span.severity(Severity::Error).field("error", &e).finish();
            for pending in accepted {
                pending.span.severity(Severity::Error).field("error", &e).finish();
                results[pending.index] = Some(Err(DepotError::Cache(e.clone())));
            }
            return results.into_iter().map(|r| r.expect("every envelope resolved")).collect();
        }
        let accepted_count = accepted.len();
        let amortized = insert_total
            .checked_div(accepted_count.max(1) as u32)
            .unwrap_or(Duration::ZERO);
        // Per-report archival and accounting, as the sequential path.
        for pending in accepted {
            let Pending { index, envelope, unpack, span, archive_ctx, trace_id } = pending;
            let t2 = Instant::now();
            if self
                .archive
                .rules()
                .iter()
                .any(|r| envelope.address.matches_suffix(&r.query))
            {
                let mut archive_span =
                    self.obs.span("depot.archive.write").field("branch", &envelope.address);
                if let Some(ctx) = archive_ctx {
                    archive_span = archive_span.trace_ctx(ctx);
                }
                if let Ok(report) = Report::parse(&envelope.report_xml) {
                    let ingested = self.archive.ingest(&envelope.address, &report, now);
                    archive_span.field("series", ingested).finish();
                }
            }
            let timing = DepotTiming {
                unpack,
                insert: amortized,
                archive: t2.elapsed(),
                report_size: envelope.report_xml.len(),
            };
            self.stats
                .record(timing.report_size, timing.response().as_secs_f64());
            self.unpack_hist.observe_duration_with_exemplar(timing.unpack, trace_id);
            self.insert_hist.observe_duration_with_exemplar(timing.insert, trace_id);
            span.field("size", timing.report_size).finish();
            results[index] = Some(Ok(timing));
        }
        self.batch_size_hist.observe(accepted_count as f64);
        self.batch_insert_hist.observe_duration(insert_total);
        if self.cache.maybe_compact() {
            self.compactions.inc();
        }
        self.cache_bytes.set(self.cache.size_bytes() as f64);
        self.cache_reports.set(self.cache.report_count() as f64);
        self.arena_bytes.set(self.cache.arena_bytes() as f64);
        batch_span
            .field("accepted", accepted_count)
            .field("cache_bytes", self.cache.size_bytes())
            .finish();
        results.into_iter().map(|r| r.expect("every envelope resolved")).collect()
    }

    /// The cache (read access for the querying interface), as a
    /// backend-agnostic view.
    pub fn cache(&self) -> CacheRef<'_> {
        match &self.cache {
            CacheStore::Splice(c) => CacheRef::Splice(c),
            CacheStore::Rope(c) => CacheRef::Rope(c),
        }
    }

    /// Which cache backend this depot runs on.
    pub fn cache_backend(&self) -> CacheBackend {
        self.cache().backend()
    }

    /// [`XmlCache::subtree`] through the query memo. The returned flag
    /// is `true` on a memo hit (the cache was not touched).
    pub fn query_subtree(&self, query: &BranchId) -> Result<(Option<String>, bool), CacheError> {
        let generation = self.cache.generation();
        let key = format!("subtree:{query}");
        if let Some(MemoValue::Subtree(v)) = self.memo.get(generation, &key) {
            return Ok((v, true));
        }
        let v = self.cache.subtree(query)?;
        self.memo.put(generation, key, MemoValue::Subtree(v.clone()));
        Ok((v, false))
    }

    /// [`XmlCache::reports`] through the query memo. The returned flag
    /// is `true` on a memo hit.
    pub fn query_reports(
        &self,
        query: Option<&BranchId>,
    ) -> Result<(Vec<(BranchId, String)>, bool), CacheError> {
        let generation = self.cache.generation();
        let key = match query {
            Some(q) => format!("reports:{q}"),
            None => "reports:*".to_string(),
        };
        if let Some(MemoValue::Reports(v)) = self.memo.get(generation, &key) {
            return Ok((v, true));
        }
        let v = self.cache.reports(query)?;
        self.memo.put(generation, key, MemoValue::Reports(v.clone()));
        Ok((v, false))
    }

    /// [`XmlCache::report_exact`] through the query memo. The returned
    /// flag is `true` on a memo hit.
    pub fn query_report_exact(&self, branch: &BranchId) -> (Option<String>, bool) {
        let generation = self.cache.generation();
        let key = format!("exact:{branch}");
        if let Some(MemoValue::Exact(v)) = self.memo.get(generation, &key) {
            return (v, true);
        }
        let v = self.cache.report_exact(branch).map(str::to_string);
        self.memo.put(generation, key, MemoValue::Exact(v.clone()));
        (v, false)
    }

    /// The archive store (read access for the querying interface).
    pub fn archive(&self) -> &ArchiveStore {
        &self.archive
    }

    /// Mutable archive access (consumer-side series recording).
    pub fn archive_mut(&mut self) -> &mut ArchiveStore {
        &mut self.archive
    }

    /// Accumulated response statistics.
    pub fn stats(&self) -> &ResponseStats {
        &self.stats
    }

    /// Persists cache and archives to a directory (`cache.xml` +
    /// `archives.txt`) — the paper's Persistent Data Storage
    /// requirement. Response statistics are runtime-only and not
    /// persisted.
    pub fn save_to(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("cache.xml"), self.cache.document().as_bytes())?;
        std::fs::write(dir.join("archives.txt"), self.archive.dump())?;
        Ok(())
    }

    /// Restores a depot persisted with [`Depot::save_to`], on the
    /// default (splice) backend.
    pub fn load_from(dir: &std::path::Path) -> std::io::Result<Depot> {
        Depot::load_from_backend(dir, CacheBackend::default())
    }

    /// Restores a depot persisted with [`Depot::save_to`] onto an
    /// explicit cache backend. Both backends produce the same canonical
    /// document, so persisted state moves freely between them.
    pub fn load_from_backend(
        dir: &std::path::Path,
        backend: CacheBackend,
    ) -> std::io::Result<Depot> {
        let cache_doc = std::fs::read_to_string(dir.join("cache.xml"))?;
        let archive_text = std::fs::read_to_string(dir.join("archives.txt"))?;
        let invalid =
            |e: String| std::io::Error::new(std::io::ErrorKind::InvalidData, e);
        let cache = match backend {
            CacheBackend::Splice => CacheStore::Splice(
                XmlCache::from_document(cache_doc).map_err(|e| invalid(e.to_string()))?,
            ),
            CacheBackend::Rope => CacheStore::Rope(
                RopeCache::from_document(cache_doc).map_err(|e| invalid(e.to_string()))?,
            ),
        };
        let archive = ArchiveStore::restore(&archive_text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        let mut depot = Depot::new();
        depot.cache_bytes.set(cache.size_bytes() as f64);
        depot.cache_reports.set(cache.report_count() as f64);
        depot.arena_bytes.set(cache.arena_bytes() as f64);
        depot.cache = cache;
        depot.archive = archive;
        Ok(depot)
    }
}

impl Default for Depot {
    fn default() -> Depot {
        Depot::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inca_report::{BranchId, ReportBuilder};
    use inca_rrd::{ArchivePolicy, ConsolidationFn};
    use inca_wire::envelope::EnvelopeMode;

    fn envelope_bytes(branch: &str, value: &str, mode: EnvelopeMode) -> Vec<u8> {
        let report = ReportBuilder::new("r", "1.0")
            .gmt(Timestamp::from_secs(1_000))
            .body_value("v", value)
            .success()
            .unwrap();
        Envelope::new(branch.parse().unwrap(), report.to_xml()).encode(mode)
    }

    #[test]
    fn receive_caches_report() {
        let mut depot = Depot::new();
        let t = Timestamp::from_secs(1_000);
        let timing = depot
            .receive(&envelope_bytes("reporter=r,resource=m,vo=tg", "42", EnvelopeMode::Body), t)
            .unwrap();
        assert_eq!(depot.cache().report_count(), 1);
        assert!(timing.report_size > 0);
        assert!(timing.response() >= timing.insert);
        assert_eq!(depot.stats().report_count(), 1);
    }

    #[test]
    fn receive_both_envelope_modes() {
        let mut depot = Depot::new();
        let t = Timestamp::from_secs(1_000);
        depot
            .receive(&envelope_bytes("reporter=a,vo=tg", "1", EnvelopeMode::Body), t)
            .unwrap();
        depot
            .receive(&envelope_bytes("reporter=b,vo=tg", "2", EnvelopeMode::Attachment), t)
            .unwrap();
        assert_eq!(depot.cache().report_count(), 2);
    }

    #[test]
    fn garbage_envelope_rejected() {
        let mut depot = Depot::new();
        let err = depot.receive(b"garbage", Timestamp::from_secs(0)).unwrap_err();
        assert!(matches!(err, DepotError::Envelope(_)));
        assert_eq!(depot.cache().report_count(), 0);
    }

    #[test]
    fn repeated_updates_replace() {
        let mut depot = Depot::new();
        for i in 0..10u64 {
            depot
                .receive(
                    &envelope_bytes("reporter=r,resource=m,vo=tg", &i.to_string(), EnvelopeMode::Body),
                    Timestamp::from_secs(1_000 + i),
                )
                .unwrap();
        }
        assert_eq!(depot.cache().report_count(), 1);
        assert_eq!(depot.stats().report_count(), 10);
    }

    #[test]
    fn archive_rules_fed_from_reports() {
        let mut depot = Depot::new();
        depot.add_archive_rule(ArchiveRule {
            name: "v".into(),
            query: "vo=tg".parse().unwrap(),
            path: "v".parse().unwrap(),
            policy: ArchivePolicy::every("p", 86_400),
            period_secs: 600,
        });
        let t0 = Timestamp::from_secs(600_000);
        for i in 1..=6u64 {
            let report = ReportBuilder::new("r", "1.0")
                .gmt(t0 + i * 600)
                .body_value("v", (i * 10).to_string())
                .success()
                .unwrap();
            let env = Envelope::new(
                "reporter=r,resource=m,vo=tg".parse::<BranchId>().unwrap(),
                report.to_xml(),
            );
            depot.receive(&env.encode(EnvelopeMode::Body), t0 + i * 600).unwrap();
        }
        let branch: BranchId = "reporter=r,resource=m,vo=tg".parse().unwrap();
        let f = depot
            .archive()
            .fetch_rule_series("v", &branch, ConsolidationFn::Average, t0, t0 + 4_000)
            .unwrap();
        assert!(f.known_points().count() >= 4);
    }

    #[test]
    fn ingest_triggered_compaction_resets_arena_gauge() {
        use crate::depot::rope::COMPACT_MIN_ARENA_BYTES;
        let obs = Obs::new();
        let mut depot = Depot::with_obs_backend(obs.clone(), CacheBackend::Rope);
        let t = Timestamp::from_secs(1_000);
        // Replace one branch with a big report, then repeatedly with
        // small ones: the big corpse dominates the arena until the
        // ratio threshold trips a compaction mid-ingest.
        let branch = "reporter=r,resource=m,vo=tg";
        let big = "x".repeat(2 * COMPACT_MIN_ARENA_BYTES);
        depot.receive(&envelope_bytes(branch, &big, EnvelopeMode::Body), t).unwrap();
        depot.receive(&envelope_bytes(branch, "small", EnvelopeMode::Body), t).unwrap();
        assert_eq!(
            obs.metrics().counter_value("inca_depot_compactions_total", &[]),
            Some(1),
            "garbage past the ratio threshold must trigger exactly one rebuild"
        );
        let gauge = obs.metrics().gauge_value("inca_depot_arena_bytes", &[]).unwrap();
        assert!(
            (gauge as usize) < COMPACT_MIN_ARENA_BYTES,
            "arena gauge must reset to live bytes after compaction, got {gauge}"
        );
        // Byte-identity: the document equals a fresh splice build of
        // the same content.
        let doc = depot.cache().document().to_string();
        let mut oracle = Depot::with_obs_backend(Obs::new(), CacheBackend::Splice);
        oracle.receive(&envelope_bytes(branch, "small", EnvelopeMode::Body), t).unwrap();
        assert_eq!(doc, oracle.cache().document().to_string());
    }

    #[test]
    fn receive_batch_matches_sequential_receives() {
        let t = Timestamp::from_secs(1_000);
        let envelopes: Vec<Vec<u8>> = (0..25)
            .map(|i| {
                envelope_bytes(
                    &format!("reporter=r{},resource=m{},vo=tg", i % 20, i % 4),
                    &i.to_string(),
                    if i % 2 == 0 { EnvelopeMode::Body } else { EnvelopeMode::Attachment },
                )
            })
            .collect();
        let mut batched = Depot::new();
        let results = batched.receive_batch(&envelopes, t);
        assert_eq!(results.len(), 25);
        for r in &results {
            let timing = r.as_ref().unwrap();
            assert!(timing.report_size > 0);
        }
        let mut sequential = Depot::new();
        for env in &envelopes {
            sequential.receive(env, t).unwrap();
        }
        assert_eq!(batched.cache().document(), sequential.cache().document());
        assert_eq!(batched.stats().report_count(), 25);
    }

    #[test]
    fn receive_batch_rejects_only_bad_envelopes() {
        let t = Timestamp::from_secs(1_000);
        let envelopes = vec![
            envelope_bytes("reporter=a,vo=tg", "1", EnvelopeMode::Body),
            b"garbage".to_vec(),
            envelope_bytes("reporter=b,vo=tg", "2", EnvelopeMode::Body),
        ];
        let mut depot = Depot::new();
        let results = depot.receive_batch(&envelopes, t);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(DepotError::Envelope(_))));
        assert!(results[2].is_ok());
        assert_eq!(depot.cache().report_count(), 2);
        assert_eq!(depot.stats().report_count(), 2, "rejected envelopes are not counted");
    }

    #[test]
    fn receive_batch_feeds_archive_rules_and_batch_metrics() {
        let obs = inca_obs::Obs::new();
        let mut depot = Depot::with_obs(obs.clone());
        depot.add_archive_rule(ArchiveRule {
            name: "v".into(),
            query: "vo=tg".parse().unwrap(),
            path: "v".parse().unwrap(),
            policy: ArchivePolicy::every("p", 86_400),
            period_secs: 600,
        });
        let t0 = Timestamp::from_secs(600_000);
        for i in 1..=3u64 {
            let envelopes: Vec<Vec<u8>> = (0..2)
                .map(|j| {
                    let report = ReportBuilder::new("r", "1.0")
                        .gmt(t0 + i * 600)
                        .body_value("v", (i * 10 + j).to_string())
                        .success()
                        .unwrap();
                    Envelope::new(
                        format!("reporter=r{j},resource=m,vo=tg").parse::<BranchId>().unwrap(),
                        report.to_xml(),
                    )
                    .encode(EnvelopeMode::Body)
                })
                .collect();
            for r in depot.receive_batch(&envelopes, t0 + i * 600) {
                r.unwrap();
            }
        }
        let branch: BranchId = "reporter=r0,resource=m,vo=tg".parse().unwrap();
        let series = depot
            .archive()
            .fetch_rule_series("v", &branch, ConsolidationFn::Average, t0, t0 + 2_000)
            .unwrap();
        assert!(series.known_points().count() >= 2, "batched reports must still archive");
        // The batch histograms saw three batches of two.
        let size_hist = obs.metrics().histogram_of("inca_depot_batch_size", &[]).unwrap();
        assert_eq!(size_hist.count(), 3);
        let batch_hist =
            obs.metrics().histogram_of("inca_depot_batch_insert_seconds", &[]).unwrap();
        assert_eq!(batch_hist.count(), 3);
    }

    #[test]
    fn save_and_load_roundtrip() {
        let mut depot = Depot::new();
        depot.add_archive_rule(ArchiveRule {
            name: "v".into(),
            query: "vo=tg".parse().unwrap(),
            path: "v".parse().unwrap(),
            policy: ArchivePolicy::every("p", 86_400),
            period_secs: 600,
        });
        let t0 = Timestamp::from_secs(600_000);
        for i in 1..=6u64 {
            let report = ReportBuilder::new("r", "1.0")
                .gmt(t0 + i * 600)
                .body_value("v", (i * 10).to_string())
                .success()
                .unwrap();
            let env = Envelope::new(
                "reporter=r,resource=m,vo=tg".parse::<BranchId>().unwrap(),
                report.to_xml(),
            );
            depot.receive(&env.encode(EnvelopeMode::Body), t0 + i * 600).unwrap();
        }
        depot.archive_mut().record(
            "availability:Grid:x",
            &ArchivePolicy::every("p2", 3_600),
            600,
            t0 + 600,
            99.0,
        );
        let dir = std::env::temp_dir().join(format!("inca-depot-test-{}", std::process::id()));
        depot.save_to(&dir).unwrap();
        let loaded = Depot::load_from(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        // Cache identical.
        assert_eq!(loaded.cache().document(), depot.cache().document());
        // Archived series identical.
        let branch: BranchId = "reporter=r,resource=m,vo=tg".parse().unwrap();
        let range = (t0, t0 + 4_000);
        let a = loaded
            .archive()
            .fetch_rule_series("v", &branch, ConsolidationFn::Average, range.0, range.1)
            .unwrap();
        let b = depot
            .archive()
            .fetch_rule_series("v", &branch, ConsolidationFn::Average, range.0, range.1)
            .unwrap();
        assert!(a.same_series(&b), "{a:?} != {b:?}");
        assert!(loaded
            .archive()
            .fetch_series("availability:Grid:x", ConsolidationFn::Average, range.0, range.1)
            .is_some());
        // Rules survive: a new matching report still archives.
        let mut loaded = loaded;
        let report = ReportBuilder::new("r", "1.0")
            .gmt(t0 + 7 * 600)
            .body_value("v", "70")
            .success()
            .unwrap();
        let env = Envelope::new(branch.clone(), report.to_xml());
        loaded.receive(&env.encode(EnvelopeMode::Body), t0 + 7 * 600).unwrap();
        let f = loaded
            .archive()
            .fetch_rule_series("v", &branch, ConsolidationFn::Average, t0, t0 + 8 * 600)
            .unwrap();
        assert!(f.known_points().any(|(_, v)| v == 70.0));
    }

    #[test]
    fn load_rejects_corrupt_state() {
        let dir = std::env::temp_dir().join(format!("inca-depot-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("cache.xml"), "<notACache/>").unwrap();
        std::fs::write(dir.join("archives.txt"), "archive-store v1\n").unwrap();
        assert!(Depot::load_from(&dir).is_err());
        std::fs::write(dir.join("cache.xml"), "<incaCache></incaCache>").unwrap();
        std::fs::write(dir.join("archives.txt"), "garbage").unwrap();
        assert!(Depot::load_from(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    // Slow (multi-megabyte cache rebuilds): excluded from the default
    // `cargo test -q` run now that the bench binary (`depot_throughput`)
    // owns the scaling measurement. scripts/verify.sh opts back in via
    // `cargo test -p inca-server --lib -- --ignored`.
    #[ignore = "slow Figure 9 scaling check; run with --ignored (scripts/verify.sh does)"]
    fn insert_time_grows_with_cache_size() {
        // The Figure 9 mechanism, asserted coarsely: inserting into a
        // multi-megabyte cache takes longer than into a near-empty one.
        let mut depot = Depot::new();
        let t = Timestamp::from_secs(1_000);
        // Grow the cache with many distinct ~20 KB reports.
        let filler = "x".repeat(20_000);
        for i in 0..150 {
            let report = ReportBuilder::new("r", "1.0")
                .gmt(t)
                .body_value("v", filler.as_str())
                .success()
                .unwrap();
            let env = Envelope::new(
                format!("reporter=r{i},vo=tg").parse::<BranchId>().unwrap(),
                report.to_xml(),
            );
            depot.receive(&env.encode(EnvelopeMode::Body), t).unwrap();
        }
        assert!(depot.cache().size_bytes() > 2_000_000);
        // Time many small inserts into the big cache vs a fresh one.
        let small = envelope_bytes("reporter=probe,vo=tg", "1", EnvelopeMode::Body);
        let reps = 30;
        let start = Instant::now();
        for _ in 0..reps {
            depot.receive(&small, t).unwrap();
        }
        let big_elapsed = start.elapsed();
        let mut fresh = Depot::new();
        let start = Instant::now();
        for _ in 0..reps {
            fresh.receive(&small, t).unwrap();
        }
        let fresh_elapsed = start.elapsed();
        assert!(
            big_elapsed > fresh_elapsed * 3,
            "expected big-cache inserts to dominate: {big_elapsed:?} vs {fresh_elapsed:?}"
        );
    }
}
