//! A small memo of recent query results, invalidated by the cache's
//! generation counter.
//!
//! The TeraGrid status pages hit the same handful of queries
//! continuously (§3.2.3's consumers re-render the same views), while
//! the cache mutates only when a cron burst lands. Between mutations
//! every repeated query can be served from a memoized result; the
//! cache's [`generation`](crate::XmlCache::generation) stamps each
//! entry, so one comparison decides validity — no invalidation hooks
//! in the write path.
//!
//! The memo lives *inside* the depot behind its own tiny mutex so it
//! keeps working under the controller's read lock: many concurrent
//! readers share one depot reference, and the memo lock is held only
//! for a probe or a store, never across a cache walk.

use std::collections::VecDeque;

use inca_report::BranchId;
use parking_lot::Mutex;

/// Result value of a memoizable query.
#[derive(Debug, Clone, PartialEq)]
pub enum MemoValue {
    /// A [`crate::XmlCache::subtree`] result.
    Subtree(Option<String>),
    /// A [`crate::XmlCache::reports`] result.
    Reports(Vec<(BranchId, String)>),
    /// A [`crate::XmlCache::report_exact`] result.
    Exact(Option<String>),
}

/// Bounded FIFO memo: at most `capacity` distinct query keys, oldest
/// evicted first. Entries from older cache generations are dropped on
/// probe.
#[derive(Debug)]
pub struct QueryMemo {
    entries: Mutex<VecDeque<(u64, String, MemoValue)>>,
    capacity: usize,
}

impl QueryMemo {
    /// A memo holding up to `capacity` entries.
    pub fn new(capacity: usize) -> QueryMemo {
        QueryMemo { entries: Mutex::new(VecDeque::with_capacity(capacity)), capacity }
    }

    /// The memoized value for `key` if it was stored at `generation`;
    /// a stale entry (older generation) is evicted and misses.
    pub fn get(&self, generation: u64, key: &str) -> Option<MemoValue> {
        let mut entries = self.entries.lock();
        let pos = entries.iter().position(|(_, k, _)| k == key)?;
        if entries[pos].0 == generation {
            Some(entries[pos].2.clone())
        } else {
            entries.remove(pos);
            None
        }
    }

    /// Stores `value` for `key` at `generation`, evicting the oldest
    /// entry when full (and any previous entry under the same key).
    pub fn put(&self, generation: u64, key: String, value: MemoValue) {
        let mut entries = self.entries.lock();
        if let Some(pos) = entries.iter().position(|(_, k, _)| *k == key) {
            entries.remove(pos);
        }
        while entries.len() >= self.capacity {
            entries.pop_front();
        }
        entries.push_back((generation, key, value));
    }

    /// Number of live entries (tests and gauges).
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_requires_matching_generation() {
        let memo = QueryMemo::new(4);
        memo.put(1, "k".into(), MemoValue::Exact(Some("v".into())));
        assert_eq!(memo.get(1, "k"), Some(MemoValue::Exact(Some("v".into()))));
        assert_eq!(memo.get(2, "k"), None, "older generation must miss");
        assert!(memo.is_empty(), "stale entry is evicted by the probe");
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let memo = QueryMemo::new(2);
        memo.put(1, "a".into(), MemoValue::Subtree(None));
        memo.put(1, "b".into(), MemoValue::Subtree(None));
        memo.put(1, "c".into(), MemoValue::Subtree(None));
        assert_eq!(memo.len(), 2);
        assert_eq!(memo.get(1, "a"), None);
        assert!(memo.get(1, "b").is_some() && memo.get(1, "c").is_some());
    }

    #[test]
    fn same_key_replaces_in_place() {
        let memo = QueryMemo::new(2);
        memo.put(1, "a".into(), MemoValue::Exact(None));
        memo.put(2, "a".into(), MemoValue::Exact(Some("new".into())));
        assert_eq!(memo.len(), 1);
        assert_eq!(memo.get(2, "a"), Some(MemoValue::Exact(Some("new".into()))));
    }
}
