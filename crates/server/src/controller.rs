//! The centralized controller.
//!
//! §3.2.1: "The current centralized controller is implemented as a Perl
//! daemon and listens on a TCP port for incoming reports from the
//! distributed controllers… When the centralized controller receives an
//! incoming connection from a distributed controller, it checks the
//! host against a list of hostnames… It then creates a XML envelope,
//! where the content of the envelope is the report and the envelope
//! address is the branch identifier. The envelope is forwarded to the
//! depot."
//!
//! [`CentralizedController::submit`] is the transport-independent core
//! (used directly by the simulation harness); [`serve_tcp`] wraps it in
//! a thread-per-connection TCP accept loop for live deployments. The
//! depot sits behind a reader-writer lock: submissions take the write
//! side, while any number of query readers proceed concurrently — an
//! improvement over the 2004 system, which serialized everything
//! through its single Perl daemon.
//!
//! [`serve_tcp`]: CentralizedController::serve_tcp

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use inca_obs::metrics::{Counter, Gauge};
use inca_obs::{Obs, Severity};
use inca_report::Timestamp;
use inca_wire::envelope::{Envelope, EnvelopeMode};
use inca_wire::frame::{read_frame, write_frame, FrameError};
use inca_wire::message::{ClientMessage, ServerResponse};
use inca_wire::HostAllowlist;

use crate::dedup::DedupIndex;
use crate::depot::depot::{Depot, DepotTiming};

/// Configuration of the centralized controller.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Hosts allowed to submit.
    pub allowlist: HostAllowlist,
    /// How reports are packed for the depot (body = 2004 behaviour,
    /// attachment = the §5.2.2 proposed optimization).
    pub envelope_mode: EnvelopeMode,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            allowlist: HostAllowlist::allow_all(),
            envelope_mode: EnvelopeMode::Body,
        }
    }
}

/// The centralized controller with its depot.
pub struct CentralizedController {
    config: ControllerConfig,
    /// Reader-writer lock, not a mutex: consumers, the health monitor
    /// and metric scrapes read the depot concurrently with each other;
    /// only ingest takes the write side. The depot's interior query
    /// memo has its own lock, so shared guards stay `Sync`-safe.
    depot: RwLock<Depot>,
    /// Error reports received (the §3.1.3 special reports).
    error_reports: Mutex<u64>,
    /// Observability handle, inherited from the depot so controller
    /// and depot metrics share one registry.
    obs: Obs,
    /// Accepted submissions (`inca_controller_accepted_total`).
    accepted: Arc<Counter>,
    /// Rejected submissions by reason
    /// (`inca_controller_rejected_total{reason=...}`).
    rejected_allowlist: Arc<Counter>,
    rejected_decode: Arc<Counter>,
    rejected_depot: Arc<Counter>,
    /// Submissions currently waiting on or holding the depot lock
    /// (`inca_controller_queue_depth`).
    queue_depth: Arc<Gauge>,
    /// Per-daemon seq windows: retransmissions of already-ingested
    /// reports are acked here without touching the depot, making
    /// ingest idempotent (exactly-once on top of at-least-once
    /// delivery).
    dedup: Mutex<DedupIndex>,
    /// Duplicate submissions absorbed
    /// (`inca_depot_duplicates_total`).
    duplicates: Arc<Counter>,
}

/// Outcome of admission: what to do with one framed payload.
enum Admission {
    /// Envelope bytes for the depot, the open accept span, and the
    /// message's delivery identity (to un-record on depot failure).
    Fresh(Vec<u8>, inca_obs::trace::Span, Option<(String, u64)>),
    /// Already ingested: ack idempotently, skip the depot.
    Duplicate,
    /// Refused before the depot (allowlist, decode).
    Rejected(ServerResponse),
}

impl CentralizedController {
    /// Creates a controller around a depot. The controller observes
    /// into the depot's [`Obs`] handle, so pass [`Depot::with_obs`] to
    /// isolate the whole pipeline's spans and metrics.
    pub fn new(config: ControllerConfig, depot: Depot) -> CentralizedController {
        let obs = depot.obs().clone();
        let metrics = obs.metrics();
        let accepted = metrics.counter(
            "inca_controller_accepted_total",
            "Submissions accepted and forwarded to the depot.",
        );
        let rejected = |reason| {
            metrics.counter_with(
                "inca_controller_rejected_total",
                &[("reason", reason)],
                "Submissions rejected before reaching the depot cache.",
            )
        };
        let rejected_allowlist = rejected("allowlist");
        let rejected_decode = rejected("decode");
        let rejected_depot = rejected("depot");
        let queue_depth = metrics.gauge(
            "inca_controller_queue_depth",
            "Submissions waiting on or holding the depot lock.",
        );
        let duplicates = metrics.counter(
            "inca_depot_duplicates_total",
            "Duplicate submissions absorbed by per-daemon seq dedup.",
        );
        CentralizedController {
            config,
            depot: RwLock::new(depot),
            error_reports: Mutex::new(0),
            obs,
            accepted,
            rejected_allowlist,
            rejected_decode,
            rejected_depot,
            queue_depth,
            dedup: Mutex::new(DedupIndex::default()),
            duplicates,
        }
    }

    /// The observability handle the controller (and its depot) report
    /// into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Admission for one framed payload — allowlist, decode,
    /// seq-dedup, and enveloping — shared by
    /// [`CentralizedController::submit`] and
    /// [`CentralizedController::submit_batch`]. A fresh admission
    /// carries the encoded envelope plus the open `controller.accept`
    /// span (already joined to the message's trace); the caller
    /// finishes the span once the depot outcome is known, and must
    /// un-record the delivery identity if the depot fails.
    fn admit(&self, peer_host: &str, payload: &[u8]) -> Admission {
        let span = self
            .obs
            .span("controller.accept")
            .field("peer", peer_host)
            .field("bytes", payload.len());
        if !self.config.allowlist.allows(peer_host) {
            self.rejected_allowlist.inc();
            span.severity(Severity::Warn).field("rejected", "allowlist").finish();
            return Admission::Rejected(ServerResponse::Rejected(format!(
                "host {peer_host} not in allowlist"
            )));
        }
        let message = match ClientMessage::decode(payload) {
            Ok(m) => m,
            Err(e) => {
                self.rejected_decode.inc();
                span.severity(Severity::Warn).field("rejected", "decode").finish();
                return Admission::Rejected(ServerResponse::Rejected(e.to_string()));
            }
        };
        // Seq dedup: a `(daemon, seq)` this controller has already
        // ingested is a retransmission (its ack was lost); answer Ack
        // without re-ingesting. Messages without an origin (legacy
        // peers) keep at-most-once semantics.
        if let Some((daemon, seq)) = &message.origin {
            if !self.dedup.lock().observe(daemon, *seq) {
                self.duplicates.inc();
                span.field("duplicate_seq", *seq).finish();
                return Admission::Duplicate;
            }
        }
        if message.is_error_report {
            *self.error_reports.lock() += 1;
        }
        // Join the report's trace (minted by the forwarding daemon) and
        // re-parent it on this accept span for the depot leg.
        let mut span = span.field("branch", &message.branch);
        if let Some(ctx) = message.trace {
            span = span.trace_ctx(ctx);
        }
        let depot_ctx = span.child_ctx();
        let mut envelope = Envelope::new(message.branch, message.report_xml);
        if let Some(ctx) = depot_ctx {
            envelope = envelope.with_trace(ctx);
        }
        Admission::Fresh(envelope.encode(self.config.envelope_mode), span, message.origin)
    }

    /// Un-records a delivery identity whose depot ingest failed, so the
    /// daemon's retry is not misclassified as a duplicate.
    fn forget_origin(&self, origin: &Option<(String, u64)>) {
        if let Some((daemon, seq)) = origin {
            self.dedup.lock().forget(daemon, *seq);
        }
    }

    /// Processes one framed client payload from `peer_host`.
    ///
    /// Returns the response to send back plus the depot timing when the
    /// submission was accepted.
    pub fn submit(
        &self,
        peer_host: &str,
        payload: &[u8],
        now: Timestamp,
    ) -> (ServerResponse, Option<DepotTiming>) {
        let (bytes, span, origin) = match self.admit(peer_host, payload) {
            Admission::Fresh(bytes, span, origin) => (bytes, span, origin),
            Admission::Duplicate => return (ServerResponse::Ack, None),
            Admission::Rejected(response) => return (response, None),
        };
        // Writes serialize through the depot's write lock, as in the
        // paper (reads share the lock); the gauge tracks how many
        // submissions are queued on it.
        self.queue_depth.add(1.0);
        let result = {
            let mut depot = self.depot.write();
            depot.receive(&bytes, now)
        };
        self.queue_depth.sub(1.0);
        match result {
            Ok(timing) => {
                self.accepted.inc();
                span.finish();
                (ServerResponse::Ack, Some(timing))
            }
            Err(e) => {
                self.forget_origin(&origin);
                self.rejected_depot.inc();
                span.severity(Severity::Warn).field("rejected", "depot").finish();
                (ServerResponse::Rejected(e.to_string()), None)
            }
        }
    }

    /// Processes a burst of `(peer_host, payload)` submissions in one
    /// depot pass, returning one response per submission in order.
    ///
    /// Admission (allowlist, decode, per-message accept span and
    /// counters) is identical to [`CentralizedController::submit`];
    /// the depot lock is taken **once** and every admitted report is
    /// spliced by a single [`Depot::receive_batch`] — the amortization
    /// the paper's §5.2.2 scalability analysis calls for. The
    /// simulation engine drains each tick's reporter output through
    /// here.
    pub fn submit_batch(
        &self,
        submissions: &[(String, Vec<u8>)],
        now: Timestamp,
    ) -> Vec<(ServerResponse, Option<DepotTiming>)> {
        let mut results: Vec<Option<(ServerResponse, Option<DepotTiming>)>> =
            (0..submissions.len()).map(|_| None).collect();
        let mut admitted: Vec<(usize, inca_obs::trace::Span, Option<(String, u64)>)> =
            Vec::new();
        let mut batch: Vec<Vec<u8>> = Vec::new();
        for (index, (peer_host, payload)) in submissions.iter().enumerate() {
            match self.admit(peer_host, payload) {
                Admission::Fresh(bytes, span, origin) => {
                    admitted.push((index, span, origin));
                    batch.push(bytes);
                }
                Admission::Duplicate => {
                    results[index] = Some((ServerResponse::Ack, None));
                }
                Admission::Rejected(response) => results[index] = Some((response, None)),
            }
        }
        self.queue_depth.add(batch.len() as f64);
        let outcomes = {
            let mut depot = self.depot.write();
            depot.receive_batch(&batch, now)
        };
        self.queue_depth.sub(batch.len() as f64);
        for ((index, span, origin), outcome) in admitted.into_iter().zip(outcomes) {
            results[index] = Some(match outcome {
                Ok(timing) => {
                    self.accepted.inc();
                    span.finish();
                    (ServerResponse::Ack, Some(timing))
                }
                Err(e) => {
                    self.forget_origin(&origin);
                    self.rejected_depot.inc();
                    span.severity(Severity::Warn).field("rejected", "depot").finish();
                    (ServerResponse::Rejected(e.to_string()), None)
                }
            });
        }
        results
            .into_iter()
            .map(|r| r.expect("every submission resolved"))
            .collect()
    }

    /// Runs a closure against the depot under a **shared** read guard:
    /// any number of consumers, health checks and metric scrapes run
    /// concurrently, blocking only while ingest holds the write side.
    pub fn with_depot<R>(&self, f: impl FnOnce(&Depot) -> R) -> R {
        f(&self.depot.read())
    }

    /// Mutable depot access (archive-rule upload, consumer recording)
    /// under the exclusive write guard.
    pub fn with_depot_mut<R>(&self, f: impl FnOnce(&mut Depot) -> R) -> R {
        f(&mut self.depot.write())
    }

    /// Number of execution-error reports received.
    pub fn error_report_count(&self) -> u64 {
        *self.error_reports.lock()
    }

    /// Duplicate submissions absorbed by seq dedup (also exported as
    /// `inca_depot_duplicates_total`).
    pub fn duplicate_count(&self) -> u64 {
        self.dedup.lock().duplicate_count()
    }

    /// Starts a thread-per-connection TCP accept loop. Submissions use
    /// wall-clock seconds for archive timestamps.
    ///
    /// Finished workers (and their stream clones) are reaped on every
    /// accept-loop pass, so a long-lived server under connection churn
    /// holds only as many handles as it has *live* connections — they
    /// previously accumulated for every connection ever accepted and
    /// were released only at [`TcpServerHandle::stop`].
    pub fn serve_tcp(
        self: &Arc<Self>,
        listener: TcpListener,
    ) -> std::io::Result<TcpServerHandle> {
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        // Clones of live accepted streams, keyed by connection id, so
        // `stop` can unblock worker threads parked in `read_frame` even
        // while clients keep their connections open. Each worker drops
        // its own entry on exit.
        let connections: Arc<Mutex<HashMap<u64, TcpStream>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let live_workers = Arc::new(AtomicUsize::new(0));
        let controller = Arc::clone(self);
        let stop = Arc::clone(&shutdown);
        let conns = Arc::clone(&connections);
        let conn_gauge = Arc::clone(&connections);
        let workers_up = Arc::clone(&live_workers);
        let accept_thread = std::thread::spawn(move || {
            let mut workers: Vec<JoinHandle<()>> = Vec::new();
            let mut next_id: u64 = 0;
            while !stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, peer)) => {
                        let id = next_id;
                        next_id += 1;
                        if let Ok(clone) = stream.try_clone() {
                            conns.lock().insert(id, clone);
                        }
                        let controller = Arc::clone(&controller);
                        let conns = Arc::clone(&conns);
                        let live = Arc::clone(&workers_up);
                        live.fetch_add(1, Ordering::SeqCst);
                        workers.push(std::thread::spawn(move || {
                            let _ = handle_connection(&controller, stream, peer);
                            conns.lock().remove(&id);
                            live.fetch_sub(1, Ordering::SeqCst);
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
                // Reap finished workers as we go; joining a finished
                // thread is immediate.
                workers = workers
                    .into_iter()
                    .filter_map(|w| {
                        if w.is_finished() {
                            let _ = w.join();
                            None
                        } else {
                            Some(w)
                        }
                    })
                    .collect();
            }
            // Shutdown: sever every connection so blocked reads return,
            // then reap the workers.
            for conn in conns.lock().values() {
                let _ = conn.shutdown(std::net::Shutdown::Both);
            }
            for w in workers {
                let _ = w.join();
            }
        });
        Ok(TcpServerHandle {
            addr: local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            connections: conn_gauge,
            live_workers,
        })
    }

    /// Starts the chosen server frontend on `listener`.
    ///
    /// Both frontends speak the identical framed protocol and share all
    /// admission, dedup and depot machinery — the threaded loop is the
    /// historical oracle, the reactor the scale path — so they must
    /// produce byte-identical depot documents for the same submissions
    /// (proven under chaos in `tests/net_frontend.rs`).
    pub fn serve(
        self: &Arc<Self>,
        frontend: ServerFrontend,
        listener: TcpListener,
    ) -> std::io::Result<ServerHandle> {
        match frontend {
            ServerFrontend::Threaded => self.serve_tcp(listener).map(ServerHandle::Threaded),
            ServerFrontend::Reactor => self.serve_reactor(listener).map(ServerHandle::Reactor),
        }
    }
}

/// Which server frontend accepts daemon connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerFrontend {
    /// The original thread-per-connection blocking accept loop — one
    /// worker thread per daemon; kept as the correctness oracle.
    Threaded,
    /// The event-driven readiness reactor (`crate::reactor`) — one
    /// thread multiplexing every daemon connection.
    Reactor,
}

/// A running server frontend of either flavour; shuts down on drop.
pub enum ServerHandle {
    /// Thread-per-connection loop.
    Threaded(TcpServerHandle),
    /// Event-driven reactor.
    Reactor(crate::reactor::ReactorHandle),
}

impl ServerHandle {
    /// The bound address (use port 0 to pick a free port in tests).
    pub fn addr(&self) -> SocketAddr {
        match self {
            ServerHandle::Threaded(h) => h.addr(),
            ServerHandle::Reactor(h) => h.addr(),
        }
    }

    /// Requests shutdown and joins the frontend's threads.
    pub fn stop(self) {
        match self {
            ServerHandle::Threaded(h) => h.stop(),
            ServerHandle::Reactor(h) => h.stop(),
        }
    }
}

/// How long a connection may sit idle (or mid-frame) before the server
/// reclaims its thread. Without this a stalled or half-dead peer holds
/// a worker in `read_frame` forever.
pub const SERVER_IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// Per-reply write deadline for the accept loop.
pub const SERVER_WRITE_TIMEOUT: Duration = Duration::from_secs(10);

fn handle_connection(
    controller: &CentralizedController,
    mut stream: TcpStream,
    peer: SocketAddr,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(SERVER_IDLE_TIMEOUT))?;
    stream.set_write_timeout(Some(SERVER_WRITE_TIMEOUT))?;
    // Peer identity: in the 2004 deployment this was the reverse-DNS
    // hostname; here the client message's resource field is checked
    // against the allowlist and the socket peer is recorded only for
    // diagnostics.
    let _ = peer;
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(p) => p,
            Err(FrameError::Closed) => return Ok(()),
            // An idle-timeout expiry surfaces as WouldBlock (or
            // TimedOut, platform-dependent): drop the connection; the
            // daemon reconnects and its spool retries anything unacked.
            Err(FrameError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Ok(());
            }
            Err(FrameError::Io(e)) => return Err(e),
            Err(FrameError::TooLarge { .. }) => {
                let resp = ServerResponse::Rejected("frame too large".into());
                write_frame(&mut stream, &resp.encode())?;
                return Ok(());
            }
        };
        // Resource hostname inside the message is the allowlist key.
        let peer_host = match ClientMessage::decode(&payload) {
            Ok(m) => m.resource,
            Err(_) => String::new(),
        };
        let now = Timestamp::from_secs(
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
        );
        let (response, _) = controller.submit(&peer_host, &payload, now);
        write_frame(&mut stream, &response.encode())?;
        stream.flush()?;
    }
}

/// Handle to a running TCP server; shuts down on drop.
pub struct TcpServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    connections: Arc<Mutex<HashMap<u64, TcpStream>>>,
    live_workers: Arc<AtomicUsize>,
}

impl TcpServerHandle {
    /// The bound address (use port 0 to pick a free port in tests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stream clones currently held for live connections. Bounded by
    /// live connections, not total connections ever accepted — the
    /// churn regression in `tests/net_frontend.rs` pins this down.
    pub fn connection_count(&self) -> usize {
        self.connections.lock().len()
    }

    /// Worker threads currently serving connections.
    pub fn worker_count(&self) -> usize {
        self.live_workers.load(Ordering::SeqCst)
    }

    /// Requests shutdown and waits for the accept loop.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inca_report::{BranchId, ReportBuilder};

    fn message(resource: &str) -> Vec<u8> {
        let report = ReportBuilder::new("version.globus", "1.0")
            .host(resource)
            .gmt(Timestamp::from_secs(1_000))
            .body_value("packageVersion", "2.4.3")
            .success()
            .unwrap();
        let branch: BranchId =
            format!("reporter=version.globus,resource={resource},vo=tg").parse().unwrap();
        ClientMessage::report(resource, branch, &report).encode()
    }

    #[test]
    fn accepted_submission_reaches_depot() {
        let controller =
            CentralizedController::new(ControllerConfig::default(), Depot::new());
        let (resp, timing) =
            controller.submit("tg-login1.sdsc.teragrid.org", &message("tg-login1.sdsc.teragrid.org"), Timestamp::from_secs(1_000));
        assert_eq!(resp, ServerResponse::Ack);
        assert!(timing.is_some());
        assert_eq!(controller.with_depot(|d| d.cache().report_count()), 1);
    }

    #[test]
    fn accept_and_depot_spans_join_the_message_trace() {
        use inca_obs::sinks::RingSink;
        use inca_obs::{Obs, TraceContext};
        let obs = Obs::new();
        let ring = Arc::new(RingSink::new(64));
        obs.tracer().add_sink(ring.clone());
        let controller =
            CentralizedController::new(ControllerConfig::default(), Depot::with_obs(obs.clone()));

        let ctx = TraceContext::root();
        let report = ReportBuilder::new("version.globus", "1.0")
            .host("h")
            .gmt(Timestamp::from_secs(1_000))
            .body_value("packageVersion", "2.4.3")
            .success()
            .unwrap();
        let branch: BranchId = "reporter=version.globus,resource=h,vo=tg".parse().unwrap();
        let payload = ClientMessage::report("h", branch, &report).with_trace(ctx).encode();
        let (resp, _) = controller.submit("h", &payload, Timestamp::from_secs(1_000));
        assert_eq!(resp, ServerResponse::Ack);

        let events = ring.drain();
        let accept = events.iter().find(|e| e.name == "controller.accept").unwrap();
        let insert = events.iter().find(|e| e.name == "depot.insert").unwrap();
        assert_eq!(accept.trace.unwrap().trace_id, ctx.trace_id, "accept joins the wire trace");
        assert_eq!(insert.trace.unwrap().trace_id, ctx.trace_id, "insert joins the wire trace");
        assert_eq!(
            insert.trace.unwrap().parent_span_id,
            accept.span_id,
            "depot insert is parented on the accept span"
        );

        let hist = obs.metrics().histogram_of("inca_depot_insert_seconds", &[]).unwrap();
        assert!(
            hist.bucket_exemplars().iter().flatten().any(|e| e.trace_id == ctx.trace_id),
            "insert latency histogram carries the trace exemplar"
        );
    }

    #[test]
    fn allowlist_rejects_unknown_host() {
        let config = ControllerConfig {
            allowlist: HostAllowlist::from_entries(["*.teragrid.org"]),
            envelope_mode: EnvelopeMode::Body,
        };
        let controller = CentralizedController::new(config, Depot::new());
        let (resp, _) = controller.submit(
            "evil.example.com",
            &message("evil.example.com"),
            Timestamp::from_secs(0),
        );
        assert!(matches!(resp, ServerResponse::Rejected(_)));
        assert_eq!(controller.with_depot(|d| d.cache().report_count()), 0);
    }

    #[test]
    fn malformed_payload_rejected() {
        let controller =
            CentralizedController::new(ControllerConfig::default(), Depot::new());
        let (resp, _) = controller.submit("h", b"not a message", Timestamp::from_secs(0));
        assert!(matches!(resp, ServerResponse::Rejected(_)));
    }

    #[test]
    fn error_reports_counted() {
        let controller =
            CentralizedController::new(ControllerConfig::default(), Depot::new());
        let report = inca_report::Report::execution_error(
            ReportBuilder::new("r", "1").success().unwrap().header,
            "killed after exceeding expected run time",
        );
        let branch: BranchId = "reporter=r,vo=tg".parse().unwrap();
        let payload = ClientMessage::error_report("h", branch, &report).encode();
        controller.submit("h", &payload, Timestamp::from_secs(0));
        assert_eq!(controller.error_report_count(), 1);
    }

    #[test]
    fn submit_batch_matches_sequential_submits() {
        let config = ControllerConfig {
            allowlist: HostAllowlist::from_entries(["*.teragrid.org"]),
            envelope_mode: EnvelopeMode::Body,
        };
        let batched = CentralizedController::new(config.clone(), Depot::new());
        let sequential = CentralizedController::new(config, Depot::new());

        let hosts = [
            "tg-login1.sdsc.teragrid.org",
            "evil.example.com", // allowlist reject
            "tg-login2.ncsa.teragrid.org",
            "tg-login1.sdsc.teragrid.org", // replaces the first branch
        ];
        let mut submissions: Vec<(String, Vec<u8>)> = hosts
            .iter()
            .map(|h| (h.to_string(), message(h)))
            .collect();
        submissions.push(("tg-login3.psc.teragrid.org".into(), b"garbage".to_vec()));

        let now = Timestamp::from_secs(2_000);
        let results = batched.submit_batch(&submissions, now);
        assert_eq!(results.len(), submissions.len());
        assert_eq!(results[0].0, ServerResponse::Ack);
        assert!(matches!(results[1].0, ServerResponse::Rejected(_)));
        assert_eq!(results[2].0, ServerResponse::Ack);
        assert_eq!(results[3].0, ServerResponse::Ack);
        assert!(matches!(results[4].0, ServerResponse::Rejected(_)));
        assert!(results[3].1.is_some(), "accepted submissions carry timings");

        for (host, payload) in &submissions {
            sequential.submit(host, payload, now);
        }
        assert_eq!(
            batched.with_depot(|d| d.cache().document().to_string()),
            sequential.with_depot(|d| d.cache().document().to_string()),
            "batched admission must build the same cache as sequential"
        );
        assert_eq!(batched.with_depot(|d| d.stats().report_count()), 3);
    }

    fn stamped(resource: &str, seq: u64) -> Vec<u8> {
        let report = ReportBuilder::new("version.globus", "1.0")
            .host(resource)
            .gmt(Timestamp::from_secs(1_000))
            .body_value("packageVersion", "2.4.3")
            .success()
            .unwrap();
        let branch: BranchId =
            format!("reporter=version.globus,resource={resource},vo=tg").parse().unwrap();
        ClientMessage::report(resource, branch, &report)
            .with_origin(resource, seq)
            .encode()
    }

    #[test]
    fn duplicate_seq_is_acked_but_ingested_once() {
        // Fresh Obs: the duplicates-counter assertion must not see
        // other tests' global-registry traffic.
        let controller = CentralizedController::new(
            ControllerConfig::default(),
            Depot::with_obs(inca_obs::Obs::new()),
        );
        let payload = stamped("h", 1);
        let now = Timestamp::from_secs(1_000);
        let (first, timing) = controller.submit("h", &payload, now);
        assert_eq!(first, ServerResponse::Ack);
        assert!(timing.is_some());
        // The retransmission (daemon never saw the ack) is acked again
        // — idempotently, without depot work.
        let (second, timing) = controller.submit("h", &payload, now);
        assert_eq!(second, ServerResponse::Ack);
        assert!(timing.is_none(), "no depot pass for a duplicate");
        assert_eq!(controller.with_depot(|d| d.stats().report_count()), 1);
        assert_eq!(controller.duplicate_count(), 1);
        assert_eq!(
            controller.obs().metrics().counter_value("inca_depot_duplicates_total", &[]),
            Some(1)
        );
        // A later seq from the same daemon still lands.
        let (third, _) = controller.submit("h", &stamped("h", 2), now);
        assert_eq!(third, ServerResponse::Ack);
        assert_eq!(controller.with_depot(|d| d.stats().report_count()), 2);
    }

    #[test]
    fn batch_absorbs_duplicates_idempotently() {
        let controller =
            CentralizedController::new(ControllerConfig::default(), Depot::new());
        let submissions = vec![
            ("a".to_string(), stamped("a", 1)),
            ("b".to_string(), stamped("b", 1)),
            ("a".to_string(), stamped("a", 1)), // retransmit in-batch
        ];
        let results = controller.submit_batch(&submissions, Timestamp::from_secs(1_000));
        assert!(results.iter().all(|(r, _)| *r == ServerResponse::Ack));
        assert!(results[2].1.is_none(), "duplicate carries no timing");
        assert_eq!(controller.with_depot(|d| d.stats().report_count()), 2);
        assert_eq!(controller.duplicate_count(), 1);
    }

    #[test]
    fn binary_framed_batch_absorbs_duplicates_and_matches_xml_cache() {
        // Seq dedup happens on the client message, before enveloping:
        // switching the depot leg to zero-copy binary frames must not
        // change which submissions are absorbed, and the spliced cache
        // must be byte-identical to the XML-envelope one.
        let binary = CentralizedController::new(
            ControllerConfig {
                envelope_mode: EnvelopeMode::Binary,
                ..ControllerConfig::default()
            },
            Depot::with_obs(inca_obs::Obs::new()),
        );
        let xml = CentralizedController::new(
            ControllerConfig::default(),
            Depot::with_obs(inca_obs::Obs::new()),
        );
        let submissions = vec![
            ("a".to_string(), stamped("a", 1)),
            ("b".to_string(), stamped("b", 1)),
            ("a".to_string(), stamped("a", 1)), // retransmit in-batch
            ("b".to_string(), stamped("b", 2)),
        ];
        let now = Timestamp::from_secs(1_000);
        for controller in [&binary, &xml] {
            let results = controller.submit_batch(&submissions, now);
            assert!(results.iter().all(|(r, _)| *r == ServerResponse::Ack));
            assert!(results[2].1.is_none(), "duplicate carries no timing");
            assert_eq!(controller.with_depot(|d| d.stats().report_count()), 3);
            assert_eq!(controller.duplicate_count(), 1);
            // A cross-batch retransmission is absorbed too.
            let (resp, timing) = controller.submit("a", &stamped("a", 1), now);
            assert_eq!(resp, ServerResponse::Ack);
            assert!(timing.is_none());
            assert_eq!(controller.duplicate_count(), 2);
        }
        assert_eq!(
            binary.with_depot(|d| d.cache().document().to_string()),
            xml.with_depot(|d| d.cache().document().to_string()),
            "binary-framed batch must build the same cache as the XML envelope"
        );
    }

    #[test]
    fn unstamped_messages_keep_legacy_semantics() {
        let controller =
            CentralizedController::new(ControllerConfig::default(), Depot::new());
        let payload = message("h");
        let now = Timestamp::from_secs(1_000);
        controller.submit("h", &payload, now);
        controller.submit("h", &payload, now);
        // No origin → no dedup: both ingests count (at-most-once as
        // before the spool existed).
        assert_eq!(controller.with_depot(|d| d.stats().report_count()), 2);
        assert_eq!(controller.duplicate_count(), 0);
    }

    #[test]
    fn stalled_client_is_reaped_not_wedged() {
        // A connection that opens and sends nothing must not hold a
        // worker thread past the idle timeout. We can't wait the full
        // 30 s in a unit test, so just prove the timeout is set and a
        // live submission still works alongside a stalled peer.
        let controller =
            Arc::new(CentralizedController::new(ControllerConfig::default(), Depot::new()));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = controller.serve_tcp(listener).unwrap();
        let addr = handle.addr();
        let _stalled = TcpStream::connect(addr).unwrap(); // never writes
        let mut live = TcpStream::connect(addr).unwrap();
        write_frame(&mut live, &stamped("h", 1)).unwrap();
        let reply = read_frame(&mut live).unwrap();
        assert_eq!(ServerResponse::decode(&reply).unwrap(), ServerResponse::Ack);
        handle.stop();
    }

    #[test]
    fn tcp_roundtrip() {
        let controller =
            Arc::new(CentralizedController::new(ControllerConfig::default(), Depot::new()));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = controller.serve_tcp(listener).unwrap();
        let addr = handle.addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        write_frame(&mut stream, &message("client.host.org")).unwrap();
        let reply = read_frame(&mut stream).unwrap();
        assert_eq!(ServerResponse::decode(&reply).unwrap(), ServerResponse::Ack);

        // Second submission over the same connection.
        write_frame(&mut stream, &message("client.host.org")).unwrap();
        let reply = read_frame(&mut stream).unwrap();
        assert_eq!(ServerResponse::decode(&reply).unwrap(), ServerResponse::Ack);
        drop(stream);

        // Give the worker a moment to finish, then check the depot.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(controller.with_depot(|d| d.stats().report_count()), 2);
        handle.stop();
    }

    #[test]
    fn tcp_concurrent_clients_serialize_safely() {
        let controller =
            Arc::new(CentralizedController::new(ControllerConfig::default(), Depot::new()));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = controller.serve_tcp(listener).unwrap();
        let addr = handle.addr();
        let clients: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    for _ in 0..5 {
                        write_frame(&mut stream, &message(&format!("client{i}.org"))).unwrap();
                        let reply = read_frame(&mut stream).unwrap();
                        assert_eq!(
                            ServerResponse::decode(&reply).unwrap(),
                            ServerResponse::Ack
                        );
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(controller.with_depot(|d| d.stats().report_count()), 20);
        // 4 distinct resources → 4 cached reports (same reporter each).
        assert_eq!(controller.with_depot(|d| d.cache().report_count()), 4);
        handle.stop();
    }
}
