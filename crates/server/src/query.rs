//! The querying interface.
//!
//! §3.2.3: "Querying the depot is currently split into two separate
//! interfaces. One is for the retrieval of the most current data, which
//! is held in the cache; the second is for graphing historical data
//! from the archive." Current-data queries take an optional branch
//! identifier: a full identifier returns one report, a suffix returns a
//! set of related reports, and no identifier returns the entire cache.

use std::sync::Arc;

use inca_obs::metrics::{Histogram, DEFAULT_LATENCY_BOUNDS};
use inca_report::{BranchId, Report, Timestamp};
use inca_rrd::{ConsolidationFn, GraphSeries};

use crate::depot::cache::{CacheError, XmlCache};
use crate::depot::depot::Depot;
use crate::temporal::TemporalQuery;

/// Read-side facade over a depot.
#[derive(Debug)]
pub struct QueryInterface<'a> {
    depot: &'a Depot,
    /// Cache-query latency (`inca_depot_query_seconds{result="hit"}`):
    /// queries answered from the depot's memo without touching the
    /// cache index.
    query_hit_hist: Arc<Histogram>,
    /// Cache-query latency (`inca_depot_query_seconds{result="miss"}`):
    /// queries that went to the cache index (and refreshed the memo).
    query_miss_hist: Arc<Histogram>,
}

impl<'a> QueryInterface<'a> {
    /// Wraps a depot. Query metrics register in the depot's
    /// [`Obs`](inca_obs::Obs) handle.
    pub fn new(depot: &'a Depot) -> Self {
        let metrics = depot.obs().metrics();
        let help = "Time answering one current-data cache query.";
        let query_hit_hist = metrics.histogram_with(
            "inca_depot_query_seconds",
            &[("result", "hit")],
            help,
            &DEFAULT_LATENCY_BOUNDS,
        );
        let query_miss_hist = metrics.histogram_with(
            "inca_depot_query_seconds",
            &[("result", "miss")],
            help,
            &DEFAULT_LATENCY_BOUNDS,
        );
        QueryInterface { depot, query_hit_hist, query_miss_hist }
    }

    /// Records one query's latency under its memo outcome label.
    fn observe(&self, hit: bool, elapsed: std::time::Duration) {
        if hit {
            self.query_hit_hist.observe_duration(elapsed);
        } else {
            self.query_miss_hist.observe_duration(elapsed);
        }
    }

    /// The temporal (time-travel) query layer over the same depot:
    /// windowed aggregates, multi-resolution series, incident
    /// reconstruction. See [`TemporalQuery`].
    pub fn temporal(&self) -> TemporalQuery<'a> {
        TemporalQuery::new(self.depot)
    }

    /// Renders every metric of the depot's registry — controller,
    /// depot, and query instruments alike — in the Prometheus text
    /// exposition format. This is the pull-style `metrics` endpoint
    /// for live deployments.
    pub fn metrics_text(&self) -> String {
        self.depot.obs().metrics().render()
    }

    /// The entire cache document ("In the case that no branch
    /// identifier is supplied, the entire contents of the cache is
    /// returned").
    pub fn current_all(&self) -> String {
        self.depot.cache().document().to_string()
    }

    /// Merges per-partition report sets into one cache document.
    ///
    /// The federation's query plane fans a global query out to the
    /// owning partitions and merges here: the reports are spliced into
    /// a fresh [`XmlCache`] whose canonical sibling ordering makes the
    /// document a pure function of report content — byte-identical to
    /// the document a single depot holding every report would serve,
    /// regardless of which partition held what or in what order the
    /// sets arrive.
    pub fn merged_document(sets: &[Vec<(BranchId, String)>]) -> Result<String, CacheError> {
        let mut cache = XmlCache::new();
        let items: Vec<(&BranchId, &str)> =
            sets.iter().flatten().map(|(branch, xml)| (branch, xml.as_str())).collect();
        cache.insert_batch(&items)?;
        Ok(cache.document().to_string())
    }

    /// The raw cache subtree matching a branch-identifier query, or
    /// `None` when nothing matches.
    pub fn current(&self, query: &BranchId) -> Result<Option<String>, CacheError> {
        let start = std::time::Instant::now();
        let result = self.depot.query_subtree(query);
        match result {
            Ok((value, hit)) => {
                self.observe(hit, start.elapsed());
                Ok(value)
            }
            Err(e) => {
                self.observe(false, start.elapsed());
                Err(e)
            }
        }
    }

    /// The single report at a full branch identifier, parsed.
    ///
    /// One exact-match index lookup: a full identifier names exactly
    /// one cached report (ids are unique per level), so there is no
    /// need to collect every deeper report that merely *ends* with the
    /// query and filter afterwards.
    pub fn report(&self, branch: &BranchId) -> Result<Option<Report>, CacheError> {
        let start = std::time::Instant::now();
        let (xml, hit) = self.depot.query_report_exact(branch);
        self.observe(hit, start.elapsed());
        match xml {
            Some(xml) => Ok(Some(Report::parse(&xml).map_err(|e| {
                CacheError::Corrupt(format!("cached report unparseable: {e}"))
            })?)),
            None => Ok(None),
        }
    }

    /// All cached reports matching a suffix query (or every report).
    pub fn reports(&self, query: Option<&BranchId>) -> Result<Vec<(BranchId, Report)>, CacheError> {
        let start = std::time::Instant::now();
        let raw = self.depot.query_reports(query);
        let raw = match raw {
            Ok((value, hit)) => {
                self.observe(hit, start.elapsed());
                value
            }
            Err(e) => {
                self.observe(false, start.elapsed());
                return Err(e);
            }
        };
        let mut out = Vec::with_capacity(raw.len());
        for (branch, xml) in raw {
            let report = Report::parse(&xml)
                .map_err(|e| CacheError::Corrupt(format!("cached report unparseable: {e}")))?;
            out.push((branch, report));
        }
        Ok(out)
    }

    /// An archived rule-fed series as graph data ("archived data is
    /// also retrieved through a Web service call, which wraps the
    /// interface provided by RRDTool").
    pub fn archived(
        &self,
        rule_name: &str,
        branch: &BranchId,
        cf: ConsolidationFn,
        start: Timestamp,
        end: Timestamp,
    ) -> Option<GraphSeries> {
        let fetch = self.depot.archive().fetch_rule_series(rule_name, branch, cf, start, end)?;
        Some(GraphSeries::from_fetch(format!("{rule_name}:{branch}"), fetch))
    }

    /// An archived consumer-recorded summary series.
    pub fn archived_series(
        &self,
        series: &str,
        cf: ConsolidationFn,
        start: Timestamp,
        end: Timestamp,
    ) -> Option<GraphSeries> {
        let fetch = self.depot.archive().fetch_series(series, cf, start, end)?;
        Some(GraphSeries::from_fetch(series, fetch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inca_report::ReportBuilder;
    use inca_rrd::ArchivePolicy;
    use inca_wire::envelope::{Envelope, EnvelopeMode};

    fn depot_with_reports() -> Depot {
        let mut depot = Depot::new();
        let t = Timestamp::from_secs(1_000);
        for (branch, value) in [
            ("reporter=version.globus,resource=tg1,site=sdsc,vo=tg", "2.4.3"),
            ("reporter=version.mpich,resource=tg1,site=sdsc,vo=tg", "1.2.5"),
            ("reporter=version.globus,resource=tg2,site=ncsa,vo=tg", "2.4.1"),
        ] {
            let report = ReportBuilder::new("r", "1.0")
                .gmt(t)
                .body_value("packageVersion", value)
                .success()
                .unwrap();
            let env = Envelope::new(branch.parse().unwrap(), report.to_xml());
            depot.receive(&env.encode(EnvelopeMode::Body), t).unwrap();
        }
        depot
    }

    #[test]
    fn current_all_returns_whole_cache() {
        let depot = depot_with_reports();
        let q = QueryInterface::new(&depot);
        let all = q.current_all();
        assert_eq!(all.matches("<incaReport").count(), 3);
    }

    #[test]
    fn current_subtree_by_site() {
        let depot = depot_with_reports();
        let q = QueryInterface::new(&depot);
        let sdsc = q.current(&"site=sdsc,vo=tg".parse().unwrap()).unwrap().unwrap();
        assert_eq!(sdsc.matches("<incaReport").count(), 2);
        assert!(q.current(&"site=psc,vo=tg".parse().unwrap()).unwrap().is_none());
    }

    #[test]
    fn single_report_query() {
        let depot = depot_with_reports();
        let q = QueryInterface::new(&depot);
        let branch: BranchId = "reporter=version.globus,resource=tg1,site=sdsc,vo=tg".parse().unwrap();
        let report = q.report(&branch).unwrap().unwrap();
        let p: inca_xml::IncaPath = "packageVersion".parse().unwrap();
        assert_eq!(report.body.lookup_text(&p).unwrap(), "2.4.3");
        assert!(q
            .report(&"reporter=nope,resource=tg1,site=sdsc,vo=tg".parse().unwrap())
            .unwrap()
            .is_none());
    }

    #[test]
    fn reports_parse_and_filter() {
        let depot = depot_with_reports();
        let q = QueryInterface::new(&depot);
        let all = q.reports(None).unwrap();
        assert_eq!(all.len(), 3);
        let ncsa = q.reports(Some(&"site=ncsa,vo=tg".parse().unwrap())).unwrap();
        assert_eq!(ncsa.len(), 1);
        assert_eq!(ncsa[0].0.get("resource"), Some("tg2"));
    }

    #[test]
    fn repeated_queries_hit_the_memo_until_ingest_invalidates() {
        // An isolated registry: the hit/miss counts below must not see
        // queries from concurrently running tests.
        let mut depot = Depot::with_obs(inca_obs::Obs::new());
        let t = Timestamp::from_secs(1_000);
        for (branch, value) in [
            ("reporter=version.globus,resource=tg1,site=sdsc,vo=tg", "2.4.3"),
            ("reporter=version.mpich,resource=tg1,site=sdsc,vo=tg", "1.2.5"),
            ("reporter=version.globus,resource=tg2,site=ncsa,vo=tg", "2.4.1"),
        ] {
            let report = ReportBuilder::new("r", "1.0")
                .gmt(t)
                .body_value("packageVersion", value)
                .success()
                .unwrap();
            let env = Envelope::new(branch.parse().unwrap(), report.to_xml());
            depot.receive(&env.encode(EnvelopeMode::Body), t).unwrap();
        }
        let q = QueryInterface::new(&depot);
        let branch: BranchId =
            "reporter=version.globus,resource=tg1,site=sdsc,vo=tg".parse().unwrap();
        let site: BranchId = "site=sdsc,vo=tg".parse().unwrap();
        // First pass misses, second pass hits, and hits return the
        // exact same answers.
        let first = (
            q.current(&site).unwrap(),
            q.report(&branch).unwrap().map(|r| r.to_xml()),
            q.reports(None).unwrap().len(),
        );
        let second = (
            q.current(&site).unwrap(),
            q.report(&branch).unwrap().map(|r| r.to_xml()),
            q.reports(None).unwrap().len(),
        );
        assert_eq!(first, second);
        let metrics = depot.obs().metrics();
        let hits = metrics
            .histogram_of("inca_depot_query_seconds", &[("result", "hit")])
            .expect("hit series registered");
        let misses = metrics
            .histogram_of("inca_depot_query_seconds", &[("result", "miss")])
            .expect("miss series registered");
        assert_eq!(misses.count(), 3, "first pass goes to the index");
        assert_eq!(hits.count(), 3, "second pass is served by the memo");

        // Ingest bumps the cache generation: the same queries miss
        // again and observe the new data.
        let t = Timestamp::from_secs(2_000);
        let report = ReportBuilder::new("r", "1.0")
            .gmt(t)
            .body_value("packageVersion", "9.9.9")
            .success()
            .unwrap();
        let env = Envelope::new(branch.clone(), report.to_xml());
        depot.receive(&env.encode(EnvelopeMode::Body), t).unwrap();
        let q = QueryInterface::new(&depot);
        assert_eq!(misses.count(), 3);
        let fresh = q.report(&branch).unwrap().unwrap();
        let p: inca_xml::IncaPath = "packageVersion".parse().unwrap();
        assert_eq!(fresh.body.lookup_text(&p).unwrap(), "9.9.9");
        assert_eq!(misses.count(), 4, "generation bump invalidates the memo");
    }

    #[test]
    fn memo_tracks_the_rope_generation_counter() {
        // Same contract on the O(report) backend: pure reads are
        // served by the memo, an arena-path insert (binary-framed, so
        // the report bytes are spliced without parsing) bumps the
        // rope's generation and invalidates it.
        use crate::depot::depot::CacheBackend;
        let mut depot =
            Depot::with_obs_backend(inca_obs::Obs::new(), CacheBackend::Rope);
        let t = Timestamp::from_secs(1_000);
        let branch: BranchId =
            "reporter=version.globus,resource=tg1,site=sdsc,vo=tg".parse().unwrap();
        let mk = |v: &str| {
            ReportBuilder::new("r", "1.0")
                .gmt(t)
                .body_value("packageVersion", v)
                .success()
                .unwrap()
        };
        let env = Envelope::new(branch.clone(), mk("2.4.3").to_xml());
        depot.receive(&env.encode(EnvelopeMode::Binary), t).unwrap();

        let q = QueryInterface::new(&depot);
        let site: BranchId = "site=sdsc,vo=tg".parse().unwrap();
        let first = q.current(&site).unwrap();
        let second = q.current(&site).unwrap();
        assert_eq!(first, second);
        let metrics = depot.obs().metrics();
        let hits = metrics
            .histogram_of("inca_depot_query_seconds", &[("result", "hit")])
            .expect("hit series registered");
        let misses = metrics
            .histogram_of("inca_depot_query_seconds", &[("result", "miss")])
            .expect("miss series registered");
        assert_eq!(misses.count(), 1, "first read goes to the rope");
        assert_eq!(hits.count(), 1, "repeat read is served by the memo");

        // An arena-path insert bumps the generation: the memo misses
        // and observes the new report.
        let env = Envelope::new(branch.clone(), mk("9.9.9").to_xml());
        depot.receive(&env.encode(EnvelopeMode::Binary), t).unwrap();
        let q = QueryInterface::new(&depot);
        let fresh = q.report(&branch).unwrap().unwrap();
        let p: inca_xml::IncaPath = "packageVersion".parse().unwrap();
        assert_eq!(fresh.body.lookup_text(&p).unwrap(), "9.9.9");
        assert_eq!(misses.count(), 2, "rope generation bump invalidates the memo");
        assert_eq!(hits.count(), 1);
    }

    #[test]
    fn archived_series_roundtrip() {
        let mut depot = Depot::new();
        let policy = ArchivePolicy::every("p", 86_400);
        let t0 = Timestamp::from_secs(600_000);
        for i in 1..=5u64 {
            depot.archive_mut().record("availability:sdsc", &policy, 600, t0 + i * 600, 99.0);
        }
        let q = QueryInterface::new(&depot);
        let series = q
            .archived_series("availability:sdsc", ConsolidationFn::Average, t0, t0 + 3_600)
            .unwrap();
        assert!(series.known().count() >= 4);
        assert!(q
            .archived_series("missing", ConsolidationFn::Average, t0, t0 + 1)
            .is_none());
    }
}
