//! Error type shared by the XML tokenizer, parser and path resolver.

use std::fmt;

/// Result alias used throughout `inca-xml`.
pub type XmlResult<T> = Result<T, XmlError>;

/// An error produced while tokenizing, parsing, or addressing XML.
///
/// Every variant that stems from malformed input carries the byte offset
/// at which the problem was detected so callers can point at the
/// offending spot in a cached document or an incoming report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Input ended in the middle of a construct (tag, attribute, CDATA…).
    UnexpectedEof {
        /// Byte offset where the tokenizer ran out of input.
        offset: usize,
        /// What the tokenizer was in the middle of reading.
        context: &'static str,
    },
    /// A syntactic problem at a known position.
    Malformed {
        /// Byte offset of the problem.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// A closing tag did not match the element currently open.
    MismatchedTag {
        /// Byte offset of the offending end tag.
        offset: usize,
        /// Name the parser expected to be closed.
        expected: String,
        /// Name that was actually found.
        found: String,
    },
    /// The document ended while elements were still open.
    UnclosedElement {
        /// Name of the innermost unclosed element.
        name: String,
    },
    /// Content appeared after the document element was closed.
    TrailingContent {
        /// Byte offset of the trailing content.
        offset: usize,
    },
    /// An entity reference that this subset does not support.
    UnknownEntity {
        /// Byte offset of the `&`.
        offset: usize,
        /// The entity text (without `&` and `;`).
        entity: String,
    },
    /// An Inca path failed to resolve against a document.
    PathNotFound {
        /// Rendered form of the path that failed.
        path: String,
    },
    /// An Inca path string could not be parsed.
    InvalidPath {
        /// Description of the problem.
        message: String,
    },
    /// The document violates an Inca structural rule (e.g. the
    /// unique-branch-identifier restriction of the reporter spec).
    Constraint {
        /// Description of the violated rule.
        message: String,
    },
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::UnexpectedEof { offset, context } => {
                write!(f, "unexpected end of input at byte {offset} while reading {context}")
            }
            XmlError::Malformed { offset, message } => {
                write!(f, "malformed XML at byte {offset}: {message}")
            }
            XmlError::MismatchedTag { offset, expected, found } => write!(
                f,
                "mismatched end tag at byte {offset}: expected </{expected}>, found </{found}>"
            ),
            XmlError::UnclosedElement { name } => {
                write!(f, "document ended with <{name}> still open")
            }
            XmlError::TrailingContent { offset } => {
                write!(f, "content after document element at byte {offset}")
            }
            XmlError::UnknownEntity { offset, entity } => {
                write!(f, "unknown entity &{entity}; at byte {offset}")
            }
            XmlError::PathNotFound { path } => write!(f, "path not found: {path}"),
            XmlError::InvalidPath { message } => write!(f, "invalid Inca path: {message}"),
            XmlError::Constraint { message } => write!(f, "constraint violation: {message}"),
        }
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offsets() {
        let e = XmlError::Malformed { offset: 42, message: "boom".into() };
        assert!(e.to_string().contains("42"));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn display_mismatched_tag_names_both_sides() {
        let e = XmlError::MismatchedTag {
            offset: 7,
            expected: "metric".into(),
            found: "statistic".into(),
        };
        let s = e.to_string();
        assert!(s.contains("metric") && s.contains("statistic"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<XmlError>();
    }
}
