//! A lightweight owned element tree.
//!
//! The depot's hot path deliberately avoids building trees (see
//! [`crate::sax`]), but plenty of Inca components work on *small*
//! documents where a DOM is the right tool: reporter specification
//! files, service agreements, individual reports being inspected by a
//! data consumer. [`Element`] is that DOM: an owned, ordered tree of
//! elements and text with no parent pointers and no interior mutability,
//! so it is cheap to clone subtrees and safe to send across threads.

use crate::error::{XmlError, XmlResult};
use crate::sax::{parse_document, SaxHandler};
use crate::tokenizer::Attribute;
use crate::writer::XmlWriter;

/// A child of an [`Element`]: either a nested element or a text run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A nested element.
    Element(Element),
    /// A run of character data (already unescaped).
    Text(String),
}

impl Node {
    /// Returns the element if this node is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        }
    }

    /// Returns the text if this node is a text run.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Node::Text(t) => Some(t),
            Node::Element(_) => None,
        }
    }
}

/// An owned XML element: name, attributes in document order, children.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

impl Element {
    /// Creates an empty element named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Element { name: name.into(), attributes: Vec::new(), children: Vec::new() }
    }

    /// Creates `<name>text</name>`. An empty `text` yields an empty
    /// element — `<name></name>` and a zero-length text node are
    /// indistinguishable after a parse round-trip, so none is stored.
    pub fn with_text(name: impl Into<String>, text: impl Into<String>) -> Self {
        let text = text.into();
        let mut e = Element::new(name);
        if !text.is_empty() {
            e.children.push(Node::Text(text));
        }
        e
    }

    /// Builder-style: adds an attribute and returns `self`.
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push((name.into(), value.into()));
        self
    }

    /// Builder-style: appends a child element and returns `self`.
    pub fn child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Builder-style: appends a text node and returns `self`.
    pub fn text_node(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Appends a child element in place.
    pub fn push_child(&mut self, child: Element) {
        self.children.push(Node::Element(child));
    }

    /// Looks up an attribute value by name.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attributes.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// First child element with the given name.
    pub fn find_child(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name == name)
    }

    /// Mutable variant of [`Element::find_child`].
    pub fn find_child_mut(&mut self, name: &str) -> Option<&mut Element> {
        self.children.iter_mut().find_map(|n| match n {
            Node::Element(e) if e.name == name => Some(e),
            _ => None,
        })
    }

    /// All child elements with the given name, in order.
    pub fn find_children<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.child_elements().filter(move |e| e.name == name)
    }

    /// All child elements, in order.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(Node::as_element)
    }

    /// Concatenation of the element's *direct* text children, trimmed.
    ///
    /// This is the accessor used for Inca leaf values such as
    /// `<value>998.67</value>`.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for node in &self.children {
            if let Node::Text(t) = node {
                out.push_str(t);
            }
        }
        out.trim().to_string()
    }

    /// Text of the first child element with the given name, if any.
    pub fn child_text(&self, name: &str) -> Option<String> {
        self.find_child(name).map(Element::text)
    }

    /// The Inca *unique identifier* of this branch: the text of the
    /// element's `ID` child (the reporter specification requires every
    /// branch element to carry one so paths can address it).
    pub fn branch_id(&self) -> Option<String> {
        self.child_text("ID")
    }

    /// Whether the element has no child elements (text only / empty).
    pub fn is_leaf(&self) -> bool {
        self.child_elements().next().is_none()
    }

    /// Depth-first search for the first descendant (including self)
    /// matching `pred`.
    pub fn find<'a>(&'a self, pred: &dyn Fn(&Element) -> bool) -> Option<&'a Element> {
        if pred(self) {
            return Some(self);
        }
        self.child_elements().find_map(|c| c.find(pred))
    }

    /// Total number of elements in this subtree (including self).
    pub fn element_count(&self) -> usize {
        1 + self.child_elements().map(Element::element_count).sum::<usize>()
    }

    /// Validates the Inca unique-branch rule on this subtree: every
    /// element that contains child elements must be unambiguously
    /// addressable among its siblings — either it is the only sibling
    /// with its tag name, or all same-named siblings carry distinct
    /// `ID` children.
    pub fn validate_unique_branches(&self) -> XmlResult<()> {
        let elements: Vec<&Element> = self.child_elements().collect();
        for e in &elements {
            let same_named: Vec<&&Element> =
                elements.iter().filter(|s| s.name == e.name).collect();
            if same_named.len() > 1 {
                let mut ids = Vec::new();
                for s in &same_named {
                    match s.branch_id() {
                        Some(id) => ids.push(id),
                        None => {
                            return Err(XmlError::Constraint {
                                message: format!(
                                    "element <{}> repeats under <{}> without an <ID> child",
                                    e.name, self.name
                                ),
                            })
                        }
                    }
                }
                ids.sort();
                for pair in ids.windows(2) {
                    if pair[0] == pair[1] {
                        return Err(XmlError::Constraint {
                            message: format!(
                                "duplicate branch ID {:?} among <{}> siblings under <{}>",
                                pair[0], e.name, self.name
                            ),
                        });
                    }
                }
            }
        }
        for e in elements {
            e.validate_unique_branches()?;
        }
        Ok(())
    }

    /// Parses a complete document into its root element.
    pub fn parse(input: &str) -> XmlResult<Element> {
        struct Builder {
            stack: Vec<Element>,
            root: Option<Element>,
        }
        impl SaxHandler for Builder {
            fn start_element(
                &mut self,
                name: &str,
                attrs: &[Attribute<'_>],
                _depth: usize,
            ) -> XmlResult<bool> {
                let mut e = Element::new(name);
                e.attributes = attrs
                    .iter()
                    .map(|a| (a.name.to_string(), a.value.to_string()))
                    .collect();
                self.stack.push(e);
                Ok(true)
            }
            fn end_element(&mut self, _name: &str, _depth: usize) -> XmlResult<bool> {
                let done = self.stack.pop().expect("balanced by SaxDriver");
                match self.stack.last_mut() {
                    Some(parent) => parent.children.push(Node::Element(done)),
                    None => self.root = Some(done),
                }
                Ok(true)
            }
            fn characters(&mut self, text: &str, _depth: usize) -> XmlResult<bool> {
                if let Some(open) = self.stack.last_mut() {
                    // Skip pure indentation so parse→write roundtrips stay stable.
                    if !text.trim().is_empty() {
                        open.children.push(Node::Text(text.to_string()));
                    }
                }
                Ok(true)
            }
        }
        let mut b = Builder { stack: Vec::new(), root: None };
        parse_document(input, &mut b)?;
        b.root.ok_or(XmlError::Malformed {
            offset: 0,
            message: "document contains no element".into(),
        })
    }

    /// Serializes this subtree as compact XML (no indentation).
    pub fn to_xml(&self) -> String {
        let mut w = XmlWriter::compact();
        w.write_element(self);
        w.finish()
    }

    /// Serializes this subtree with two-space indentation.
    pub fn to_pretty_xml(&self) -> String {
        let mut w = XmlWriter::pretty();
        w.write_element(self);
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::new("metric")
            .child(Element::with_text("ID", "bandwidth"))
            .child(
                Element::new("statistic")
                    .child(Element::with_text("ID", "upperBound"))
                    .child(Element::with_text("value", "998.67").attr("units", "Mbps")),
            )
            .child(
                Element::new("statistic")
                    .child(Element::with_text("ID", "lowerBound"))
                    .child(Element::with_text("value", "984.99").attr("units", "Mbps")),
            )
    }

    #[test]
    fn builder_and_accessors() {
        let e = sample();
        assert_eq!(e.branch_id().as_deref(), Some("bandwidth"));
        assert_eq!(e.find_children("statistic").count(), 2);
        let upper = e
            .find_children("statistic")
            .find(|s| s.branch_id().as_deref() == Some("upperBound"))
            .unwrap();
        assert_eq!(upper.child_text("value").as_deref(), Some("998.67"));
        assert_eq!(upper.find_child("value").unwrap().attribute("units"), Some("Mbps"));
    }

    #[test]
    fn parse_roundtrip() {
        let xml = sample().to_xml();
        let parsed = Element::parse(&xml).unwrap();
        assert_eq!(parsed, sample());
    }

    #[test]
    fn pretty_roundtrip_ignores_indentation() {
        let pretty = sample().to_pretty_xml();
        assert!(pretty.contains('\n'));
        let parsed = Element::parse(&pretty).unwrap();
        assert_eq!(parsed, sample());
    }

    #[test]
    fn text_concatenates_and_trims() {
        let e = Element::parse("<a> hello <b/> world </a>").unwrap();
        assert_eq!(e.text(), "hello  world");
    }

    #[test]
    fn escaped_content_roundtrips() {
        let e = Element::with_text("err", "exit 1: <stdin> & friends \"quoted\"");
        let parsed = Element::parse(&e.to_xml()).unwrap();
        assert_eq!(parsed.text(), "exit 1: <stdin> & friends \"quoted\"");
    }

    #[test]
    fn element_count() {
        assert_eq!(sample().element_count(), 8);
        assert_eq!(Element::new("x").element_count(), 1);
    }

    #[test]
    fn find_descendant() {
        let e = sample();
        let v = e.find(&|el| el.name == "value" && el.text() == "984.99");
        assert!(v.is_some());
        assert!(e.find(&|el| el.name == "nope").is_none());
    }

    #[test]
    fn unique_branches_accepts_distinct_ids() {
        sample().validate_unique_branches().unwrap();
    }

    #[test]
    fn unique_branches_rejects_missing_id() {
        let e = Element::new("m")
            .child(Element::new("s").child(Element::with_text("v", "1")))
            .child(Element::new("s").child(Element::with_text("v", "2")));
        assert!(matches!(
            e.validate_unique_branches(),
            Err(XmlError::Constraint { .. })
        ));
    }

    #[test]
    fn unique_branches_rejects_duplicate_id() {
        let e = Element::new("m")
            .child(Element::new("s").child(Element::with_text("ID", "x")))
            .child(Element::new("s").child(Element::with_text("ID", "x")));
        assert!(matches!(
            e.validate_unique_branches(),
            Err(XmlError::Constraint { .. })
        ));
    }

    #[test]
    fn unique_branches_allows_single_unnamed() {
        let e = Element::new("m").child(Element::new("s").child(Element::with_text("v", "1")));
        e.validate_unique_branches().unwrap();
    }

    #[test]
    fn parse_rejects_empty_document() {
        assert!(Element::parse("").is_err());
        assert!(Element::parse("   ").is_err());
    }

    #[test]
    fn find_child_mut_allows_update() {
        let mut e = sample();
        e.find_child_mut("ID").unwrap().children = vec![Node::Text("latency".into())];
        assert_eq!(e.branch_id().as_deref(), Some("latency"));
    }

    #[test]
    fn node_accessors() {
        let n = Node::Text("t".into());
        assert_eq!(n.as_text(), Some("t"));
        assert!(n.as_element().is_none());
        let n = Node::Element(Element::new("e"));
        assert!(n.as_text().is_none());
        assert_eq!(n.as_element().unwrap().name, "e");
    }
}
