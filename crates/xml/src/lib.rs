//! Minimal XML substrate for inca-rs.
//!
//! The Inca framework (SC 2004) is built around XML everywhere: reporters
//! emit XML reports, the centralized controller wraps them in XML
//! envelopes, and the depot caches all current data in a **single XML
//! document** that is stream-parsed (SAX) on every update — a design
//! decision the paper measures directly (§3.2.2, §5.2.2, Figure 9).
//!
//! Because that SAX-on-one-file design is itself a measured artifact of
//! the paper, this crate implements the XML machinery from scratch rather
//! than pulling in an external parser:
//!
//! * [`tokenizer`] — a pull tokenizer over a UTF-8 string,
//! * [`sax`] — SAX-style event dispatch built on the tokenizer,
//! * [`tree`] — a lightweight owned element tree for when a DOM is
//!   genuinely needed (small documents: specs, agreements),
//! * [`writer`] — serialization with correct escaping,
//! * [`path`] — Inca *path addressing* (`value, statistic=lowerBound,
//!   metric=bandwidth`) used to locate data inside open-schema report
//!   bodies,
//! * [`escape`] — text/attribute escaping primitives,
//! * [`skim`] — a structural well-formedness skim (one tokenizer pass,
//!   no tree) for the binary wire fast path.
//!
//! Only the XML subset Inca needs is supported: elements, attributes,
//! text, CDATA, comments, processing instructions and the XML
//! declaration. DTDs and namespaces-aware processing are out of scope
//! (the 2004 system did not rely on them either).

pub mod error;
pub mod escape;
pub mod path;
pub mod sax;
pub mod skim;
pub mod tokenizer;
pub mod tree;
pub mod writer;

pub use error::{XmlError, XmlResult};
pub use skim::skim_balanced;
pub use path::{IncaPath, PathStep};
pub use sax::{SaxDriver, SaxHandler};
pub use tokenizer::{Attribute, Token, Tokenizer};
pub use tree::{Element, Node};
pub use writer::XmlWriter;
