//! Structural well-formedness skim: one tokenizer pass, no tree.
//!
//! The binary wire fast path (inca-wire) splices report bytes into the
//! depot cache without materializing an [`crate::Element`] tree — but
//! the cache must never hold garbage, because a single unbalanced tag
//! would corrupt the whole VO document. [`skim_balanced`] is the cheap
//! safety check for that path: it verifies the input is exactly one
//! well-formed element (balanced tags, nothing but whitespace, comments
//! and processing instructions outside the root) and returns the root
//! element's name, without building a tree, copying text, or expanding
//! entity references in attribute values beyond what the tokenizer
//! already does. Cost is one linear pass with no per-element
//! allocation.

use crate::error::{XmlError, XmlResult};
use crate::tokenizer::{Token, Tokenizer};

/// Verifies that `input` is a single balanced XML element and returns
/// the root element's name.
///
/// This is a *structural* check only: element nesting must balance and
/// exactly one root element must exist. It deliberately does not
/// validate schema-level shape (that is [`crate::Element::parse`] plus
/// the caller's own checks — the slow path this skim exists to avoid).
///
/// ```
/// use inca_xml::skim_balanced;
/// assert_eq!(skim_balanced("<incaReport><body/></incaReport>").unwrap(), "incaReport");
/// assert!(skim_balanced("<a><b></a></b>").is_err());
/// assert!(skim_balanced("<a/><b/>").is_err());
/// ```
pub fn skim_balanced(input: &str) -> XmlResult<&str> {
    let mut tok = Tokenizer::new(input);
    let mut stack: Vec<&str> = Vec::new();
    let mut root: Option<&str> = None;
    loop {
        let offset = tok.offset();
        let token = match tok.next_token()? {
            Some(t) => t,
            None => break,
        };
        match token {
            Token::StartTag { name, self_closing, .. } => {
                if root.is_some() && stack.is_empty() {
                    return Err(XmlError::TrailingContent { offset });
                }
                if root.is_none() {
                    root = Some(name);
                }
                if !self_closing {
                    stack.push(name);
                }
            }
            Token::EndTag { name } => match stack.pop() {
                Some(open) if open == name => {}
                Some(open) => {
                    return Err(XmlError::MismatchedTag {
                        offset,
                        expected: open.to_string(),
                        found: name.to_string(),
                    })
                }
                None => {
                    return Err(XmlError::Malformed {
                        offset,
                        message: format!("close tag </{name}> with no element open"),
                    })
                }
            },
            Token::Text(text) if stack.is_empty() => {
                if !text.trim().is_empty() {
                    if root.is_some() {
                        return Err(XmlError::TrailingContent { offset });
                    }
                    return Err(XmlError::Malformed {
                        offset,
                        message: "text before the root element".into(),
                    });
                }
            }
            Token::CData(_) if stack.is_empty() => {
                return Err(XmlError::Malformed {
                    offset,
                    message: "CDATA outside the root element".into(),
                });
            }
            _ => {}
        }
    }
    if let Some(name) = stack.pop() {
        return Err(XmlError::UnclosedElement { name: name.to_string() });
    }
    match root {
        Some(name) => Ok(name),
        None => Err(XmlError::Malformed { offset: 0, message: "no element found".into() }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_balanced_single_root() {
        assert_eq!(skim_balanced("<incaReport><x>1 &amp; 2</x></incaReport>").unwrap(), "incaReport");
        assert_eq!(skim_balanced("<r/>").unwrap(), "r");
        assert_eq!(skim_balanced("  <!-- c --> <r a=\"1\"><b/></r> ").unwrap(), "r");
    }

    #[test]
    fn rejects_structural_garbage() {
        assert!(skim_balanced("").is_err());
        assert!(skim_balanced("just text").is_err());
        assert!(skim_balanced("<a>").is_err());
        assert!(skim_balanced("</a>").is_err());
        assert!(skim_balanced("<a><b></a></b>").is_err());
        assert!(skim_balanced("<a/><b/>").is_err());
        assert!(skim_balanced("<a/>trailing").is_err());
        assert!(skim_balanced("<a>&bogus;</a>").is_err());
    }

    #[test]
    fn skim_does_not_validate_schema() {
        // Balanced but meaningless XML passes: schema checks stay with
        // Element::parse / Report::parse on the slow path.
        assert_eq!(skim_balanced("<notAReport><whatever/></notAReport>").unwrap(), "notAReport");
    }
}
