//! XML serialization.
//!
//! [`XmlWriter`] produces either compact output (the wire format used
//! between Inca components, where every byte is parsed again downstream)
//! or indented output (status pages, specification files meant for
//! humans). It can be driven from an [`Element`] tree or event-by-event,
//! which is how the depot splices a new report into the cache without
//! ever materializing the cache as a tree.

use crate::escape::{escape_attr, escape_text};
use crate::tree::{Element, Node};

/// Streaming XML writer with optional pretty-printing.
#[derive(Debug)]
pub struct XmlWriter {
    out: String,
    indent: Option<&'static str>,
    depth: usize,
    /// Whether the element on top of the stack has children so far
    /// (drives pretty-printed closing-tag placement).
    had_children: Vec<bool>,
    /// True when the last emitted item was text (suppresses indentation
    /// before the closing tag so text content stays exact).
    last_was_text: bool,
}

impl XmlWriter {
    /// Writer producing compact single-line output.
    pub fn compact() -> Self {
        XmlWriter {
            out: String::new(),
            indent: None,
            depth: 0,
            had_children: Vec::new(),
            last_was_text: false,
        }
    }

    /// Writer producing two-space-indented output.
    pub fn pretty() -> Self {
        XmlWriter {
            out: String::new(),
            indent: Some("  "),
            depth: 0,
            had_children: Vec::new(),
            last_was_text: false,
        }
    }

    /// Emits the standard `<?xml version="1.0"?>` declaration.
    pub fn declaration(&mut self) {
        self.out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        if self.indent.is_some() {
            self.out.push('\n');
        }
    }

    fn newline_indent(&mut self) {
        if let Some(indent) = self.indent {
            if !self.out.is_empty() && !self.out.ends_with('\n') {
                self.out.push('\n');
            }
            for _ in 0..self.depth {
                self.out.push_str(indent);
            }
        }
    }

    /// Opens an element with attributes.
    pub fn start_element<'a, I>(&mut self, name: &str, attrs: I)
    where
        I: IntoIterator<Item = (&'a str, &'a str)>,
    {
        self.mark_parent_has_children();
        self.newline_indent();
        self.out.push('<');
        self.out.push_str(name);
        for (k, v) in attrs {
            self.out.push(' ');
            self.out.push_str(k);
            self.out.push_str("=\"");
            self.out.push_str(&escape_attr(v));
            self.out.push('"');
        }
        self.out.push('>');
        self.depth += 1;
        self.had_children.push(false);
        self.last_was_text = false;
    }

    /// Closes the innermost open element.
    pub fn end_element(&mut self, name: &str) {
        self.depth = self.depth.saturating_sub(1);
        let had_children = self.had_children.pop().unwrap_or(false);
        if had_children && !self.last_was_text {
            self.newline_indent();
        }
        self.out.push_str("</");
        self.out.push_str(name);
        self.out.push('>');
        self.last_was_text = false;
    }

    /// Emits escaped character data.
    pub fn text(&mut self, text: &str) {
        self.mark_parent_has_children();
        self.out.push_str(&escape_text(text));
        self.last_was_text = true;
    }

    /// Emits a pre-escaped/raw XML fragment verbatim. Used by the depot
    /// to splice an already-serialized report into the cache without
    /// re-serializing it.
    pub fn raw(&mut self, fragment: &str) {
        self.mark_parent_has_children();
        self.out.push_str(fragment);
        self.last_was_text = false;
    }

    /// Emits a comment.
    pub fn comment(&mut self, text: &str) {
        self.mark_parent_has_children();
        self.newline_indent();
        self.out.push_str("<!--");
        self.out.push_str(text);
        self.out.push_str("-->");
        self.last_was_text = false;
    }

    fn mark_parent_has_children(&mut self) {
        if let Some(top) = self.had_children.last_mut() {
            *top = true;
        }
    }

    /// Writes a whole element subtree.
    pub fn write_element(&mut self, element: &Element) {
        let attrs = element.attributes.iter().map(|(k, v)| (k.as_str(), v.as_str()));
        self.start_element(&element.name, attrs);
        for child in &element.children {
            match child {
                Node::Element(e) => self.write_element(e),
                Node::Text(t) => self.text(t),
            }
        }
        self.end_element(&element.name);
    }

    /// Number of bytes produced so far.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Consumes the writer, returning the document.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Element;

    #[test]
    fn compact_output() {
        let mut w = XmlWriter::compact();
        w.start_element("a", [("x", "1")]);
        w.text("hi");
        w.end_element("a");
        assert_eq!(w.finish(), r#"<a x="1">hi</a>"#);
    }

    #[test]
    fn attributes_escaped() {
        let mut w = XmlWriter::compact();
        w.start_element("a", [("msg", "x<\"y\">&z")]);
        w.end_element("a");
        assert_eq!(w.finish(), r#"<a msg="x&lt;&quot;y&quot;&gt;&amp;z"></a>"#);
    }

    #[test]
    fn text_escaped() {
        let mut w = XmlWriter::compact();
        w.start_element("a", []);
        w.text("1 < 2 & 3 > 2");
        w.end_element("a");
        assert_eq!(w.finish(), "<a>1 &lt; 2 &amp; 3 &gt; 2</a>");
    }

    #[test]
    fn pretty_indents_nested_elements() {
        let tree = Element::new("outer")
            .child(Element::with_text("inner", "v"))
            .child(Element::new("empty"));
        let mut w = XmlWriter::pretty();
        w.write_element(&tree);
        let s = w.finish();
        assert_eq!(s, "<outer>\n  <inner>v</inner>\n  <empty></empty>\n</outer>");
    }

    #[test]
    fn pretty_keeps_text_inline() {
        let mut w = XmlWriter::pretty();
        w.write_element(&Element::with_text("a", "text"));
        assert_eq!(w.finish(), "<a>text</a>");
    }

    #[test]
    fn declaration_written_once() {
        let mut w = XmlWriter::compact();
        w.declaration();
        w.start_element("r", []);
        w.end_element("r");
        assert_eq!(w.finish(), "<?xml version=\"1.0\" encoding=\"UTF-8\"?><r></r>");
    }

    #[test]
    fn raw_fragment_passthrough() {
        let mut w = XmlWriter::compact();
        w.start_element("cache", []);
        w.raw("<report><x>1</x></report>");
        w.end_element("cache");
        assert_eq!(w.finish(), "<cache><report><x>1</x></report></cache>");
    }

    #[test]
    fn comment_written() {
        let mut w = XmlWriter::compact();
        w.start_element("a", []);
        w.comment(" note ");
        w.end_element("a");
        assert_eq!(w.finish(), "<a><!-- note --></a>");
    }

    #[test]
    fn len_tracks_bytes() {
        let mut w = XmlWriter::compact();
        assert!(w.is_empty());
        w.start_element("abc", []);
        assert_eq!(w.len(), 5);
        assert!(!w.is_empty());
    }
}
