//! A pull tokenizer for the XML subset used by Inca.
//!
//! The tokenizer operates on a borrowed UTF-8 string and yields
//! [`Token`]s without building any tree, which is what makes the depot's
//! streaming cache updates possible: the 2004 paper explicitly replaced
//! a DOM-based cache with SAX parsing because DOM memory "grew too
//! rapidly with the size of the data" (§3.2.2). All tokens borrow from
//! the input where possible; text is unescaped lazily and only allocates
//! when an entity reference is present.

use std::borrow::Cow;

use crate::error::{XmlError, XmlResult};
use crate::escape::unescape;

/// A single `name="value"` attribute on a start tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute<'a> {
    /// Attribute name, borrowed from the document.
    pub name: &'a str,
    /// Attribute value with entity references expanded.
    pub value: Cow<'a, str>,
}

/// One lexical token of an XML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token<'a> {
    /// The `<?xml …?>` declaration, passed through verbatim (content
    /// between `<?xml` and `?>`).
    Decl(&'a str),
    /// A processing instruction other than the XML declaration.
    Pi {
        /// PI target (the first word).
        target: &'a str,
        /// Remaining PI content, possibly empty.
        data: &'a str,
    },
    /// A comment, without the `<!--`/`-->` delimiters.
    Comment(&'a str),
    /// An element start tag (or empty-element tag when `self_closing`).
    StartTag {
        /// Element name.
        name: &'a str,
        /// Attributes in document order.
        attrs: Vec<Attribute<'a>>,
        /// Whether the tag was `<name …/>`.
        self_closing: bool,
    },
    /// An element end tag.
    EndTag {
        /// Element name.
        name: &'a str,
    },
    /// Character data with entity references expanded. Whitespace-only
    /// runs between tags are still reported; higher layers decide
    /// whether they are significant.
    Text(Cow<'a, str>),
    /// A CDATA section's raw content (no unescaping applies).
    CData(&'a str),
}

impl Token<'_> {
    /// Returns the element name for start/end tags, `None` otherwise.
    pub fn tag_name(&self) -> Option<&str> {
        match self {
            Token::StartTag { name, .. } | Token::EndTag { name } => Some(name),
            _ => None,
        }
    }
}

/// Pull tokenizer over a borrowed document.
///
/// ```
/// use inca_xml::{Token, Tokenizer};
/// let mut t = Tokenizer::new("<a x=\"1\">hi</a>");
/// assert!(matches!(t.next_token().unwrap(), Some(Token::StartTag { name: "a", .. })));
/// assert!(matches!(t.next_token().unwrap(), Some(Token::Text(_))));
/// assert!(matches!(t.next_token().unwrap(), Some(Token::EndTag { name: "a" })));
/// assert!(t.next_token().unwrap().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct Tokenizer<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Tokenizer<'a> {
    /// Creates a tokenizer positioned at the start of `input`.
    pub fn new(input: &'a str) -> Self {
        Tokenizer { input, pos: 0 }
    }

    /// Current byte offset into the input.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// The full input this tokenizer reads from.
    pub fn input(&self) -> &'a str {
        self.input
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn eof_err(&self, context: &'static str) -> XmlError {
        XmlError::UnexpectedEof { offset: self.pos, context }
    }

    fn malformed(&self, message: impl Into<String>) -> XmlError {
        XmlError::Malformed { offset: self.pos, message: message.into() }
    }

    /// Returns the next token, or `None` at end of input.
    pub fn next_token(&mut self) -> XmlResult<Option<Token<'a>>> {
        if self.pos >= self.input.len() {
            return Ok(None);
        }
        if self.rest().starts_with('<') {
            self.read_markup().map(Some)
        } else {
            self.read_text().map(Some)
        }
    }

    fn read_text(&mut self) -> XmlResult<Token<'a>> {
        let start = self.pos;
        let end = self.rest().find('<').map(|i| start + i).unwrap_or(self.input.len());
        let raw = &self.input[start..end];
        self.pos = end;
        let text = unescape(raw, start)?;
        Ok(Token::Text(text))
    }

    fn read_markup(&mut self) -> XmlResult<Token<'a>> {
        let rest = self.rest();
        if let Some(body) = rest.strip_prefix("<!--") {
            let end = body.find("-->").ok_or_else(|| self.eof_err("comment"))?;
            let comment = &body[..end];
            self.pos += 4 + end + 3;
            return Ok(Token::Comment(comment));
        }
        if let Some(body) = rest.strip_prefix("<![CDATA[") {
            let end = body.find("]]>").ok_or_else(|| self.eof_err("CDATA section"))?;
            let cdata = &body[..end];
            self.pos += 9 + end + 3;
            return Ok(Token::CData(cdata));
        }
        if let Some(body) = rest.strip_prefix("<?") {
            let end = body.find("?>").ok_or_else(|| self.eof_err("processing instruction"))?;
            let content = &body[..end];
            self.pos += 2 + end + 2;
            if content.starts_with("xml")
                && content[3..].chars().next().map_or(true, |c| c.is_ascii_whitespace())
            {
                return Ok(Token::Decl(content[3..].trim()));
            }
            let (target, data) = match content.find(|c: char| c.is_ascii_whitespace()) {
                Some(i) => (&content[..i], content[i..].trim_start()),
                None => (content, ""),
            };
            return Ok(Token::Pi { target, data });
        }
        if rest.starts_with("<!") {
            return Err(self.malformed("DTD declarations are not supported"));
        }
        if let Some(body) = rest.strip_prefix("</") {
            let end = body.find('>').ok_or_else(|| self.eof_err("end tag"))?;
            let name = body[..end].trim();
            if name.is_empty() || !is_name(name) {
                return Err(self.malformed(format!("invalid end tag name {name:?}")));
            }
            self.pos += 2 + end + 1;
            return Ok(Token::EndTag { name });
        }
        self.read_start_tag()
    }

    fn read_start_tag(&mut self) -> XmlResult<Token<'a>> {
        debug_assert!(self.rest().starts_with('<'));
        let tag_start = self.pos;
        self.pos += 1; // consume '<'
        let name = self.read_name()?;
        let mut attrs = Vec::new();
        loop {
            self.skip_whitespace();
            let rest = self.rest();
            if rest.is_empty() {
                return Err(XmlError::UnexpectedEof { offset: tag_start, context: "start tag" });
            }
            if let Some(_r) = rest.strip_prefix("/>") {
                self.pos += 2;
                return Ok(Token::StartTag { name, attrs, self_closing: true });
            }
            if rest.starts_with('>') {
                self.pos += 1;
                return Ok(Token::StartTag { name, attrs, self_closing: false });
            }
            attrs.push(self.read_attribute()?);
        }
    }

    fn read_attribute(&mut self) -> XmlResult<Attribute<'a>> {
        let name = self.read_name()?;
        self.skip_whitespace();
        if !self.rest().starts_with('=') {
            return Err(self.malformed(format!("attribute {name:?} is missing '='")));
        }
        self.pos += 1;
        self.skip_whitespace();
        let quote = self
            .rest()
            .chars()
            .next()
            .ok_or_else(|| self.eof_err("attribute value"))?;
        if quote != '"' && quote != '\'' {
            return Err(self.malformed("attribute value must be quoted"));
        }
        self.pos += 1;
        let value_start = self.pos;
        let end = self
            .rest()
            .find(quote)
            .ok_or_else(|| self.eof_err("attribute value"))?;
        let raw = &self.input[value_start..value_start + end];
        self.pos = value_start + end + 1;
        let value = unescape(raw, value_start)?;
        Ok(Attribute { name, value })
    }

    fn read_name(&mut self) -> XmlResult<&'a str> {
        let rest = self.rest();
        let len = rest
            .char_indices()
            .find(|&(_, c)| !is_name_char(c))
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        if len == 0 {
            return Err(self.malformed("expected a name"));
        }
        let name = &rest[..len];
        if !is_name(name) {
            return Err(self.malformed(format!("invalid name {name:?}")));
        }
        self.pos += len;
        Ok(name)
    }

    fn skip_whitespace(&mut self) {
        let rest = self.rest();
        let len = rest
            .char_indices()
            .find(|&(_, c)| !c.is_ascii_whitespace())
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        self.pos += len;
    }
}

/// Whether `c` may appear inside an XML name (simplified rule).
fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':')
}

/// Whether `s` is a valid XML name (simplified: must not start with a
/// digit, `-` or `.`).
fn is_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(is_name_char)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_tokens(input: &str) -> Vec<Token<'_>> {
        let mut t = Tokenizer::new(input);
        let mut out = Vec::new();
        while let Some(tok) = t.next_token().unwrap() {
            out.push(tok);
        }
        out
    }

    #[test]
    fn empty_input_yields_no_tokens() {
        assert!(all_tokens("").is_empty());
    }

    #[test]
    fn simple_element() {
        let toks = all_tokens("<a>text</a>");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0], Token::StartTag { name: "a", attrs: vec![], self_closing: false });
        assert_eq!(toks[1], Token::Text(Cow::Borrowed("text")));
        assert_eq!(toks[2], Token::EndTag { name: "a" });
    }

    #[test]
    fn self_closing_tag() {
        let toks = all_tokens("<br/>");
        assert_eq!(toks[0], Token::StartTag { name: "br", attrs: vec![], self_closing: true });
    }

    #[test]
    fn self_closing_with_space() {
        let toks = all_tokens("<br />");
        assert!(matches!(toks[0], Token::StartTag { self_closing: true, .. }));
    }

    #[test]
    fn attributes_double_and_single_quoted() {
        let toks = all_tokens(r#"<a x="1" y='two'/>"#);
        match &toks[0] {
            Token::StartTag { attrs, .. } => {
                assert_eq!(attrs[0], Attribute { name: "x", value: Cow::Borrowed("1") });
                assert_eq!(attrs[1], Attribute { name: "y", value: Cow::Borrowed("two") });
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn attribute_value_unescaped() {
        let toks = all_tokens(r#"<a msg="a&amp;b &lt;c&gt;"/>"#);
        match &toks[0] {
            Token::StartTag { attrs, .. } => assert_eq!(attrs[0].value, "a&b <c>"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn text_is_unescaped() {
        let toks = all_tokens("<a>1 &lt; 2 &amp;&amp; 3 &gt; 2</a>");
        assert_eq!(toks[1], Token::Text(Cow::Owned("1 < 2 && 3 > 2".to_string())));
    }

    #[test]
    fn xml_declaration() {
        let toks = all_tokens("<?xml version=\"1.0\" encoding=\"UTF-8\"?><r/>");
        assert_eq!(toks[0], Token::Decl("version=\"1.0\" encoding=\"UTF-8\""));
    }

    #[test]
    fn processing_instruction() {
        let toks = all_tokens("<?php echo 1; ?><r/>");
        assert_eq!(toks[0], Token::Pi { target: "php", data: "echo 1; " });
    }

    #[test]
    fn comment() {
        let toks = all_tokens("<!-- a comment --><r/>");
        assert_eq!(toks[0], Token::Comment(" a comment "));
    }

    #[test]
    fn cdata_not_unescaped() {
        let toks = all_tokens("<a><![CDATA[1 < 2 && raw & stuff]]></a>");
        assert_eq!(toks[1], Token::CData("1 < 2 && raw & stuff"));
    }

    #[test]
    fn nested_structure() {
        let toks = all_tokens("<metric><ID>bandwidth</ID></metric>");
        let names: Vec<_> = toks.iter().filter_map(Token::tag_name).collect();
        assert_eq!(names, ["metric", "ID", "ID", "metric"]);
    }

    #[test]
    fn unterminated_comment_errors() {
        let mut t = Tokenizer::new("<!-- never ends");
        assert!(matches!(t.next_token(), Err(XmlError::UnexpectedEof { .. })));
    }

    #[test]
    fn unterminated_tag_errors() {
        let mut t = Tokenizer::new("<a x=\"1\"");
        assert!(matches!(t.next_token(), Err(XmlError::UnexpectedEof { .. })));
    }

    #[test]
    fn unterminated_cdata_errors() {
        let mut t = Tokenizer::new("<![CDATA[ oops");
        assert!(matches!(t.next_token(), Err(XmlError::UnexpectedEof { .. })));
    }

    #[test]
    fn dtd_rejected() {
        let mut t = Tokenizer::new("<!DOCTYPE html>");
        assert!(matches!(t.next_token(), Err(XmlError::Malformed { .. })));
    }

    #[test]
    fn unquoted_attribute_rejected() {
        let mut t = Tokenizer::new("<a x=1/>");
        assert!(matches!(t.next_token(), Err(XmlError::Malformed { .. })));
    }

    #[test]
    fn missing_equals_rejected() {
        let mut t = Tokenizer::new("<a x \"1\"/>");
        assert!(matches!(t.next_token(), Err(XmlError::Malformed { .. })));
    }

    #[test]
    fn invalid_name_rejected() {
        let mut t = Tokenizer::new("<1bad/>");
        assert!(t.next_token().is_err());
    }

    #[test]
    fn names_allow_inca_characters() {
        // Branch-identifier-ish names with dots, dashes, colons.
        let toks = all_tokens("<tg:softenv-db.v2/>");
        assert_eq!(toks[0].tag_name(), Some("tg:softenv-db.v2"));
    }

    #[test]
    fn offset_tracks_progress() {
        let mut t = Tokenizer::new("<a>x</a>");
        assert_eq!(t.offset(), 0);
        t.next_token().unwrap();
        assert_eq!(t.offset(), 3);
        t.next_token().unwrap();
        assert_eq!(t.offset(), 4);
        t.next_token().unwrap();
        assert_eq!(t.offset(), 8);
    }

    #[test]
    fn whitespace_between_elements_is_text() {
        let toks = all_tokens("<a>\n  <b/>\n</a>");
        assert!(matches!(&toks[1], Token::Text(t) if t.trim().is_empty()));
    }
}
