//! SAX-style event dispatch over the pull tokenizer.
//!
//! The Inca depot keeps all current reports in one XML document and uses
//! SAX parsing for both updates and queries (§3.2.2). [`SaxDriver`]
//! walks a document, enforces well-formedness (balanced, properly nested
//! tags, a single document element), and hands events to a
//! [`SaxHandler`]. Handlers can terminate the walk early by returning
//! `Ok(false)` from any callback, which is how queries stop as soon as
//! the requested branch has been extracted.

use crate::error::{XmlError, XmlResult};
use crate::tokenizer::{Attribute, Token, Tokenizer};

/// Receiver of SAX events.
///
/// All callbacks default to "keep going, do nothing" so handlers only
/// implement what they need. Returning `Ok(false)` stops the driver
/// without error (used for early-exit queries).
pub trait SaxHandler {
    /// Called for each element start tag. `depth` is the depth of the
    /// element itself (the document element has depth 0).
    fn start_element(
        &mut self,
        name: &str,
        attrs: &[Attribute<'_>],
        depth: usize,
    ) -> XmlResult<bool> {
        let _ = (name, attrs, depth);
        Ok(true)
    }

    /// Called for each element end tag (also synthesized for
    /// self-closing tags immediately after `start_element`).
    fn end_element(&mut self, name: &str, depth: usize) -> XmlResult<bool> {
        let _ = (name, depth);
        Ok(true)
    }

    /// Called for character data (entity references already expanded)
    /// and CDATA content. `depth` is the depth of the enclosing element.
    fn characters(&mut self, text: &str, depth: usize) -> XmlResult<bool> {
        let _ = (text, depth);
        Ok(true)
    }

    /// Called for comments. Most handlers ignore these.
    fn comment(&mut self, text: &str) -> XmlResult<bool> {
        let _ = text;
        Ok(true)
    }

    /// Called for processing instructions and the XML declaration.
    fn processing_instruction(&mut self, target: &str, data: &str) -> XmlResult<bool> {
        let _ = (target, data);
        Ok(true)
    }
}

/// Drives a [`SaxHandler`] over a document, enforcing well-formedness.
#[derive(Debug, Default)]
pub struct SaxDriver {
    /// Stack of currently open element names.
    stack: Vec<String>,
    /// Whether the document element has been closed.
    document_done: bool,
}

impl SaxDriver {
    /// Creates a fresh driver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses `input` to completion (or early handler exit).
    ///
    /// Returns `Ok(true)` if the whole document was consumed, `Ok(false)`
    /// if the handler stopped the walk early.
    pub fn parse<H: SaxHandler>(&mut self, input: &str, handler: &mut H) -> XmlResult<bool> {
        let mut tok = Tokenizer::new(input);
        while let Some(token) = tok.next_token()? {
            let keep_going = self.dispatch(&mut tok, token, handler)?;
            if !keep_going {
                return Ok(false);
            }
        }
        if let Some(open) = self.stack.last() {
            return Err(XmlError::UnclosedElement { name: open.clone() });
        }
        Ok(true)
    }

    fn dispatch<H: SaxHandler>(
        &mut self,
        tok: &mut Tokenizer<'_>,
        token: Token<'_>,
        handler: &mut H,
    ) -> XmlResult<bool> {
        match token {
            Token::StartTag { name, attrs, self_closing } => {
                if self.document_done {
                    return Err(XmlError::TrailingContent { offset: tok.offset() });
                }
                let depth = self.stack.len();
                let keep = handler.start_element(name, &attrs, depth)?;
                if self_closing {
                    if self.stack.is_empty() {
                        self.document_done = true;
                    }
                    if !keep {
                        return Ok(false);
                    }
                    return handler.end_element(name, depth);
                }
                self.stack.push(name.to_string());
                Ok(keep)
            }
            Token::EndTag { name } => {
                let expected = self.stack.pop().ok_or_else(|| XmlError::MismatchedTag {
                    offset: tok.offset(),
                    expected: "(none open)".into(),
                    found: name.to_string(),
                })?;
                if expected != name {
                    return Err(XmlError::MismatchedTag {
                        offset: tok.offset(),
                        expected,
                        found: name.to_string(),
                    });
                }
                if self.stack.is_empty() {
                    self.document_done = true;
                }
                handler.end_element(name, self.stack.len())
            }
            Token::Text(text) => {
                if self.stack.is_empty() {
                    if text.trim().is_empty() {
                        return Ok(true);
                    }
                    return Err(XmlError::TrailingContent { offset: tok.offset() });
                }
                handler.characters(&text, self.stack.len() - 1)
            }
            Token::CData(text) => {
                if self.stack.is_empty() {
                    return Err(XmlError::TrailingContent { offset: tok.offset() });
                }
                handler.characters(text, self.stack.len() - 1)
            }
            Token::Comment(text) => handler.comment(text),
            Token::Decl(data) => handler.processing_instruction("xml", data),
            Token::Pi { target, data } => handler.processing_instruction(target, data),
        }
    }
}

/// Convenience: parse a document with a handler, requiring full
/// consumption (no early exit) and well-formedness.
pub fn parse_document<H: SaxHandler>(input: &str, handler: &mut H) -> XmlResult<()> {
    let completed = SaxDriver::new().parse(input, handler)?;
    debug_assert!(completed || true);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records the event stream as strings for assertions.
    #[derive(Default)]
    struct Recorder {
        events: Vec<String>,
        stop_after: Option<usize>,
    }

    impl Recorder {
        fn push(&mut self, e: String) -> bool {
            self.events.push(e);
            match self.stop_after {
                Some(n) => self.events.len() < n,
                None => true,
            }
        }
    }

    impl SaxHandler for Recorder {
        fn start_element(
            &mut self,
            name: &str,
            attrs: &[Attribute<'_>],
            depth: usize,
        ) -> XmlResult<bool> {
            let attrs: Vec<String> =
                attrs.iter().map(|a| format!("{}={}", a.name, a.value)).collect();
            Ok(self.push(format!("start:{name}@{depth}[{}]", attrs.join(","))))
        }
        fn end_element(&mut self, name: &str, depth: usize) -> XmlResult<bool> {
            Ok(self.push(format!("end:{name}@{depth}")))
        }
        fn characters(&mut self, text: &str, depth: usize) -> XmlResult<bool> {
            if text.trim().is_empty() {
                return Ok(true);
            }
            Ok(self.push(format!("text:{}@{depth}", text.trim())))
        }
        fn comment(&mut self, text: &str) -> XmlResult<bool> {
            Ok(self.push(format!("comment:{}", text.trim())))
        }
    }

    #[test]
    fn event_stream_in_document_order() {
        let mut rec = Recorder::default();
        parse_document("<metric><ID>bw</ID><value unit=\"Mbps\">9</value></metric>", &mut rec)
            .unwrap();
        assert_eq!(
            rec.events,
            vec![
                "start:metric@0[]",
                "start:ID@1[]",
                "text:bw@1",
                "end:ID@1",
                "start:value@1[unit=Mbps]",
                "text:9@1",
                "end:value@1",
                "end:metric@0",
            ]
        );
    }

    #[test]
    fn self_closing_synthesizes_end() {
        let mut rec = Recorder::default();
        parse_document("<a><b/></a>", &mut rec).unwrap();
        assert_eq!(rec.events, vec!["start:a@0[]", "start:b@1[]", "end:b@1", "end:a@0"]);
    }

    #[test]
    fn early_exit_returns_false() {
        let mut rec = Recorder { stop_after: Some(2), ..Default::default() };
        let done = SaxDriver::new().parse("<a><b/><c/><d/></a>", &mut rec).unwrap();
        assert!(!done);
        assert_eq!(rec.events.len(), 2);
    }

    #[test]
    fn mismatched_tags_rejected() {
        let mut rec = Recorder::default();
        let err = parse_document("<a><b></a></b>", &mut rec).unwrap_err();
        assert!(matches!(err, XmlError::MismatchedTag { .. }));
    }

    #[test]
    fn unclosed_element_rejected() {
        let mut rec = Recorder::default();
        let err = parse_document("<a><b>", &mut rec).unwrap_err();
        assert!(matches!(err, XmlError::UnclosedElement { .. }));
    }

    #[test]
    fn stray_end_tag_rejected() {
        let mut rec = Recorder::default();
        let err = parse_document("</a>", &mut rec).unwrap_err();
        assert!(matches!(err, XmlError::MismatchedTag { .. }));
    }

    #[test]
    fn trailing_element_rejected() {
        let mut rec = Recorder::default();
        let err = parse_document("<a/><b/>", &mut rec).unwrap_err();
        assert!(matches!(err, XmlError::TrailingContent { .. }));
    }

    #[test]
    fn trailing_whitespace_allowed() {
        let mut rec = Recorder::default();
        parse_document("<a/>\n  \n", &mut rec).unwrap();
    }

    #[test]
    fn declaration_and_comment_dispatched() {
        let mut rec = Recorder::default();
        parse_document("<?xml version=\"1.0\"?><!-- hi --><a/>", &mut rec).unwrap();
        assert!(rec.events.contains(&"comment:hi".to_string()));
    }

    #[test]
    fn cdata_reported_as_characters() {
        let mut rec = Recorder::default();
        parse_document("<a><![CDATA[x < y]]></a>", &mut rec).unwrap();
        assert!(rec.events.contains(&"text:x < y@0".to_string()));
    }

    #[test]
    fn deep_nesting_depths() {
        let mut rec = Recorder::default();
        parse_document("<a><b><c><d/></c></b></a>", &mut rec).unwrap();
        assert!(rec.events.contains(&"start:d@3[]".to_string()));
        assert!(rec.events.contains(&"end:a@0".to_string()));
    }
}
