//! Inca path addressing of open-schema report bodies.
//!
//! The reporter specification keeps the body schema open but requires
//! every repeated branch to carry a unique `<ID>` child. With that rule
//! in place, any piece of data can be located by a *path* written
//! leaf-first, exactly as in the paper's example (§3.1.2, Figure 2):
//!
//! ```text
//! value, statistic=lowerBound, metric=bandwidth
//! ```
//!
//! reads "the `<value>` inside the `<statistic>` whose ID is
//! `lowerBound`, inside the `<metric>` whose ID is `bandwidth`". A step
//! is a tag name with an optional `=id` constraint that is checked
//! against the element's `<ID>` child (or, as a fallback, an `id`
//! attribute).

use std::fmt;
use std::str::FromStr;

use crate::error::{XmlError, XmlResult};
use crate::tree::Element;

/// One step of an [`IncaPath`]: a tag name plus optional ID constraint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PathStep {
    /// Element tag name the step matches.
    pub name: String,
    /// Required branch ID, if the step is of the `name=id` form.
    pub id: Option<String>,
}

impl PathStep {
    /// Creates a step matching any element with the given tag name.
    pub fn named(name: impl Into<String>) -> Self {
        PathStep { name: name.into(), id: None }
    }

    /// Creates a step matching `name` whose branch ID equals `id`.
    pub fn with_id(name: impl Into<String>, id: impl Into<String>) -> Self {
        PathStep { name: name.into(), id: Some(id.into()) }
    }

    /// Whether `element` satisfies this step.
    pub fn matches(&self, element: &Element) -> bool {
        if element.name != self.name {
            return false;
        }
        match &self.id {
            None => true,
            Some(want) => {
                element.branch_id().as_deref() == Some(want.as_str())
                    || element.attribute("id") == Some(want.as_str())
            }
        }
    }
}

impl fmt::Display for PathStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.id {
            Some(id) => write!(f, "{}={}", self.name, id),
            None => write!(f, "{}", self.name),
        }
    }
}

/// A leaf-first path into an open-schema XML body.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IncaPath {
    /// Steps as written: leaf first, root-most last.
    steps: Vec<PathStep>,
}

impl IncaPath {
    /// Builds a path from leaf-first steps.
    pub fn new(steps: Vec<PathStep>) -> Self {
        IncaPath { steps }
    }

    /// The steps, leaf first.
    pub fn steps(&self) -> &[PathStep] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the path has no steps (matches nothing).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Resolves the path against `root`, returning the first matching
    /// element in document order.
    ///
    /// The root-most step may match `root` itself or any descendant;
    /// each subsequent (leaf-ward) step must match a child of the
    /// previous match. This mirrors how the depot's query interface
    /// drills into a cached report.
    pub fn resolve<'a>(&self, root: &'a Element) -> Option<&'a Element> {
        if self.steps.is_empty() {
            return None;
        }
        // Walk root-ward step first: reverse the leaf-first order.
        let rootward: Vec<&PathStep> = self.steps.iter().rev().collect();
        Self::search(root, &rootward)
    }

    fn search<'a>(element: &'a Element, steps: &[&PathStep]) -> Option<&'a Element> {
        let (first, rest) = steps.split_first()?;
        if first.matches(element) {
            if rest.is_empty() {
                return Some(element);
            }
            if let Some(found) = Self::descend(element, rest) {
                return Some(found);
            }
        }
        // The root-most step may match anywhere below.
        element.child_elements().find_map(|c| Self::search(c, steps))
    }

    fn descend<'a>(element: &'a Element, steps: &[&PathStep]) -> Option<&'a Element> {
        let (next, rest) = steps.split_first()?;
        for child in element.child_elements() {
            if next.matches(child) {
                if rest.is_empty() {
                    return Some(child);
                }
                if let Some(found) = Self::descend(child, rest) {
                    return Some(found);
                }
            }
        }
        None
    }

    /// Resolves the path and returns the matched element's text.
    pub fn resolve_text(&self, root: &Element) -> XmlResult<String> {
        self.resolve(root)
            .map(Element::text)
            .ok_or_else(|| XmlError::PathNotFound { path: self.to_string() })
    }
}

impl fmt::Display for IncaPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rendered: Vec<String> = self.steps.iter().map(PathStep::to_string).collect();
        write!(f, "{}", rendered.join(", "))
    }
}

impl FromStr for IncaPath {
    type Err = XmlError;

    /// Parses the textual form, e.g. `value, statistic=lowerBound,
    /// metric=bandwidth`. Whitespace around separators is ignored.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.trim().is_empty() {
            return Err(XmlError::InvalidPath { message: "empty path".into() });
        }
        let mut steps = Vec::new();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                return Err(XmlError::InvalidPath {
                    message: format!("empty step in path {s:?}"),
                });
            }
            let step = match part.split_once('=') {
                Some((name, id)) => {
                    let (name, id) = (name.trim(), id.trim());
                    if name.is_empty() || id.is_empty() {
                        return Err(XmlError::InvalidPath {
                            message: format!("malformed step {part:?}"),
                        });
                    }
                    PathStep::with_id(name, id)
                }
                None => PathStep::named(part),
            };
            steps.push(step);
        }
        Ok(IncaPath::new(steps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body() -> Element {
        Element::parse(
            "<body>\
               <metric><ID>bandwidth</ID>\
                 <statistic><ID>upperBound</ID><value>998.67</value><units>Mbps</units></statistic>\
                 <statistic><ID>lowerBound</ID><value>984.99</value><units>Mbps</units></statistic>\
               </metric>\
               <metric><ID>latency</ID>\
                 <statistic><ID>mean</ID><value>1.2</value></statistic>\
               </metric>\
             </body>",
        )
        .unwrap()
    }

    #[test]
    fn parse_paper_example() {
        let p: IncaPath = "value, statistic=lowerBound, metric=bandwidth".parse().unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.steps()[0], PathStep::named("value"));
        assert_eq!(p.steps()[1], PathStep::with_id("statistic", "lowerBound"));
        assert_eq!(p.steps()[2], PathStep::with_id("metric", "bandwidth"));
    }

    #[test]
    fn display_roundtrip() {
        let text = "value, statistic=lowerBound, metric=bandwidth";
        let p: IncaPath = text.parse().unwrap();
        assert_eq!(p.to_string(), text);
        let p2: IncaPath = p.to_string().parse().unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn resolves_paper_example() {
        let p: IncaPath = "value, statistic=lowerBound, metric=bandwidth".parse().unwrap();
        assert_eq!(p.resolve_text(&body()).unwrap(), "984.99");
    }

    #[test]
    fn resolves_other_branch() {
        let p: IncaPath = "value, statistic=upperBound, metric=bandwidth".parse().unwrap();
        assert_eq!(p.resolve_text(&body()).unwrap(), "998.67");
        let p: IncaPath = "value, statistic=mean, metric=latency".parse().unwrap();
        assert_eq!(p.resolve_text(&body()).unwrap(), "1.2");
    }

    #[test]
    fn single_step_path_finds_descendant() {
        let p: IncaPath = "units".parse().unwrap();
        assert_eq!(p.resolve_text(&body()).unwrap(), "Mbps");
    }

    #[test]
    fn missing_path_errors() {
        let p: IncaPath = "value, statistic=p99, metric=bandwidth".parse().unwrap();
        assert!(matches!(p.resolve_text(&body()), Err(XmlError::PathNotFound { .. })));
    }

    #[test]
    fn id_attribute_fallback() {
        let root = Element::parse("<a><b id=\"x\"><v>1</v></b><b id=\"y\"><v>2</v></b></a>")
            .unwrap();
        let p: IncaPath = "v, b=y".parse().unwrap();
        assert_eq!(p.resolve_text(&root).unwrap(), "2");
    }

    #[test]
    fn rootmost_step_can_match_root_itself() {
        let root = body();
        let p: IncaPath = "body".parse().unwrap();
        assert_eq!(p.resolve(&root).unwrap().name, "body");
    }

    #[test]
    fn empty_and_malformed_paths_rejected() {
        assert!("".parse::<IncaPath>().is_err());
        assert!("a,,b".parse::<IncaPath>().is_err());
        assert!("a, =x".parse::<IncaPath>().is_err());
        assert!("a, b=".parse::<IncaPath>().is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let p: IncaPath = "  value ,statistic = lowerBound ,  metric=bandwidth ".parse().unwrap();
        assert_eq!(p.resolve_text(&body()).unwrap(), "984.99");
    }

    #[test]
    fn empty_path_resolves_to_none() {
        let p = IncaPath::new(vec![]);
        assert!(p.is_empty());
        assert!(p.resolve(&body()).is_none());
    }

    #[test]
    fn first_match_in_document_order() {
        // Without an ID constraint, the first statistic wins.
        let p: IncaPath = "value, statistic, metric=bandwidth".parse().unwrap();
        assert_eq!(p.resolve_text(&body()).unwrap(), "998.67");
    }
}
