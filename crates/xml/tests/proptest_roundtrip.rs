//! Property tests for the XML substrate: serialization/parsing must
//! round-trip for arbitrary trees, and escaping must round-trip for
//! arbitrary strings. These invariants are what lets the depot splice
//! pre-serialized reports into the cache without corruption.

use proptest::prelude::*;

use inca_xml::escape::{escape_attr, escape_text, unescape};
use inca_xml::{Element, IncaPath, Node};

/// Strategy for XML-legal-ish text content (excludes control chars that
/// our subset does not attempt to encode).
fn text_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~£énß]{0,40}").unwrap()
}

/// Strategy for tag names.
fn name_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z_][a-zA-Z0-9_.-]{0,12}").unwrap()
}

/// Strategy for arbitrary element trees of bounded depth/size.
fn element_strategy() -> impl Strategy<Value = Element> {
    let leaf = (name_strategy(), text_strategy()).prop_map(|(name, text)| {
        let mut e = Element::new(name);
        if !text.is_empty() {
            e.children.push(Node::Text(text));
        }
        e
    });
    leaf.prop_recursive(4, 24, 4, |inner| {
        (
            name_strategy(),
            proptest::collection::vec((name_strategy(), text_strategy()), 0..3),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attrs, children)| {
                let mut e = Element::new(name);
                e.attributes = attrs;
                for c in children {
                    e.children.push(Node::Element(c));
                }
                e
            })
    })
}

proptest! {
    #[test]
    fn escape_text_roundtrips(s in text_strategy()) {
        let escaped = escape_text(&s);
        let unescaped = unescape(&escaped, 0).unwrap();
        prop_assert_eq!(unescaped.as_ref(), s.as_str());
    }

    #[test]
    fn escape_attr_roundtrips(s in text_strategy()) {
        let escaped = escape_attr(&s);
        let unescaped = unescape(&escaped, 0).unwrap();
        prop_assert_eq!(unescaped.as_ref(), s.as_str());
    }

    #[test]
    fn compact_serialization_roundtrips(tree in element_strategy()) {
        let xml = tree.to_xml();
        let parsed = Element::parse(&xml).unwrap();
        // Text nodes that were pure whitespace are dropped by the parser
        // (indentation-insensitive), so normalize before comparing.
        prop_assert_eq!(normalize(&parsed), normalize(&tree));
    }

    #[test]
    fn pretty_serialization_roundtrips(tree in element_strategy()) {
        let xml = tree.to_pretty_xml();
        let parsed = Element::parse(&xml).unwrap();
        prop_assert_eq!(normalize(&parsed), normalize(&tree));
    }

    #[test]
    fn element_count_is_stable_under_roundtrip(tree in element_strategy()) {
        let parsed = Element::parse(&tree.to_xml()).unwrap();
        prop_assert_eq!(parsed.element_count(), tree.element_count());
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "\\PC{0,160}") {
        let _ = Element::parse(&s);
    }

    #[test]
    fn path_parser_never_panics(s in "\\PC{0,60}") {
        let _ = s.parse::<IncaPath>();
    }

    #[test]
    fn valid_paths_roundtrip_via_display(
        names in proptest::collection::vec(name_strategy(), 1..5),
        ids in proptest::collection::vec(proptest::option::of("[a-zA-Z0-9_.]{1,8}"), 1..5),
    ) {
        use inca_xml::PathStep;
        let steps: Vec<PathStep> = names
            .iter()
            .zip(ids.iter().cycle())
            .map(|(n, id)| match id {
                Some(i) => PathStep::with_id(n.clone(), i.clone()),
                None => PathStep::named(n.clone()),
            })
            .collect();
        let p = IncaPath::new(steps);
        let reparsed: IncaPath = p.to_string().parse().unwrap();
        prop_assert_eq!(p, reparsed);
    }
}

/// Drops whitespace-only text nodes and trims text so trees can be
/// compared across pretty/compact round-trips.
fn normalize(e: &Element) -> Element {
    let mut out = Element::new(e.name.clone());
    out.attributes = e.attributes.clone();
    for child in &e.children {
        match child {
            Node::Element(c) => out.children.push(Node::Element(normalize(c))),
            Node::Text(t) => {
                let trimmed = t.trim();
                if !trimmed.is_empty() {
                    out.children.push(Node::Text(trimmed.to_string()));
                }
            }
        }
    }
    out
}
