//! Comparing collected data to the agreement.
//!
//! "Data consumers display the comparison of data stored at the Inca
//! server to a machine-readable description of the service agreements
//! and apply predefined metrics to express the degree of resource
//! compliance" (§3.3). [`verify_resource`] produces the per-test
//! pass/fail results behind Figure 4's status page, including the
//! failure detail links ("the test that has failed is listed and a URL
//! is given to display the error message").

use std::collections::BTreeMap;

use inca_report::{BranchId, Report};
use inca_xml::IncaPath;

use crate::spec::{Agreement, Category};

/// One verified requirement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestResult {
    /// Test identifier, e.g. `globus-2.4.3-version` or
    /// `unit.globus.duroc-mpi`.
    pub id: String,
    /// Status-page category.
    pub category: Category,
    /// Whether the requirement is met.
    pub passed: bool,
    /// Failure detail for the expanded error view.
    pub error: Option<String>,
}

impl TestResult {
    fn pass(id: impl Into<String>, category: Category) -> TestResult {
        TestResult { id: id.into(), category, passed: true, error: None }
    }

    fn fail(id: impl Into<String>, category: Category, error: impl Into<String>) -> TestResult {
        TestResult { id: id.into(), category, passed: false, error: Some(error.into()) }
    }
}

/// All results for one resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceVerification {
    /// The resource verified.
    pub resource: String,
    /// Individual test results.
    pub results: Vec<TestResult>,
}

impl ResourceVerification {
    /// Pass/fail counts for one category.
    pub fn category_counts(&self, category: Category) -> (usize, usize) {
        let mut pass = 0;
        let mut fail = 0;
        for r in self.results.iter().filter(|r| r.category == category) {
            if r.passed {
                pass += 1;
            } else {
                fail += 1;
            }
        }
        (pass, fail)
    }

    /// Overall pass/fail counts.
    pub fn total_counts(&self) -> (usize, usize) {
        let pass = self.results.iter().filter(|r| r.passed).count();
        (pass, self.results.len() - pass)
    }

    /// The failing tests, for the expanded error view.
    pub fn failures(&self) -> impl Iterator<Item = &TestResult> {
        self.results.iter().filter(|r| !r.passed)
    }
}

/// Verifies one resource's cached reports against the agreement.
///
/// `reports` are the cached `(branch, report)` pairs for this resource
/// (as returned by the query interface). Reports are indexed by the
/// reporter name in their headers; when several reports share a name
/// the last one wins (the cache holds one per branch anyway).
pub fn verify_resource(
    agreement: &Agreement,
    reports: &[(BranchId, Report)],
    resource: &str,
) -> ResourceVerification {
    let by_reporter: BTreeMap<&str, &Report> =
        reports.iter().map(|(_, r)| (r.header.reporter.as_str(), r)).collect();
    let mut results = Vec::new();

    // Package requirements: a version test plus any deployed unit tests.
    for pkg in &agreement.packages {
        let version_id = format!("{}-version", pkg.name);
        match by_reporter.get(format!("version.{}", pkg.name).as_str()) {
            None => results.push(TestResult::fail(
                version_id,
                pkg.category,
                format!("no version data collected for {}", pkg.name),
            )),
            Some(report) if !report.is_success() => results.push(TestResult::fail(
                version_id,
                pkg.category,
                report
                    .footer
                    .error_message
                    .clone()
                    .unwrap_or_else(|| "version reporter failed".into()),
            )),
            Some(report) => {
                let path: IncaPath = "packageVersion".parse().expect("static path");
                match report.body.lookup(&path).map(|e| e.text()) {
                    Some(found) if pkg.version.matches_str(&found) => {
                        results.push(TestResult::pass(version_id, pkg.category))
                    }
                    Some(found) => results.push(TestResult::fail(
                        version_id,
                        pkg.category,
                        format!(
                            "installed version {found} does not satisfy {}",
                            pkg.version
                        ),
                    )),
                    None => results.push(TestResult::fail(
                        version_id,
                        pkg.category,
                        "version report carries no packageVersion".to_string(),
                    )),
                }
            }
        }
        if pkg.require_unit_tests {
            let prefix = format!("unit.{}.", pkg.name);
            for (name, report) in by_reporter.iter().filter(|(n, _)| n.starts_with(&prefix)) {
                if report.is_success() {
                    results.push(TestResult::pass(*name, pkg.category));
                } else {
                    results.push(TestResult::fail(
                        *name,
                        pkg.category,
                        report
                            .footer
                            .error_message
                            .clone()
                            .unwrap_or_else(|| "unit test failed".into()),
                    ));
                }
            }
        }
    }

    // Default user environment (reported under Cluster on the pages).
    let env_report = by_reporter.get("user.environment");
    for var in &agreement.env_vars {
        let id = format!("env-{}", var.name);
        match env_report {
            None => results.push(TestResult::fail(id, Category::Cluster, "no environment data")),
            Some(report) => {
                let path: IncaPath = format!("value, var={}, environment", var.name)
                    .parse()
                    .expect("variable names contain no path separators");
                match report.body.lookup(&path).map(|e| e.text()) {
                    None => results.push(TestResult::fail(
                        id,
                        Category::Cluster,
                        format!("{} not set in default environment", var.name),
                    )),
                    Some(found) => match &var.expected {
                        Some(want) if *want != found => results.push(TestResult::fail(
                            id,
                            Category::Cluster,
                            format!("{}={found}, agreement requires {want}", var.name),
                        )),
                        _ => results.push(TestResult::pass(id, Category::Cluster)),
                    },
                }
            }
        }
    }

    // SoftEnv keys.
    let softenv_report = by_reporter.get("cluster.admin.softenv.db");
    for key in &agreement.softenv_keys {
        let id = format!("softenv-{key}");
        match softenv_report {
            None => results.push(TestResult::fail(id, Category::Cluster, "no SoftEnv data")),
            Some(report) => {
                let path: IncaPath = format!("expansion, key={key}, softenv")
                    .parse()
                    .expect("softenv keys contain no path separators");
                if report.body.lookup(&path).is_some() {
                    results.push(TestResult::pass(id, Category::Cluster));
                } else {
                    results.push(TestResult::fail(
                        id,
                        Category::Cluster,
                        format!("SoftEnv key {key} not defined"),
                    ));
                }
            }
        }
    }

    // Services (cross-site probes, Grid category).
    for svc in &agreement.services {
        let id = format!("service-{svc}");
        match by_reporter.get(format!("grid.services.{svc}.probe").as_str()) {
            None => results.push(TestResult::fail(id, Category::Grid, "no probe data")),
            Some(report) if report.is_success() => {
                results.push(TestResult::pass(id, Category::Grid))
            }
            Some(report) => results.push(TestResult::fail(
                id,
                Category::Grid,
                report
                    .footer
                    .error_message
                    .clone()
                    .unwrap_or_else(|| "probe failed".into()),
            )),
        }
    }

    ResourceVerification { resource: resource.to_string(), results }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inca_report::{ReportBuilder, Timestamp};
    use inca_xml::Element;

    fn branch(reporter: &str) -> BranchId {
        format!("reporter={reporter},resource=r1,site=sdsc,vo=tg").parse().unwrap()
    }

    fn version_report(pkg: &str, version: &str) -> (BranchId, Report) {
        let r = ReportBuilder::new(format!("version.{pkg}"), "1.0")
            .gmt(Timestamp::from_secs(0))
            .body_value("packageName", pkg)
            .body_value("packageVersion", version)
            .success()
            .unwrap();
        (branch(&format!("version.{pkg}")), r)
    }

    fn unit_report(pkg: &str, test: &str, ok: bool) -> (BranchId, Report) {
        let name = format!("unit.{pkg}.{test}");
        let b = ReportBuilder::new(&name, "1.0").gmt(Timestamp::from_secs(0));
        let r = if ok {
            b.body_value("testResult", "passed").success().unwrap()
        } else {
            b.failure(format!("{test} failed: timeout")).unwrap()
        };
        (branch(&name), r)
    }

    fn env_report(vars: &[(&str, &str)]) -> (BranchId, Report) {
        let mut env = Element::new("environment");
        for (n, v) in vars {
            env.push_child(
                Element::new("var")
                    .child(Element::with_text("ID", *n))
                    .child(Element::with_text("value", *v)),
            );
        }
        let r = ReportBuilder::new("user.environment", "1.0")
            .gmt(Timestamp::from_secs(0))
            .body_element(env)
            .success()
            .unwrap();
        (branch("user.environment"), r)
    }

    fn probe_report(svc: &str, ok: bool) -> (BranchId, Report) {
        let name = format!("grid.services.{svc}.probe");
        let b = ReportBuilder::new(&name, "1.0").gmt(Timestamp::from_secs(0));
        let r = if ok {
            b.body_value("target", "other").success().unwrap()
        } else {
            b.failure(format!("{svc} did not answer")).unwrap()
        };
        (branch(&name), r)
    }

    fn small_agreement() -> Agreement {
        let mut a = Agreement::new("tg", "2.0");
        a.packages.push(crate::spec::PackageRequirement {
            name: "globus".into(),
            category: Category::Grid,
            version: ">=2.4.0".parse().unwrap(),
            require_unit_tests: true,
        });
        a.env_vars.push(crate::spec::EnvVarRequirement {
            name: "GLOBUS_LOCATION".into(),
            expected: None,
        });
        a.services.push("gram".into());
        a
    }

    #[test]
    fn fully_compliant_resource() {
        let a = small_agreement();
        let reports = vec![
            version_report("globus", "2.4.3"),
            unit_report("globus", "smoke", true),
            env_report(&[("GLOBUS_LOCATION", "/usr/globus")]),
            probe_report("gram", true),
        ];
        let v = verify_resource(&a, &reports, "r1");
        let (pass, fail) = v.total_counts();
        assert_eq!(fail, 0, "failures: {:?}", v.failures().collect::<Vec<_>>());
        assert_eq!(pass, 4);
    }

    #[test]
    fn version_too_old_fails() {
        let a = small_agreement();
        let reports = vec![version_report("globus", "2.3.2")];
        let v = verify_resource(&a, &reports, "r1");
        let failing: Vec<&TestResult> = v.failures().collect();
        assert!(failing.iter().any(|t| t.id == "globus-version"
            && t.error.as_deref().unwrap().contains("does not satisfy")));
    }

    #[test]
    fn missing_data_fails_each_requirement() {
        let a = small_agreement();
        let v = verify_resource(&a, &[], "r1");
        let (pass, fail) = v.total_counts();
        assert_eq!(pass, 0);
        assert_eq!(fail, 3); // version + env var + service
    }

    #[test]
    fn failed_unit_test_surfaces_its_message() {
        let a = small_agreement();
        let reports = vec![
            version_report("globus", "2.4.3"),
            unit_report("globus", "duroc-mpi", false),
        ];
        let v = verify_resource(&a, &reports, "r1");
        let unit = v.results.iter().find(|t| t.id == "unit.globus.duroc-mpi").unwrap();
        assert!(!unit.passed);
        assert!(unit.error.as_deref().unwrap().contains("timeout"));
        assert_eq!(unit.category, Category::Grid);
    }

    #[test]
    fn env_var_value_mismatch() {
        let mut a = Agreement::new("tg", "2.0");
        a.env_vars.push(crate::spec::EnvVarRequirement {
            name: "GLOBUS_LOCATION".into(),
            expected: Some("/usr/teragrid/globus".into()),
        });
        let reports = vec![env_report(&[("GLOBUS_LOCATION", "/opt/other")])];
        let v = verify_resource(&a, &reports, "r1");
        assert_eq!(v.total_counts(), (0, 1));
        // Presence-only requirement passes with any value.
        a.env_vars[0].expected = None;
        let v = verify_resource(&a, &reports, "r1");
        assert_eq!(v.total_counts(), (1, 0));
    }

    #[test]
    fn category_counts_split() {
        let a = small_agreement();
        let reports = vec![
            version_report("globus", "2.4.3"),
            probe_report("gram", false),
            env_report(&[]),
        ];
        let v = verify_resource(&a, &reports, "r1");
        let (grid_pass, grid_fail) = v.category_counts(Category::Grid);
        assert_eq!((grid_pass, grid_fail), (1, 1)); // version ok, probe failed
        let (cl_pass, cl_fail) = v.category_counts(Category::Cluster);
        assert_eq!((cl_pass, cl_fail), (0, 1)); // env var missing
        assert_eq!(v.category_counts(Category::Development), (0, 0));
    }

    #[test]
    fn softenv_keys_verified() {
        let mut a = Agreement::new("tg", "2.0");
        a.softenv_keys.push("+globus".into());
        a.softenv_keys.push("+missing".into());
        let mut db = Element::new("softenv");
        db.push_child(
            Element::new("key")
                .child(Element::with_text("ID", "+globus"))
                .child(Element::with_text("expansion", "PATH+=/g")),
        );
        let r = ReportBuilder::new("cluster.admin.softenv.db", "1.0")
            .body_element(db)
            .success()
            .unwrap();
        let reports = vec![(branch("cluster.admin.softenv.db"), r)];
        let v = verify_resource(&a, &reports, "r1");
        assert_eq!(v.total_counts(), (1, 1));
    }
}
