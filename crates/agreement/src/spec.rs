//! The machine-readable service agreement.
//!
//! §4.1: "In order to visualize resource compliance to the TeraGrid
//! Hosting Environment, a machine-readable version of the service
//! agreement was formatted in XML. A resource's status is divided into
//! three categories: Grid, Development, and Cluster." The agreement
//! lists the required packages with version constraints per category,
//! the required default-environment variables, SoftEnv keys, and
//! services.

use std::str::FromStr;

use inca_xml::{Element, XmlError, XmlResult};

use crate::version_req::VersionReq;

/// The status-page category a requirement belongs to (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Grid middleware requirements.
    Grid,
    /// Development library requirements.
    Development,
    /// Cluster-level requirements.
    Cluster,
}

impl Category {
    /// Display name.
    pub fn as_str(self) -> &'static str {
        match self {
            Category::Grid => "Grid",
            Category::Development => "Development",
            Category::Cluster => "Cluster",
        }
    }

    /// All categories in status-page order.
    pub fn all() -> [Category; 3] {
        [Category::Grid, Category::Development, Category::Cluster]
    }
}

impl FromStr for Category {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "Grid" => Ok(Category::Grid),
            "Development" => Ok(Category::Development),
            "Cluster" => Ok(Category::Cluster),
            other => Err(format!("unknown category {other:?}")),
        }
    }
}

/// One required package.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackageRequirement {
    /// Package name.
    pub name: String,
    /// Category it is reported under.
    pub category: Category,
    /// Acceptable versions.
    pub version: VersionReq,
    /// Whether the package's unit tests must also pass.
    pub require_unit_tests: bool,
}

/// One required environment variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvVarRequirement {
    /// Variable name.
    pub name: String,
    /// Required exact value, or `None` for presence only.
    pub expected: Option<String>,
}

/// The full agreement.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Agreement {
    /// The VO this agreement belongs to.
    pub vo: String,
    /// Agreement version (the Figure 4 page says "2.0").
    pub version: String,
    /// Required packages.
    pub packages: Vec<PackageRequirement>,
    /// Required default-environment variables.
    pub env_vars: Vec<EnvVarRequirement>,
    /// Required SoftEnv keys.
    pub softenv_keys: Vec<String>,
    /// Required services (by the reporter-visible service id:
    /// `gram`, `gridftp`, `ssh`, `srb`).
    pub services: Vec<String>,
}

impl Agreement {
    /// An empty agreement.
    pub fn new(vo: impl Into<String>, version: impl Into<String>) -> Agreement {
        Agreement { vo: vo.into(), version: version.into(), ..Default::default() }
    }

    /// Number of individual requirements (the paper verifies "over
    /// 900 pieces of data" across ten resources).
    pub fn requirement_count(&self) -> usize {
        self.packages.len() + self.env_vars.len() + self.softenv_keys.len() + self.services.len()
    }

    /// The TeraGrid Hosting Environment agreement matching the CTSS
    /// software stack of the simulated VO.
    pub fn teragrid() -> Agreement {
        let mut a = Agreement::new("teragrid", "2.0");
        let grid: &[(&str, &str)] = &[
            ("globus", ">=2.4.0"),
            ("condor-g", ">=6.6.0"),
            ("gridftp", ">=2.4.0"),
            ("srb", ">=3.2.0"),
            ("gsi-openssh", ">=3.4"),
            ("myproxy", ">=1.14"),
            ("gpt", ">=3.1"),
        ];
        let dev: &[(&str, &str)] = &[
            ("mpich", "1.2.x"),
            ("mpich-g2", "1.2.x"),
            ("atlas", ">=3.6.0"),
            ("hdf4", "*"),
            ("hdf5", ">=1.6.0"),
            ("blas", "*"),
            ("gcc", ">=3.2.0"),
            ("intel-compilers", ">=8.0"),
            ("python", ">=2.3"),
        ];
        let cluster: &[(&str, &str)] = &[("pbs", "*"), ("softenv", ">=1.4.0")];
        for (list, category) in
            [(grid, Category::Grid), (dev, Category::Development), (cluster, Category::Cluster)]
        {
            for (name, req) in list {
                a.packages.push(PackageRequirement {
                    name: name.to_string(),
                    category,
                    version: req.parse().expect("static requirement parses"),
                    require_unit_tests: true,
                });
            }
        }
        for var in
            ["TG_CLUSTER_HOME", "TG_CLUSTER_SCRATCH", "TG_APPS_PREFIX", "GLOBUS_LOCATION"]
        {
            a.env_vars.push(EnvVarRequirement { name: var.to_string(), expected: None });
        }
        for key in ["@teragrid-basic", "+globus", "+srb", "+mpich", "+hdf5"] {
            a.softenv_keys.push(key.to_string());
        }
        for svc in ["gram", "gridftp", "ssh", "srb"] {
            a.services.push(svc.to_string());
        }
        a
    }

    /// Serializes the agreement XML.
    pub fn to_xml(&self) -> String {
        let mut root = Element::new("serviceAgreement")
            .attr("vo", &self.vo)
            .attr("version", &self.version);
        for p in &self.packages {
            root.push_child(
                Element::new("package")
                    .attr("name", &p.name)
                    .attr("category", p.category.as_str())
                    .attr("unitTests", if p.require_unit_tests { "true" } else { "false" })
                    .child(Element::with_text("versionRequired", p.version.to_string())),
            );
        }
        for v in &self.env_vars {
            let mut e = Element::new("envVar").attr("name", &v.name);
            if let Some(val) = &v.expected {
                e = e.attr("value", val);
            }
            root.push_child(e);
        }
        for k in &self.softenv_keys {
            root.push_child(Element::new("softenvKey").attr("name", k));
        }
        for s in &self.services {
            root.push_child(Element::new("service").attr("kind", s));
        }
        root.to_pretty_xml()
    }

    /// Parses an agreement XML document.
    pub fn parse(xml: &str) -> XmlResult<Agreement> {
        let root = Element::parse(xml)?;
        if root.name != "serviceAgreement" {
            return Err(XmlError::Constraint {
                message: format!("expected <serviceAgreement>, found <{}>", root.name),
            });
        }
        let vo = root.attribute("vo").unwrap_or("unknown").to_string();
        let version = root.attribute("version").unwrap_or("1.0").to_string();
        let mut a = Agreement::new(vo, version);
        for p in root.find_children("package") {
            let name = p
                .attribute("name")
                .ok_or_else(|| XmlError::Constraint {
                    message: "<package> missing name".into(),
                })?
                .to_string();
            let category: Category = p
                .attribute("category")
                .unwrap_or("Grid")
                .parse()
                .map_err(|e| XmlError::Constraint { message: e })?;
            let version: VersionReq = p
                .child_text("versionRequired")
                .unwrap_or_else(|| "*".to_string())
                .parse()
                .map_err(|e| XmlError::Constraint { message: e })?;
            let require_unit_tests = p.attribute("unitTests").map_or(true, |v| v == "true");
            a.packages.push(PackageRequirement { name, category, version, require_unit_tests });
        }
        for v in root.find_children("envVar") {
            let name = v
                .attribute("name")
                .ok_or_else(|| XmlError::Constraint { message: "<envVar> missing name".into() })?
                .to_string();
            a.env_vars.push(EnvVarRequirement {
                name,
                expected: v.attribute("value").map(str::to_string),
            });
        }
        for k in root.find_children("softenvKey") {
            let name = k
                .attribute("name")
                .ok_or_else(|| XmlError::Constraint {
                    message: "<softenvKey> missing name".into(),
                })?
                .to_string();
            a.softenv_keys.push(name);
        }
        for s in root.find_children("service") {
            let kind = s
                .attribute("kind")
                .ok_or_else(|| XmlError::Constraint { message: "<service> missing kind".into() })?
                .to_string();
            a.services.push(kind);
        }
        Ok(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn teragrid_agreement_shape() {
        let a = Agreement::teragrid();
        assert_eq!(a.vo, "teragrid");
        assert_eq!(a.packages.len(), 18, "one requirement per CTSS package");
        assert!(a.requirement_count() > 25);
        assert!(a.packages.iter().any(|p| p.name == "globus" && p.category == Category::Grid));
        assert!(a.packages.iter().any(|p| p.name == "mpich" && p.category == Category::Development));
        assert!(a.packages.iter().any(|p| p.name == "pbs" && p.category == Category::Cluster));
    }

    #[test]
    fn xml_roundtrip() {
        let a = Agreement::teragrid();
        let parsed = Agreement::parse(&a.to_xml()).unwrap();
        assert_eq!(parsed, a);
    }

    #[test]
    fn parse_rejects_wrong_root() {
        assert!(Agreement::parse("<notAgreement/>").is_err());
    }

    #[test]
    fn parse_defaults() {
        let xml = r#"<serviceAgreement vo="v" version="1"><package name="x"/></serviceAgreement>"#;
        let a = Agreement::parse(xml).unwrap();
        assert_eq!(a.packages[0].category, Category::Grid);
        assert_eq!(a.packages[0].version, VersionReq::Any);
        assert!(a.packages[0].require_unit_tests);
    }

    #[test]
    fn parse_rejects_bad_category() {
        let xml = r#"<serviceAgreement vo="v" version="1"><package name="x" category="Quantum"/></serviceAgreement>"#;
        assert!(Agreement::parse(xml).is_err());
    }

    #[test]
    fn env_var_with_expected_value() {
        let mut a = Agreement::new("v", "1");
        a.env_vars.push(EnvVarRequirement {
            name: "GLOBUS_LOCATION".into(),
            expected: Some("/usr/globus".into()),
        });
        let parsed = Agreement::parse(&a.to_xml()).unwrap();
        assert_eq!(parsed.env_vars[0].expected.as_deref(), Some("/usr/globus"));
    }

    #[test]
    fn category_parse() {
        assert_eq!("Grid".parse::<Category>().unwrap(), Category::Grid);
        assert!("grid".parse::<Category>().is_err());
        assert_eq!(Category::all().len(), 3);
    }
}
