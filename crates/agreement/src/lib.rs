//! VO service agreements and their verification.
//!
//! "VO service agreements are created to describe the requirements for
//! resource sharing and operational policies across VO resources as
//! quantifiable properties" (§1). "Verification is accomplished by
//! gathering data from each VO resource, comparing that data to the
//! service agreement, and measuring compliance" (§1).
//!
//! * [`spec`] — the machine-readable agreement (§4.1: "a
//!   machine-readable version of the service agreement was formatted
//!   in XML"): required packages with version constraints per
//!   Grid/Development/Cluster category, required environment
//!   variables, SoftEnv keys and services,
//! * [`version_req`] — version constraints (`>=2.4.0`, `2.4.x`,
//!   exact) over dotted, suffixed version strings,
//! * [`verify`] — comparing a resource's cached reports to the
//!   agreement, producing per-test pass/fail results with error
//!   detail,
//! * [`metrics`] — compliance metrics: per-category summary
//!   percentages (the Figure 4 status page numbers) and the §3.3
//!   cross-site Grid-availability metric.

pub mod metrics;
pub mod spec;
pub mod verify;
pub mod version_req;

pub use metrics::{grid_availability, CategorySummary, ComplianceSummary, ProbeObservation};
pub use spec::{Agreement, Category, EnvVarRequirement, PackageRequirement};
pub use verify::{verify_resource, ResourceVerification, TestResult};
pub use version_req::{Version, VersionReq};
