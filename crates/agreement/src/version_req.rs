//! Version strings and constraints.
//!
//! Package versions in the 2004 software stacks are messy: `2.4.3`,
//! `1.6.2`, `4.2r0`, `3.2p1`. [`Version`] parses them into alternating
//! numeric/alphabetic components compared piecewise; [`VersionReq`]
//! expresses the constraints a service agreement states (exact,
//! minimum, wildcard).

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// One parsed component of a version string.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Part {
    /// Alphabetic runs compare lexically, below any number…
    Alpha(String),
    /// …numeric runs compare numerically.
    Num(u64),
}

/// A parsed version string.
///
/// Equality follows ordering semantics (`2.4 == 2.4.0`), not textual
/// identity; alphabetic suffixes sort *below* the bare version, the
/// semver pre-release convention (`1.2rc1 < 1.2`).
#[derive(Debug, Clone, Eq)]
pub struct Version {
    parts: Vec<Part>,
    original: String,
}

impl PartialEq for Version {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Version {
    /// Parses any non-empty string; separators (`.`, `-`, `_`) split
    /// components, and digit/letter boundaries split within them
    /// (`4.2r0` → 4, 2, "r", 0).
    pub fn parse(s: &str) -> Option<Version> {
        let s = s.trim();
        if s.is_empty() {
            return None;
        }
        let mut parts = Vec::new();
        for chunk in s.split(['.', '-', '_']) {
            let mut current = String::new();
            let mut is_digit: Option<bool> = None;
            for c in chunk.chars() {
                let d = c.is_ascii_digit();
                if is_digit.is_some() && is_digit != Some(d) {
                    push_part(&mut parts, &current, is_digit == Some(true));
                    current.clear();
                }
                is_digit = Some(d);
                current.push(c);
            }
            if !current.is_empty() {
                push_part(&mut parts, &current, is_digit == Some(true));
            }
        }
        if parts.is_empty() {
            return None;
        }
        Some(Version { parts, original: s.to_string() })
    }

    /// The original text.
    pub fn as_str(&self) -> &str {
        &self.original
    }

    /// Number of components (used by wildcard matching).
    fn len(&self) -> usize {
        self.parts.len()
    }

    fn prefix_matches(&self, other: &Version, n: usize) -> bool {
        self.parts.iter().take(n).eq(other.parts.iter().take(n))
    }
}

fn push_part(parts: &mut Vec<Part>, text: &str, digit: bool) {
    if digit {
        parts.push(Part::Num(text.parse().unwrap_or(u64::MAX)));
    } else {
        parts.push(Part::Alpha(text.to_ascii_lowercase()));
    }
}

impl PartialOrd for Version {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Version {
    fn cmp(&self, other: &Self) -> Ordering {
        // Missing trailing components compare as zero: 2.4 == 2.4.0.
        let len = self.parts.len().max(other.parts.len());
        for i in 0..len {
            let a = self.parts.get(i).cloned().unwrap_or(Part::Num(0));
            let b = other.parts.get(i).cloned().unwrap_or(Part::Num(0));
            match a.cmp(&b) {
                Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        Ordering::Equal
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.original)
    }
}

/// A version constraint from a service agreement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VersionReq {
    /// Any version is acceptable (presence is the requirement).
    Any,
    /// Exactly this version.
    Exact(Version),
    /// This version or newer.
    AtLeast(Version),
    /// Matches the given leading components (`2.4.x`).
    Prefix(Version),
}

impl VersionReq {
    /// Whether `version` satisfies the constraint.
    pub fn matches(&self, version: &Version) -> bool {
        match self {
            VersionReq::Any => true,
            VersionReq::Exact(want) => version == want,
            VersionReq::AtLeast(min) => version >= min,
            VersionReq::Prefix(prefix) => version.prefix_matches(prefix, prefix.len()),
        }
    }

    /// Whether a raw version string satisfies the constraint.
    pub fn matches_str(&self, version: &str) -> bool {
        Version::parse(version).map_or(false, |v| self.matches(&v))
    }
}

impl fmt::Display for VersionReq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VersionReq::Any => f.write_str("*"),
            VersionReq::Exact(v) => write!(f, "{v}"),
            VersionReq::AtLeast(v) => write!(f, ">={v}"),
            VersionReq::Prefix(v) => write!(f, "{v}.x"),
        }
    }
}

impl FromStr for VersionReq {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() || s == "*" {
            return Ok(VersionReq::Any);
        }
        if let Some(rest) = s.strip_prefix(">=") {
            let v = Version::parse(rest).ok_or_else(|| format!("bad version in {s:?}"))?;
            return Ok(VersionReq::AtLeast(v));
        }
        if let Some(rest) = s.strip_suffix(".x").or_else(|| s.strip_suffix(".*")) {
            let v = Version::parse(rest).ok_or_else(|| format!("bad version in {s:?}"))?;
            return Ok(VersionReq::Prefix(v));
        }
        let v = Version::parse(s).ok_or_else(|| format!("bad version in {s:?}"))?;
        Ok(VersionReq::Exact(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Version {
        Version::parse(s).unwrap()
    }

    #[test]
    fn parse_and_order_simple() {
        assert!(v("2.4.3") > v("2.4.0"));
        assert!(v("2.4.3") < v("2.10.0"), "numeric, not lexical");
        assert!(v("1.2.5") == v("1.2.5"));
        assert!(v("2.4") == v("2.4.0"), "missing components are zero");
    }

    #[test]
    fn parse_messy_2004_versions() {
        assert!(v("4.2r0") > v("4.1r3"));
        assert!(v("4.2r1") > v("4.2r0"));
        // Alphabetic suffixes sort below the bare version (semver
        // pre-release convention).
        assert!(v("3.2p1") < v("3.2"));
        assert!(v("6.6.5") > v("6.6"));
        assert_eq!(v("4.2r0").as_str(), "4.2r0");
    }

    #[test]
    fn alpha_below_number() {
        // 1.2rc1 < 1.2.1 (alpha part sorts below numeric part).
        assert!(v("1.2rc1") < v("1.2.1"));
    }

    #[test]
    fn empty_rejected() {
        assert!(Version::parse("").is_none());
        assert!(Version::parse("   ").is_none());
        assert!(Version::parse("...").is_none());
    }

    #[test]
    fn req_any() {
        let req: VersionReq = "*".parse().unwrap();
        assert!(req.matches_str("0.0.1"));
        assert!(req.matches_str("99"));
        assert!(!req.matches_str(""), "unparseable version never matches");
        let req: VersionReq = "".parse().unwrap();
        assert_eq!(req, VersionReq::Any);
    }

    #[test]
    fn req_exact() {
        let req: VersionReq = "2.4.3".parse().unwrap();
        assert!(req.matches_str("2.4.3"));
        assert!(!req.matches_str("2.4.4"));
        assert!(req.matches_str("2.4.3.0"), "trailing zeros equal");
    }

    #[test]
    fn req_at_least() {
        let req: VersionReq = ">=2.4.0".parse().unwrap();
        assert!(req.matches_str("2.4.0"));
        assert!(req.matches_str("2.4.3"));
        assert!(req.matches_str("3.0"));
        assert!(!req.matches_str("2.3.9"));
    }

    #[test]
    fn req_prefix() {
        let req: VersionReq = "2.4.x".parse().unwrap();
        assert!(req.matches_str("2.4.0"));
        assert!(req.matches_str("2.4.99"));
        assert!(!req.matches_str("2.5.0"));
        assert!(!req.matches_str("3.4.0"));
        let req: VersionReq = "1.6.*".parse().unwrap();
        assert!(req.matches_str("1.6.2"));
    }

    #[test]
    fn req_display_roundtrip() {
        for text in ["*", "2.4.3", ">=2.4.0", "2.4.x"] {
            let req: VersionReq = text.parse().unwrap();
            let again: VersionReq = req.to_string().parse().unwrap();
            assert_eq!(req, again, "roundtrip failed for {text}");
        }
    }

    #[test]
    fn req_rejects_garbage() {
        assert!(">=".parse::<VersionReq>().is_err());
        assert!(".x".parse::<VersionReq>().is_err());
    }
}
