//! Compliance metrics.
//!
//! §3.3: "data consumers … apply predefined metrics to express the
//! degree of resource compliance. For example, a metric for measuring
//! Grid service availability on a resource can be defined as follows:
//! (1) at least one site can access the resource's Grid service, and
//! (2) the resource can access at least one other site's Grid
//! service." This module provides that metric plus the per-category
//! summary percentages shown on the Figure 4 status page and archived
//! for Figure 5.

use std::collections::BTreeMap;

use crate::spec::Category;
use crate::verify::ResourceVerification;

/// Pass/fail counts and percentage for one category (one cell of the
/// Figure 4 table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CategorySummary {
    /// Tests passed.
    pub pass: usize,
    /// Tests failed.
    pub fail: usize,
}

impl CategorySummary {
    /// Percentage passed, `None` when no test applies ("n/a" cells).
    pub fn percent(&self) -> Option<f64> {
        let total = self.pass + self.fail;
        if total == 0 {
            None
        } else {
            Some(self.pass as f64 * 100.0 / total as f64)
        }
    }
}

/// The full status-page row for one resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComplianceSummary {
    /// The resource.
    pub resource: String,
    /// Per-category summaries in Grid/Development/Cluster order.
    pub categories: BTreeMap<Category, CategorySummary>,
}

impl ComplianceSummary {
    /// Builds the summary from verification results.
    pub fn from_verification(v: &ResourceVerification) -> ComplianceSummary {
        let mut categories = BTreeMap::new();
        for category in Category::all() {
            let (pass, fail) = v.category_counts(category);
            categories.insert(category, CategorySummary { pass, fail });
        }
        ComplianceSummary { resource: v.resource.clone(), categories }
    }

    /// One category's summary.
    pub fn category(&self, category: Category) -> CategorySummary {
        self.categories.get(&category).copied().unwrap_or(CategorySummary { pass: 0, fail: 0 })
    }

    /// The "Total Pass" column.
    pub fn total(&self) -> CategorySummary {
        let mut total = CategorySummary { pass: 0, fail: 0 };
        for s in self.categories.values() {
            total.pass += s.pass;
            total.fail += s.fail;
        }
        total
    }
}

/// One observed cross-site probe for the availability metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeObservation {
    /// Resource the probe ran on.
    pub src_resource: String,
    /// Resource whose service was probed.
    pub dst_resource: String,
    /// Whether the probe succeeded.
    pub ok: bool,
}

/// The §3.3 Grid-service-availability metric.
///
/// A resource's Grid service is *available* iff (1) at least one other
/// resource successfully probed it and (2) it successfully probed at
/// least one other resource. Returns the availability decision per
/// resource mentioned in the observations.
pub fn grid_availability(observations: &[ProbeObservation]) -> BTreeMap<String, bool> {
    let mut inbound_ok: BTreeMap<&str, bool> = BTreeMap::new();
    let mut outbound_ok: BTreeMap<&str, bool> = BTreeMap::new();
    for obs in observations {
        if obs.src_resource == obs.dst_resource {
            continue; // self-probes do not demonstrate cross-site access
        }
        let in_entry = inbound_ok.entry(&obs.dst_resource).or_insert(false);
        *in_entry |= obs.ok;
        let out_entry = outbound_ok.entry(&obs.src_resource).or_insert(false);
        *out_entry |= obs.ok;
        // Make sure both endpoints appear in the result even if only
        // seen on one side.
        inbound_ok.entry(&obs.src_resource).or_insert(false);
        outbound_ok.entry(&obs.dst_resource).or_insert(false);
    }
    let mut out = BTreeMap::new();
    for (resource, &has_in) in &inbound_ok {
        let has_out = outbound_ok.get(resource).copied().unwrap_or(false);
        out.insert(resource.to_string(), has_in && has_out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{ResourceVerification, TestResult};

    fn result(category: Category, passed: bool) -> TestResult {
        TestResult {
            id: format!("t-{}-{passed}", category.as_str()),
            category,
            passed,
            error: if passed { None } else { Some("boom".into()) },
        }
    }

    #[test]
    fn figure4_row_shape() {
        // site1-resource1 in Figure 4: Grid 32/1, Development 23/0,
        // Cluster 1/1, total 56/2.
        let mut results = Vec::new();
        for _ in 0..32 {
            results.push(result(Category::Grid, true));
        }
        results.push(result(Category::Grid, false));
        for _ in 0..23 {
            results.push(result(Category::Development, true));
        }
        results.push(result(Category::Cluster, true));
        results.push(result(Category::Cluster, false));
        let v = ResourceVerification { resource: "site1-resource1".into(), results };
        let s = ComplianceSummary::from_verification(&v);
        assert_eq!(s.category(Category::Grid).pass, 32);
        assert_eq!(s.category(Category::Grid).fail, 1);
        assert!((s.category(Category::Grid).percent().unwrap() - 96.969).abs() < 0.01);
        assert_eq!(s.category(Category::Development).percent(), Some(100.0));
        assert_eq!(s.category(Category::Cluster).percent(), Some(50.0));
        let total = s.total();
        assert_eq!((total.pass, total.fail), (56, 2));
        assert!((total.percent().unwrap() - 96.55).abs() < 0.01);
    }

    #[test]
    fn empty_category_is_na() {
        let v = ResourceVerification { resource: "r".into(), results: vec![] };
        let s = ComplianceSummary::from_verification(&v);
        assert_eq!(s.category(Category::Grid).percent(), None);
        assert_eq!(s.total().percent(), None);
    }

    fn obs(src: &str, dst: &str, ok: bool) -> ProbeObservation {
        ProbeObservation { src_resource: src.into(), dst_resource: dst.into(), ok }
    }

    #[test]
    fn availability_requires_both_directions() {
        // a can reach b; b can reach a: both available.
        let map = grid_availability(&[obs("a", "b", true), obs("b", "a", true)]);
        assert_eq!(map["a"], true);
        assert_eq!(map["b"], true);
    }

    #[test]
    fn inbound_only_is_unavailable() {
        // Everyone can reach c, but c reaches no one.
        let map = grid_availability(&[
            obs("a", "c", true),
            obs("b", "c", true),
            obs("c", "a", false),
            obs("c", "b", false),
        ]);
        assert_eq!(map["c"], false);
    }

    #[test]
    fn outbound_only_is_unavailable() {
        let map = grid_availability(&[obs("c", "a", true), obs("a", "c", false)]);
        assert_eq!(map["c"], false);
        assert_eq!(map["a"], false, "a has outbound failure only... a has inbound ok from c but no outbound success");
    }

    #[test]
    fn one_success_each_way_suffices() {
        // c reaches only a; only b reaches c.
        let map = grid_availability(&[
            obs("c", "a", true),
            obs("c", "b", false),
            obs("a", "c", false),
            obs("b", "c", true),
        ]);
        assert_eq!(map["c"], true);
    }

    #[test]
    fn self_probes_ignored() {
        let map = grid_availability(&[obs("a", "a", true)]);
        assert!(map.is_empty() || !map.get("a").copied().unwrap_or(false));
    }
}
