//! Property tests for envelope framing: an arbitrary valid envelope
//! must decode to the same address, report bytes and trace context
//! whichever mode packed it — the zero-copy binary frame is an
//! encoding of the XML envelope, not a different protocol.

use std::borrow::Cow;

use proptest::prelude::*;

use inca_obs::TraceContext;
use inca_report::{BranchId, ReportBuilder, Timestamp};
use inca_wire::envelope::{Envelope, EnvelopeMode, EnvelopeView};

fn value_strategy() -> impl Strategy<Value = String> {
    // Includes XML-hostile characters so escaping differences between
    // the modes would surface.
    proptest::string::string_regex("[a-z0-9<>&\"' ]{1,24}").unwrap()
}

fn trace_strategy() -> impl Strategy<Value = Option<TraceContext>> {
    proptest::option::of((any::<u64>(), any::<u64>()).prop_map(|(t, s)| TraceContext {
        trace_id: t,
        parent_span_id: s,
    }))
}

fn envelope_strategy() -> impl Strategy<Value = Envelope> {
    (
        proptest::sample::select(vec!["a", "b.c", "version.pkg"]),
        proptest::sample::select(vec!["m1", "m2"]),
        proptest::sample::select(vec!["sdsc", "ncsa"]),
        value_strategy(),
        trace_strategy(),
    )
        .prop_map(|(reporter, resource, site, payload, trace)| {
            let address: BranchId = format!(
                "reporter={reporter},resource={resource},site={site},vo=tg"
            )
            .parse()
            .unwrap();
            let report = ReportBuilder::new(reporter, "1.0")
                .host(resource)
                .gmt(Timestamp::from_secs(0))
                .body_value("v", &payload)
                .success()
                .unwrap()
                .to_xml();
            let mut env = Envelope::new(address, report);
            if let Some(ctx) = trace {
                env = env.with_trace(ctx);
            }
            env
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_modes_decode_to_the_same_envelope(env in envelope_strategy()) {
        for mode in [EnvelopeMode::Body, EnvelopeMode::Attachment, EnvelopeMode::Binary] {
            let decoded = Envelope::decode(&env.encode(mode)).unwrap();
            prop_assert_eq!(&decoded, &env, "mode {:?} not a faithful encoding", mode);
        }
    }

    #[test]
    fn view_agrees_with_full_decode_in_every_mode(env in envelope_strategy()) {
        for mode in [EnvelopeMode::Body, EnvelopeMode::Attachment, EnvelopeMode::Binary] {
            let payload = env.encode(mode);
            let view = EnvelopeView::decode(&payload).unwrap();
            prop_assert_eq!(&view.address, &env.address);
            prop_assert_eq!(view.report_xml.as_ref(), env.report_xml.as_str());
            prop_assert_eq!(view.trace, env.trace);
            // Only the binary path may skip full validation — and only
            // it is allowed to borrow from the payload.
            match mode {
                EnvelopeMode::Binary => {
                    prop_assert!(!view.validated);
                    prop_assert!(matches!(view.report_xml, Cow::Borrowed(_)));
                }
                _ => prop_assert!(view.validated),
            }
            prop_assert_eq!(&view.into_envelope(), &env);
        }
    }

    #[test]
    fn truncated_binary_frames_never_decode(env in envelope_strategy(), cut in 1usize..32) {
        let payload = env.encode(EnvelopeMode::Binary);
        let cut = cut.min(payload.len() - 1);
        let truncated = &payload[..payload.len() - cut];
        if truncated.len() < 3 {
            return Ok(());
        }
        // A truncated frame must fail loudly — never decode to a
        // *different* report or address. The single clean-decode case
        // is a cut landing exactly on a section boundary, which can
        // only drop the optional trailing trace section whole.
        match EnvelopeView::decode(truncated) {
            Err(_) => {}
            Ok(view) => {
                prop_assert!(env.trace.is_some(), "cut inside required sections must error");
                prop_assert_eq!(&view.address, &env.address);
                prop_assert_eq!(view.report_xml.as_ref(), env.report_xml.as_str());
                prop_assert_eq!(view.trace, None);
            }
        }
    }
}
