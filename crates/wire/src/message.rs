//! Client messages: what a distributed controller sends the server.
//!
//! Each frame on the controller→server connection carries one XML
//! message: the submitting resource, the branch identifier that
//! addresses the report in the depot, and the report itself. Error
//! reports (§3.1.3: "If there is an error executing a reporter, a
//! special report is sent to the central controller") use the same
//! shape with a flag, so the server can count them separately.

use std::fmt;

use inca_obs::TraceContext;
use inca_report::{BranchId, Report};
use inca_xml::{escape::escape_text, Element, XmlError};

/// Errors from encoding/decoding wire messages.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The XML could not be parsed or was structurally wrong.
    Malformed(String),
    /// The embedded branch identifier was invalid.
    BadBranch(String),
    /// The embedded report violates the reporter specification.
    BadReport(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Malformed(m) => write!(f, "malformed wire message: {m}"),
            WireError::BadBranch(m) => write!(f, "bad branch identifier: {m}"),
            WireError::BadReport(m) => write!(f, "bad report payload: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<XmlError> for WireError {
    fn from(e: XmlError) -> Self {
        WireError::Malformed(e.to_string())
    }
}

/// A message from a distributed controller to the centralized
/// controller.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientMessage {
    /// Hostname of the submitting resource (checked against the
    /// server's allowlist).
    pub resource: String,
    /// Where the report should be stored.
    pub branch: BranchId,
    /// The serialized report.
    pub report_xml: String,
    /// Whether this is an execution-error report rather than reporter
    /// output.
    pub is_error_report: bool,
    /// Trace context of the controller run that produced the report,
    /// carried as an optional `trace` attribute so the server can
    /// stitch its spans into the same trace. Absent from messages sent
    /// by peers without tracing.
    pub trace: Option<TraceContext>,
    /// Reliable-delivery identity `(daemon_id, seq)`, carried as
    /// `daemon`/`seq` attributes. A daemon's spool stamps every report
    /// with a monotonically increasing sequence number so the server
    /// can ingest retried submissions idempotently (a lost reply makes
    /// the daemon re-send; without the stamp the same report would be
    /// counted twice). Absent from peers without a spool, which get
    /// the old at-most-once semantics.
    pub origin: Option<(String, u64)>,
    /// Forwarding hop, carried as an optional `via` attribute: the id
    /// of the depot relay that spooled this message toward its parent.
    /// A federated parent authenticates the *hop* (the relay must be
    /// on its allowlist) while `resource` keeps naming the leaf host
    /// that produced the report. Absent on direct submissions.
    pub via: Option<String>,
}

impl ClientMessage {
    /// Builds a normal report submission.
    pub fn report(resource: impl Into<String>, branch: BranchId, report: &Report) -> Self {
        ClientMessage {
            resource: resource.into(),
            branch,
            report_xml: report.to_xml(),
            is_error_report: false,
            trace: None,
            origin: None,
            via: None,
        }
    }

    /// Builds an execution-error submission.
    pub fn error_report(resource: impl Into<String>, branch: BranchId, report: &Report) -> Self {
        ClientMessage {
            resource: resource.into(),
            branch,
            report_xml: report.to_xml(),
            is_error_report: true,
            trace: None,
            origin: None,
            via: None,
        }
    }

    /// Attaches a trace context to carry across the wire.
    pub fn with_trace(mut self, ctx: TraceContext) -> Self {
        self.trace = Some(ctx);
        self
    }

    /// Stamps the reliable-delivery identity `(daemon_id, seq)`.
    pub fn with_origin(mut self, daemon: impl Into<String>, seq: u64) -> Self {
        self.origin = Some((daemon.into(), seq));
        self
    }

    /// Stamps the forwarding hop: which depot relay carried this
    /// message toward its parent.
    pub fn with_via(mut self, depot: impl Into<String>) -> Self {
        self.via = Some(depot.into());
        self
    }

    /// Serializes to the frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let kind = if self.is_error_report { "error" } else { "report" };
        let trace_attr = match self.trace {
            Some(ctx) => format!(" trace=\"{ctx}\""),
            None => String::new(),
        };
        let origin_attr = match &self.origin {
            Some((daemon, seq)) => {
                format!(" daemon=\"{}\" seq=\"{seq}\"", escape_text(daemon))
            }
            None => String::new(),
        };
        let via_attr = match &self.via {
            Some(depot) => format!(" via=\"{}\"", escape_text(depot)),
            None => String::new(),
        };
        let mut xml = String::with_capacity(self.report_xml.len() + 256);
        xml.push_str(&format!(
            "<incaMessage kind=\"{kind}\"{trace_attr}{origin_attr}{via_attr}><resource>{}</resource><branch>{}</branch><payload>{}</payload></incaMessage>",
            escape_text(&self.resource),
            escape_text(&self.branch.to_string()),
            escape_text(&self.report_xml),
        ));
        xml.into_bytes()
    }

    /// Parses a frame payload, validating branch and report.
    pub fn decode(payload: &[u8]) -> Result<ClientMessage, WireError> {
        let text = std::str::from_utf8(payload)
            .map_err(|e| WireError::Malformed(format!("not UTF-8: {e}")))?;
        let root = Element::parse(text)?;
        if root.name != "incaMessage" {
            return Err(WireError::Malformed(format!(
                "expected <incaMessage>, found <{}>",
                root.name
            )));
        }
        let kind = root.attribute("kind").unwrap_or("report");
        let is_error_report = match kind {
            "report" => false,
            "error" => true,
            other => return Err(WireError::Malformed(format!("unknown kind {other:?}"))),
        };
        let resource = root
            .child_text("resource")
            .ok_or_else(|| WireError::Malformed("missing <resource>".into()))?;
        let branch_text = root
            .child_text("branch")
            .ok_or_else(|| WireError::Malformed("missing <branch>".into()))?;
        let branch: BranchId =
            branch_text.parse().map_err(|e| WireError::BadBranch(format!("{e}")))?;
        let report_xml = root
            .child_text("payload")
            .ok_or_else(|| WireError::Malformed("missing <payload>".into()))?;
        // Validate the payload is a spec-conformant report before the
        // server accepts it.
        Report::parse(&report_xml).map_err(|e| WireError::BadReport(e.to_string()))?;
        // Trace context is diagnostic metadata: a missing or mangled
        // attribute must never cost us the report, so it degrades to
        // None instead of erroring.
        let trace = root.attribute("trace").and_then(|t| t.parse().ok());
        // Same tolerance for the delivery identity: a peer that sends
        // no (or a mangled) stamp falls back to undeduplicated
        // at-most-once ingest rather than losing the report.
        let origin = match (root.attribute("daemon"), root.attribute("seq")) {
            (Some(daemon), Some(seq)) => {
                seq.parse().ok().map(|seq| (daemon.to_string(), seq))
            }
            _ => None,
        };
        // The hop stamp is authentication metadata for federated
        // parents; absent on direct submissions, so it decodes
        // tolerantly like the other optional attributes.
        let via = root.attribute("via").map(str::to_string);
        Ok(ClientMessage { resource, branch, report_xml, is_error_report, trace, origin, via })
    }
}

/// The server's one-frame reply to each submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerResponse {
    /// Report accepted and handed to the depot.
    Ack,
    /// Report rejected with a reason (host not allowed, malformed…).
    Rejected(String),
}

impl ServerResponse {
    /// Serializes to the reply frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            ServerResponse::Ack => b"<ack/>".to_vec(),
            ServerResponse::Rejected(reason) => {
                format!("<rejected>{}</rejected>", escape_text(reason)).into_bytes()
            }
        }
    }

    /// Parses a reply frame payload.
    pub fn decode(payload: &[u8]) -> Result<ServerResponse, WireError> {
        let text = std::str::from_utf8(payload)
            .map_err(|e| WireError::Malformed(format!("not UTF-8: {e}")))?;
        let root = Element::parse(text)?;
        match root.name.as_str() {
            "ack" => Ok(ServerResponse::Ack),
            "rejected" => Ok(ServerResponse::Rejected(root.text())),
            other => Err(WireError::Malformed(format!("unexpected reply <{other}>"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inca_report::ReportBuilder;

    fn sample_report() -> Report {
        ReportBuilder::new("version.globus", "1.0")
            .host("tg-login1.sdsc.teragrid.org")
            .body_value("packageVersion", "2.4.3")
            .success()
            .unwrap()
    }

    fn sample_branch() -> BranchId {
        "reporter=version.globus,resource=tg-login1,site=sdsc,vo=teragrid".parse().unwrap()
    }

    #[test]
    fn report_roundtrip() {
        let msg = ClientMessage::report("tg-login1.sdsc.teragrid.org", sample_branch(), &sample_report());
        let decoded = ClientMessage::decode(&msg.encode()).unwrap();
        assert_eq!(decoded, msg);
        assert!(!decoded.is_error_report);
    }

    #[test]
    fn error_report_roundtrip() {
        let report = Report::execution_error(
            sample_report().header,
            "reporter exceeded expected run time; killed",
        );
        let msg = ClientMessage::error_report("host", sample_branch(), &report);
        let decoded = ClientMessage::decode(&msg.encode()).unwrap();
        assert!(decoded.is_error_report);
        assert!(decoded.report_xml.contains("exceeded expected run time"));
    }

    #[test]
    fn trace_context_roundtrips_and_degrades_gracefully() {
        let ctx = TraceContext { trace_id: 0xdead_beef, parent_span_id: 0x77 };
        let msg = ClientMessage::report("h", sample_branch(), &sample_report()).with_trace(ctx);
        let decoded = ClientMessage::decode(&msg.encode()).unwrap();
        assert_eq!(decoded.trace, Some(ctx));
        assert_eq!(decoded, msg);

        // A mangled trace attribute drops to None without losing the
        // report.
        let mangled = String::from_utf8(msg.encode())
            .unwrap()
            .replace(&ctx.to_string(), "garbage");
        let decoded = ClientMessage::decode(mangled.as_bytes()).unwrap();
        assert_eq!(decoded.trace, None);
        assert_eq!(decoded.branch, msg.branch);
    }

    #[test]
    fn origin_roundtrips_and_degrades_gracefully() {
        let msg = ClientMessage::report("h", sample_branch(), &sample_report())
            .with_origin("tg-login1.sdsc.teragrid.org", 41);
        let decoded = ClientMessage::decode(&msg.encode()).unwrap();
        assert_eq!(decoded.origin, Some(("tg-login1.sdsc.teragrid.org".into(), 41)));
        assert_eq!(decoded, msg);

        // A mangled seq drops the stamp without losing the report.
        let mangled =
            String::from_utf8(msg.encode()).unwrap().replace("seq=\"41\"", "seq=\"x\"");
        let decoded = ClientMessage::decode(mangled.as_bytes()).unwrap();
        assert_eq!(decoded.origin, None);
        assert_eq!(decoded.branch, msg.branch);
    }

    #[test]
    fn via_roundtrips_and_degrades_gracefully() {
        let msg = ClientMessage::report("h", sample_branch(), &sample_report())
            .with_origin("depot-west", 7)
            .with_via("depot-west");
        let decoded = ClientMessage::decode(&msg.encode()).unwrap();
        assert_eq!(decoded.via.as_deref(), Some("depot-west"));
        assert_eq!(decoded, msg);

        // A message without the hop stamp (a direct submission, or a
        // peer predating federation) decodes with via = None.
        let stripped =
            String::from_utf8(msg.encode()).unwrap().replace(" via=\"depot-west\"", "");
        let decoded = ClientMessage::decode(stripped.as_bytes()).unwrap();
        assert_eq!(decoded.via, None);
        assert_eq!(decoded.branch, msg.branch);
    }

    #[test]
    fn payload_with_markup_survives_escaping() {
        let report = ReportBuilder::new("r", "1")
            .body_value("output", "stderr said: <error> & more")
            .success()
            .unwrap();
        let msg = ClientMessage::report("h", sample_branch(), &report);
        let decoded = ClientMessage::decode(&msg.encode()).unwrap();
        let inner = Report::parse(&decoded.report_xml).unwrap();
        let p: inca_xml::IncaPath = "output".parse().unwrap();
        assert_eq!(inner.body.lookup_text(&p).unwrap(), "stderr said: <error> & more");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(ClientMessage::decode(b"not xml").is_err());
        assert!(ClientMessage::decode(b"<wrongRoot/>").is_err());
        assert!(ClientMessage::decode(&[0xFF, 0xFE]).is_err());
    }

    #[test]
    fn decode_rejects_bad_branch() {
        let payload = format!(
            "<incaMessage kind=\"report\"><resource>h</resource><branch>notbranch</branch><payload>{}</payload></incaMessage>",
            escape_text(&sample_report().to_xml())
        );
        assert!(matches!(
            ClientMessage::decode(payload.as_bytes()),
            Err(WireError::BadBranch(_))
        ));
    }

    #[test]
    fn decode_rejects_invalid_report_payload() {
        let payload = format!(
            "<incaMessage kind=\"report\"><resource>h</resource><branch>{}</branch><payload>&lt;notAReport/&gt;</payload></incaMessage>",
            sample_branch()
        );
        assert!(matches!(
            ClientMessage::decode(payload.as_bytes()),
            Err(WireError::BadReport(_))
        ));
    }

    #[test]
    fn decode_rejects_unknown_kind() {
        let payload = "<incaMessage kind=\"telepathy\"><resource>h</resource><branch>a=1</branch><payload>x</payload></incaMessage>";
        assert!(ClientMessage::decode(payload.as_bytes()).is_err());
    }

    #[test]
    fn response_roundtrips() {
        for resp in [ServerResponse::Ack, ServerResponse::Rejected("host not allowed".into())] {
            assert_eq!(ServerResponse::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn response_decode_rejects_garbage() {
        assert!(ServerResponse::decode(b"<what/>").is_err());
        assert!(ServerResponse::decode(b"nope").is_err());
    }
}
