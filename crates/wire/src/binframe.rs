//! Zero-copy binary envelope framing.
//!
//! The XML envelope ([`crate::Envelope`]) deliberately reproduces the
//! §5.2.2 cost: every unpack tokenizes the whole frame, unescapes the
//! body and re-parses the inner report. The binary frame is the fast
//! path beside it — a length-prefixed section format whose decoder
//! returns *borrowed* slices of the incoming payload, so the depot can
//! splice report bytes straight into its cache without copying or
//! parsing them, deferring XML materialization to archive/query time.
//!
//! ## Frame layout
//!
//! ```text
//! [0xB1 'I' 'N'] [version: u8 = 1] then sections:
//!     [tag: u8] [len: u32 BE] [len bytes]
//!
//! tag 0x01  ADDRESS  branch identifier, UTF-8 (required)
//! tag 0x02  REPORT   raw report XML bytes (required)
//! tag 0x03  TRACE    trace_id u64 BE + parent_span_id u64 BE (optional)
//! ```
//!
//! Unknown section tags are skipped (forward compatibility); duplicate
//! known tags are rejected. The magic's first byte `0xB1` is a UTF-8
//! continuation byte, so no XML document (or any valid UTF-8 text) can
//! start with it — a frame is self-describing and the two formats
//! negotiate per payload: a receiver that understands binary frames
//! takes the fast path, everything else still decodes the XML envelope.

use inca_obs::TraceContext;

use crate::message::WireError;

/// First magic byte. `0xB1` can never begin valid UTF-8 text, so a
/// binary frame is distinguishable from every XML envelope by one byte.
pub const BINARY_MAGIC: [u8; 3] = [0xB1, b'I', b'N'];
/// Current frame version, bumped on incompatible layout changes.
pub const BINARY_VERSION: u8 = 1;

/// Section tag: the branch identifier (envelope address), UTF-8.
pub const SECTION_ADDRESS: u8 = 0x01;
/// Section tag: raw report XML bytes.
pub const SECTION_REPORT: u8 = 0x02;
/// Section tag: trace context (two big-endian u64s).
pub const SECTION_TRACE: u8 = 0x03;

/// Whether `payload` is a binary frame (vs. an XML envelope).
pub fn is_binary_frame(payload: &[u8]) -> bool {
    payload.starts_with(&BINARY_MAGIC)
}

/// Appends one `[tag][len: u32 BE][bytes]` section to `out`.
pub fn put_section(out: &mut Vec<u8>, tag: u8, bytes: &[u8]) {
    out.push(tag);
    out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    out.extend_from_slice(bytes);
}

/// Iterator-style reader over the sections of a frame body.
///
/// Yields `(tag, bytes)` pairs borrowing from the input; callers decide
/// which tags they understand. Truncated sections are an error, not a
/// silent stop.
#[derive(Debug, Clone)]
pub struct SectionReader<'a> {
    rest: &'a [u8],
}

impl<'a> SectionReader<'a> {
    /// Reads sections from `body` (the bytes after any frame header).
    pub fn new(body: &'a [u8]) -> SectionReader<'a> {
        SectionReader { rest: body }
    }

    /// The next `(tag, bytes)` section, `None` at a clean end.
    pub fn next_section(&mut self) -> Result<Option<(u8, &'a [u8])>, WireError> {
        if self.rest.is_empty() {
            return Ok(None);
        }
        if self.rest.len() < 5 {
            return Err(WireError::Malformed("truncated section header".into()));
        }
        let tag = self.rest[0];
        let len = u32::from_be_bytes([self.rest[1], self.rest[2], self.rest[3], self.rest[4]])
            as usize;
        let body = &self.rest[5..];
        if body.len() < len {
            return Err(WireError::Malformed(format!(
                "section 0x{tag:02x} declares {len} bytes, {} remain",
                body.len()
            )));
        }
        self.rest = &body[len..];
        Ok(Some((tag, &body[..len])))
    }
}

/// Encodes a binary frame from its parts.
pub fn encode_binary(address: &str, report: &[u8], trace: Option<TraceContext>) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 5 + address.len() + 5 + report.len() + 5 + 16);
    out.extend_from_slice(&BINARY_MAGIC);
    out.push(BINARY_VERSION);
    put_section(&mut out, SECTION_ADDRESS, address.as_bytes());
    put_section(&mut out, SECTION_REPORT, report);
    if let Some(ctx) = trace {
        let mut t = [0u8; 16];
        t[..8].copy_from_slice(&ctx.trace_id.to_be_bytes());
        t[8..].copy_from_slice(&ctx.parent_span_id.to_be_bytes());
        put_section(&mut out, SECTION_TRACE, &t);
    }
    out
}

/// The decoded parts of a binary frame, borrowing from the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryFrame<'a> {
    /// The envelope address (branch identifier), not yet parsed.
    pub address: &'a str,
    /// The raw report bytes, exactly as the sender framed them.
    pub report: &'a [u8],
    /// Optional trace context.
    pub trace: Option<TraceContext>,
}

/// Decodes a binary frame without copying the report bytes.
pub fn decode_binary(payload: &[u8]) -> Result<BinaryFrame<'_>, WireError> {
    if !is_binary_frame(payload) {
        return Err(WireError::Malformed("not a binary frame (bad magic)".into()));
    }
    let version = *payload
        .get(BINARY_MAGIC.len())
        .ok_or_else(|| WireError::Malformed("truncated binary frame".into()))?;
    if version != BINARY_VERSION {
        return Err(WireError::Malformed(format!(
            "unsupported binary frame version {version}"
        )));
    }
    let mut sections = SectionReader::new(&payload[BINARY_MAGIC.len() + 1..]);
    let mut address: Option<&str> = None;
    let mut report: Option<&[u8]> = None;
    let mut trace: Option<TraceContext> = None;
    while let Some((tag, bytes)) = sections.next_section()? {
        match tag {
            SECTION_ADDRESS => {
                if address.is_some() {
                    return Err(WireError::Malformed("duplicate ADDRESS section".into()));
                }
                address = Some(std::str::from_utf8(bytes).map_err(|e| {
                    WireError::Malformed(format!("address not UTF-8: {e}"))
                })?);
            }
            SECTION_REPORT => {
                if report.is_some() {
                    return Err(WireError::Malformed("duplicate REPORT section".into()));
                }
                report = Some(bytes);
            }
            SECTION_TRACE => {
                if bytes.len() != 16 {
                    return Err(WireError::Malformed(format!(
                        "TRACE section must be 16 bytes, got {}",
                        bytes.len()
                    )));
                }
                let mut id = [0u8; 8];
                id.copy_from_slice(&bytes[..8]);
                let mut span = [0u8; 8];
                span.copy_from_slice(&bytes[8..]);
                trace = Some(TraceContext {
                    trace_id: u64::from_be_bytes(id),
                    parent_span_id: u64::from_be_bytes(span),
                });
            }
            // Unknown tags are skipped: a newer sender may add sections
            // an older receiver safely ignores.
            _ => {}
        }
    }
    Ok(BinaryFrame {
        address: address
            .ok_or_else(|| WireError::Malformed("binary frame missing ADDRESS".into()))?,
        report: report
            .ok_or_else(|| WireError::Malformed("binary frame missing REPORT".into()))?,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_all_parts() {
        let ctx = TraceContext { trace_id: 0xdead_beef, parent_span_id: 0x42 };
        let frame = encode_binary("a=1,b=2", b"<incaReport/>", Some(ctx));
        let view = decode_binary(&frame).unwrap();
        assert_eq!(view.address, "a=1,b=2");
        assert_eq!(view.report, b"<incaReport/>");
        assert_eq!(view.trace, Some(ctx));
    }

    #[test]
    fn decode_is_zero_copy() {
        let frame = encode_binary("a=1", b"<incaReport/>", None);
        let view = decode_binary(&frame).unwrap();
        let range = frame.as_ptr() as usize..frame.as_ptr() as usize + frame.len();
        assert!(range.contains(&(view.report.as_ptr() as usize)));
        assert!(range.contains(&(view.address.as_ptr() as usize)));
    }

    #[test]
    #[allow(invalid_from_utf8)] // the invalidity is exactly what we assert
    fn magic_is_not_valid_utf8_or_xml() {
        assert!(std::str::from_utf8(&BINARY_MAGIC).is_err());
        assert_ne!(BINARY_MAGIC[0], b'<');
    }

    #[test]
    fn skips_unknown_sections() {
        let mut frame = encode_binary("a=1", b"<r/>", None);
        put_section(&mut frame, 0x7f, b"future stuff");
        let view = decode_binary(&frame).unwrap();
        assert_eq!(view.address, "a=1");
    }

    #[test]
    fn rejects_garbage() {
        assert!(decode_binary(b"").is_err());
        assert!(decode_binary(b"<soapEnvelope/>").is_err());
        assert!(decode_binary(&[0xB1, b'I', b'N']).is_err()); // no version
        assert!(decode_binary(&[0xB1, b'I', b'N', 99]).is_err()); // bad version
        let frame = encode_binary("a=1", b"<r/>", None);
        assert!(decode_binary(&frame[..frame.len() - 1]).is_err()); // truncated
        let mut dup = frame.clone();
        put_section(&mut dup, SECTION_ADDRESS, b"b=2");
        assert!(decode_binary(&dup).is_err()); // duplicate address
        let mut no_report = Vec::new();
        no_report.extend_from_slice(&BINARY_MAGIC);
        no_report.push(BINARY_VERSION);
        put_section(&mut no_report, SECTION_ADDRESS, b"a=1");
        assert!(decode_binary(&no_report).is_err()); // missing report
    }
}
