//! Length-prefixed framing over byte streams.
//!
//! The distributed controller "communicates a report to the Inca server
//! … using a TCP connection" (§3.1.3). Frames are a 4-byte big-endian
//! length followed by that many payload bytes; a hard cap protects the
//! server from hostile or corrupted peers.

use std::fmt;
use std::io::{self, Read, Write};

/// Maximum accepted frame length (16 MiB — far above any report; the
/// largest TeraGrid report bucket was 40–50 KB).
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Errors produced while reading a frame.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying I/O failed.
    Io(io::Error),
    /// Peer announced a frame larger than [`MAX_FRAME_LEN`].
    TooLarge {
        /// The announced length.
        announced: usize,
    },
    /// The stream ended cleanly before a frame header (normal EOF).
    Closed,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::TooLarge { announced } => {
                write!(f, "frame of {announced} bytes exceeds cap of {MAX_FRAME_LEN}")
            }
            FrameError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame (length prefix + payload) and flushes.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "payload exceeds u32"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Incremental frame accumulator for non-blocking readers.
///
/// The blocking [`read_frame`] owns its stream until a whole frame
/// arrives; a readiness-driven server cannot afford that. `FrameBuffer`
/// accepts bytes as the socket yields them ([`FrameBuffer::extend`])
/// and hands back complete frames ([`FrameBuffer::next_frame`]) as soon
/// as the length prefix and payload are fully buffered — a header or
/// payload split across any number of reads is reassembled
/// transparently. The oversize cap is enforced from the header alone,
/// before any payload is buffered.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted once it outgrows the live
    /// remainder so a long-lived connection never accretes old bytes.
    start: usize,
}

impl FrameBuffer {
    /// An empty accumulator.
    pub fn new() -> FrameBuffer {
        FrameBuffer::default()
    }

    /// Appends bytes read from the stream.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Pops the next complete frame, `Ok(None)` while more bytes are
    /// needed. A header announcing more than [`MAX_FRAME_LEN`] is
    /// rejected immediately, without waiting for (or allocating) the
    /// payload.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let live = &self.buf[self.start..];
        if live.len() < 4 {
            self.compact();
            return Ok(None);
        }
        let len = u32::from_be_bytes([live[0], live[1], live[2], live[3]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(FrameError::TooLarge { announced: len });
        }
        if live.len() < 4 + len {
            self.compact();
            return Ok(None);
        }
        let payload = live[4..4 + len].to_vec();
        self.start += 4 + len;
        self.compact();
        Ok(Some(payload))
    }

    /// Drops the consumed prefix when it dominates the buffer.
    fn compact(&mut self) {
        if self.start > 0 && self.start >= self.buf.len() / 2 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

/// Reads one frame. Returns [`FrameError::Closed`] on clean EOF before
/// the header.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Err(FrameError::Closed),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame header",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge { announced: len });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_single_frame() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap(), b"hello");
    }

    #[test]
    fn roundtrip_multiple_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"one").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &vec![7u8; 10_000]).unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap(), b"one");
        assert_eq!(read_frame(&mut cur).unwrap(), b"");
        assert_eq!(read_frame(&mut cur).unwrap().len(), 10_000);
        assert!(matches!(read_frame(&mut cur), Err(FrameError::Closed)));
    }

    #[test]
    fn clean_eof_is_closed() {
        let mut cur = Cursor::new(Vec::new());
        assert!(matches!(read_frame(&mut cur), Err(FrameError::Closed)));
    }

    #[test]
    fn eof_inside_header_is_io_error() {
        let mut cur = Cursor::new(vec![0u8, 0u8]);
        assert!(matches!(read_frame(&mut cur), Err(FrameError::Io(_))));
    }

    #[test]
    fn eof_inside_payload_is_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"full payload").unwrap();
        buf.truncate(8);
        let mut cur = Cursor::new(buf);
        assert!(matches!(read_frame(&mut cur), Err(FrameError::Io(_))));
    }

    #[test]
    fn oversized_frame_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut cur = Cursor::new(buf);
        assert!(matches!(read_frame(&mut cur), Err(FrameError::TooLarge { .. })));
    }

    #[test]
    fn frame_buffer_reassembles_byte_at_a_time() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"alpha").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, &vec![9u8; 5_000]).unwrap();
        let mut fb = FrameBuffer::new();
        let mut frames = Vec::new();
        for byte in wire {
            fb.extend(&[byte]);
            while let Some(f) = fb.next_frame().unwrap() {
                frames.push(f);
            }
        }
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0], b"alpha");
        assert_eq!(frames[1], b"");
        assert_eq!(frames[2].len(), 5_000);
        assert_eq!(fb.buffered(), 0);
    }

    #[test]
    fn frame_buffer_pops_multiple_frames_from_one_read() {
        let mut wire = Vec::new();
        for i in 0..10u8 {
            write_frame(&mut wire, &[i; 3]).unwrap();
        }
        let mut fb = FrameBuffer::new();
        fb.extend(&wire);
        for i in 0..10u8 {
            assert_eq!(fb.next_frame().unwrap().unwrap(), [i; 3]);
        }
        assert_eq!(fb.next_frame().unwrap(), None);
    }

    #[test]
    fn frame_buffer_rejects_oversize_header_before_payload() {
        let mut fb = FrameBuffer::new();
        fb.extend(&u32::MAX.to_be_bytes());
        assert!(matches!(fb.next_frame(), Err(FrameError::TooLarge { .. })));
    }

    #[test]
    fn frame_buffer_compacts_consumed_prefix() {
        let mut fb = FrameBuffer::new();
        let mut wire = Vec::new();
        write_frame(&mut wire, &vec![1u8; 10_000]).unwrap();
        fb.extend(&wire);
        assert!(fb.next_frame().unwrap().is_some());
        // The consumed frame must not linger in the internal buffer.
        assert_eq!(fb.buffered(), 0);
        assert!(fb.buf.len() < 10_000, "consumed bytes were not compacted");
    }

    #[test]
    fn frame_sizes_match_paper_buckets() {
        // The four synthetic report sizes from §5.2.2 all frame fine.
        for size in [851usize, 9_257, 23_168, 45_527] {
            let payload = vec![b'x'; size];
            let mut buf = Vec::new();
            write_frame(&mut buf, &payload).unwrap();
            assert_eq!(buf.len(), size + 4);
            let mut cur = Cursor::new(buf);
            assert_eq!(read_frame(&mut cur).unwrap(), payload);
        }
    }
}
