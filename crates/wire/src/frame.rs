//! Length-prefixed framing over byte streams.
//!
//! The distributed controller "communicates a report to the Inca server
//! … using a TCP connection" (§3.1.3). Frames are a 4-byte big-endian
//! length followed by that many payload bytes; a hard cap protects the
//! server from hostile or corrupted peers.

use std::fmt;
use std::io::{self, Read, Write};

/// Maximum accepted frame length (16 MiB — far above any report; the
/// largest TeraGrid report bucket was 40–50 KB).
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Errors produced while reading a frame.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying I/O failed.
    Io(io::Error),
    /// Peer announced a frame larger than [`MAX_FRAME_LEN`].
    TooLarge {
        /// The announced length.
        announced: usize,
    },
    /// The stream ended cleanly before a frame header (normal EOF).
    Closed,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::TooLarge { announced } => {
                write!(f, "frame of {announced} bytes exceeds cap of {MAX_FRAME_LEN}")
            }
            FrameError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame (length prefix + payload) and flushes.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "payload exceeds u32"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. Returns [`FrameError::Closed`] on clean EOF before
/// the header.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Err(FrameError::Closed),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame header",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge { announced: len });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_single_frame() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap(), b"hello");
    }

    #[test]
    fn roundtrip_multiple_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"one").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &vec![7u8; 10_000]).unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap(), b"one");
        assert_eq!(read_frame(&mut cur).unwrap(), b"");
        assert_eq!(read_frame(&mut cur).unwrap().len(), 10_000);
        assert!(matches!(read_frame(&mut cur), Err(FrameError::Closed)));
    }

    #[test]
    fn clean_eof_is_closed() {
        let mut cur = Cursor::new(Vec::new());
        assert!(matches!(read_frame(&mut cur), Err(FrameError::Closed)));
    }

    #[test]
    fn eof_inside_header_is_io_error() {
        let mut cur = Cursor::new(vec![0u8, 0u8]);
        assert!(matches!(read_frame(&mut cur), Err(FrameError::Io(_))));
    }

    #[test]
    fn eof_inside_payload_is_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"full payload").unwrap();
        buf.truncate(8);
        let mut cur = Cursor::new(buf);
        assert!(matches!(read_frame(&mut cur), Err(FrameError::Io(_))));
    }

    #[test]
    fn oversized_frame_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut cur = Cursor::new(buf);
        assert!(matches!(read_frame(&mut cur), Err(FrameError::TooLarge { .. })));
    }

    #[test]
    fn frame_sizes_match_paper_buckets() {
        // The four synthetic report sizes from §5.2.2 all frame fine.
        for size in [851usize, 9_257, 23_168, 45_527] {
            let payload = vec![b'x'; size];
            let mut buf = Vec::new();
            write_frame(&mut buf, &payload).unwrap();
            assert_eq!(buf.len(), size + 4);
            let mut cur = Cursor::new(buf);
            assert_eq!(read_frame(&mut cur).unwrap(), payload);
        }
    }
}
