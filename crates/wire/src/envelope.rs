//! The SOAP-analog envelope between centralized controller and depot.
//!
//! "It then creates a XML envelope, where the content of the envelope is
//! the report and the envelope address is the branch identifier. The
//! envelope is forwarded to the depot through a Web services interface"
//! (§3.2.1). Section 5.2.2 measures the cost of this interface:
//! unpacking the envelope grows with report size ("it takes almost 3
//! seconds to unpack the SOAP envelope and get the largest report ready
//! for addition to the cache"), and the paper proposes shipping reports
//! "as SOAP attachment rather than in the body of the SOAP envelope in
//! order to speed up the unpacking process".
//!
//! All modes are implemented so the ablation bench can quantify the
//! saving:
//!
//! * [`EnvelopeMode::Body`] — the report is escaped into the envelope
//!   body; unpacking must unescape it and re-parse/validate the result
//!   (cost ∝ report size, as measured in Figure 9).
//! * [`EnvelopeMode::Attachment`] — the envelope carries only the
//!   address and a length; the report rides behind the envelope as raw
//!   bytes and unpacking is a cheap slice.
//! * [`EnvelopeMode::Binary`] — the [`crate::binframe`] section format:
//!   the decoder borrows the report bytes straight out of the payload
//!   (zero copy) and defers XML parsing entirely; see [`EnvelopeView`].
//!
//! Negotiation is per payload: a binary frame announces itself with a
//! magic byte no XML document can start with, so a single receive path
//! ([`EnvelopeView::decode`]) handles mixed traffic.

use std::borrow::Cow;

use inca_obs::TraceContext;
use inca_report::{BranchId, Report};
use inca_xml::{escape::escape_text, skim_balanced, Element};

use crate::binframe;
use crate::message::WireError;

/// How the report is packed into the envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnvelopeMode {
    /// Report escaped into the envelope body (2004 behaviour).
    Body,
    /// Report attached as raw bytes after the envelope (the paper's
    /// proposed optimization).
    Attachment,
    /// Report framed as binary sections with zero-copy decode (the
    /// post-paper fast path; see [`crate::binframe`]).
    Binary,
}

/// An addressed report in transit to the depot.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// The branch identifier — "the envelope address".
    pub address: BranchId,
    /// The serialized report — "the content of the envelope".
    pub report_xml: String,
    /// Trace context of the accept that produced the envelope, carried
    /// as an optional `trace` attribute so the depot's spans join the
    /// report's trace.
    pub trace: Option<TraceContext>,
}

/// Separator between the XML header and the raw attachment bytes.
const ATTACHMENT_SEP: u8 = 0;

impl Envelope {
    /// Creates an envelope around an already-serialized report.
    pub fn new(address: BranchId, report_xml: impl Into<String>) -> Envelope {
        Envelope { address, report_xml: report_xml.into(), trace: None }
    }

    /// Attaches a trace context to carry to the depot.
    pub fn with_trace(mut self, ctx: TraceContext) -> Envelope {
        self.trace = Some(ctx);
        self
    }

    /// Packs the envelope for the wire in the given mode.
    pub fn encode(&self, mode: EnvelopeMode) -> Vec<u8> {
        let trace_attr = match self.trace {
            Some(ctx) => format!(" trace=\"{ctx}\""),
            None => String::new(),
        };
        match mode {
            EnvelopeMode::Body => format!(
                "<soapEnvelope mode=\"body\"{trace_attr}><address>{}</address><body>{}</body></soapEnvelope>",
                escape_text(&self.address.to_string()),
                escape_text(&self.report_xml),
            )
            .into_bytes(),
            EnvelopeMode::Attachment => {
                let header = format!(
                    "<soapEnvelope mode=\"attachment\" length=\"{}\"{trace_attr}><address>{}</address></soapEnvelope>",
                    self.report_xml.len(),
                    escape_text(&self.address.to_string()),
                );
                let mut out = Vec::with_capacity(header.len() + 1 + self.report_xml.len());
                out.extend_from_slice(header.as_bytes());
                out.push(ATTACHMENT_SEP);
                out.extend_from_slice(self.report_xml.as_bytes());
                out
            }
            EnvelopeMode::Binary => binframe::encode_binary(
                &self.address.to_string(),
                self.report_xml.as_bytes(),
                self.trace,
            ),
        }
    }

    /// Unpacks an envelope, validating the contained report.
    ///
    /// In body mode this is the expensive path the paper measured: the
    /// whole envelope is tokenized, the body unescaped, and the inner
    /// report re-parsed for validation. In attachment mode only the
    /// small header is parsed and the report is sliced out; the report
    /// is still validated once (the depot must not cache garbage), but
    /// no unescape pass is needed.
    pub fn decode(payload: &[u8]) -> Result<Envelope, WireError> {
        // Binary frames announce themselves with a magic byte that
        // cannot begin UTF-8 text; check before the NUL scan below
        // (binary section bodies may legitimately contain NULs).
        if binframe::is_binary_frame(payload) {
            let frame = binframe::decode_binary(payload)?;
            let address: BranchId =
                frame.address.parse().map_err(|e| WireError::BadBranch(format!("{e}")))?;
            let report_xml = std::str::from_utf8(frame.report)
                .map_err(|e| WireError::Malformed(format!("report not UTF-8: {e}")))?
                .to_string();
            Report::parse(&report_xml).map_err(|e| WireError::BadReport(e.to_string()))?;
            return Ok(Envelope { address, report_xml, trace: frame.trace });
        }

        // Attachment frames contain a NUL separator which never occurs
        // in XML text; use it to split header from raw content.
        if let Some(sep) = payload.iter().position(|&b| b == ATTACHMENT_SEP) {
            let header = std::str::from_utf8(&payload[..sep])
                .map_err(|e| WireError::Malformed(format!("header not UTF-8: {e}")))?;
            let root = Element::parse(header)?;
            Self::expect_envelope(&root, "attachment")?;
            let address = Self::address_of(&root)?;
            let declared: usize = root
                .attribute("length")
                .and_then(|l| l.parse().ok())
                .ok_or_else(|| WireError::Malformed("missing/invalid length".into()))?;
            let content = &payload[sep + 1..];
            if content.len() != declared {
                return Err(WireError::Malformed(format!(
                    "attachment length mismatch: declared {declared}, found {}",
                    content.len()
                )));
            }
            let report_xml = std::str::from_utf8(content)
                .map_err(|e| WireError::Malformed(format!("attachment not UTF-8: {e}")))?
                .to_string();
            Report::parse(&report_xml).map_err(|e| WireError::BadReport(e.to_string()))?;
            return Ok(Envelope { address, report_xml, trace: Self::trace_of(&root) });
        }

        let text = std::str::from_utf8(payload)
            .map_err(|e| WireError::Malformed(format!("not UTF-8: {e}")))?;
        let root = Element::parse(text)?;
        Self::expect_envelope(&root, "body")?;
        let address = Self::address_of(&root)?;
        let report_xml = root
            .child_text("body")
            .ok_or_else(|| WireError::Malformed("missing <body>".into()))?;
        Report::parse(&report_xml).map_err(|e| WireError::BadReport(e.to_string()))?;
        Ok(Envelope { address, report_xml, trace: Self::trace_of(&root) })
    }

    /// Trace context from the optional `trace` attribute. Diagnostic
    /// metadata only: a mangled value degrades to `None`, it never
    /// rejects the envelope.
    fn trace_of(root: &Element) -> Option<TraceContext> {
        root.attribute("trace").and_then(|t| t.parse().ok())
    }

    fn expect_envelope(root: &Element, mode: &str) -> Result<(), WireError> {
        if root.name != "soapEnvelope" {
            return Err(WireError::Malformed(format!(
                "expected <soapEnvelope>, found <{}>",
                root.name
            )));
        }
        match root.attribute("mode") {
            Some(m) if m == mode => Ok(()),
            Some(m) => Err(WireError::Malformed(format!(
                "envelope mode mismatch: frame looks like {mode:?} but declares {m:?}"
            ))),
            None => Err(WireError::Malformed("envelope missing mode attribute".into())),
        }
    }

    fn address_of(root: &Element) -> Result<BranchId, WireError> {
        let text = root
            .child_text("address")
            .ok_or_else(|| WireError::Malformed("missing <address>".into()))?;
        text.parse().map_err(|e| WireError::BadBranch(format!("{e}")))
    }
}

/// A decoded envelope that borrows its report bytes when it can.
///
/// This is the depot's receive-side view. For binary frames the report
/// is a borrowed slice of the incoming payload, checked only by a
/// structural skim ([`inca_xml::skim_balanced`]: balanced tags, root is
/// `<incaReport>`) — full parsing is deferred to archive/query time.
/// XML envelopes fall back to [`Envelope::decode`], which validates the
/// report completely and owns its string.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvelopeView<'a> {
    /// The branch identifier — "the envelope address".
    pub address: BranchId,
    /// The serialized report: borrowed from the payload on the binary
    /// path, owned on the XML path.
    pub report_xml: Cow<'a, str>,
    /// Trace context carried with the report, if any.
    pub trace: Option<TraceContext>,
    /// Whether the report was fully parsed during decode (XML path) or
    /// only structurally skimmed (binary path).
    pub validated: bool,
}

impl<'a> EnvelopeView<'a> {
    /// Decodes any supported frame, borrowing report bytes from binary
    /// frames and falling back to the XML envelope decoder otherwise.
    pub fn decode(payload: &'a [u8]) -> Result<EnvelopeView<'a>, WireError> {
        if binframe::is_binary_frame(payload) {
            let frame = binframe::decode_binary(payload)?;
            let address: BranchId =
                frame.address.parse().map_err(|e| WireError::BadBranch(format!("{e}")))?;
            let report = std::str::from_utf8(frame.report)
                .map_err(|e| WireError::Malformed(format!("report not UTF-8: {e}")))?;
            // The cache must never hold garbage: one cheap structural
            // pass, no tree, no unescape, no copy.
            let root =
                skim_balanced(report).map_err(|e| WireError::BadReport(e.to_string()))?;
            if root != "incaReport" {
                return Err(WireError::BadReport(format!(
                    "expected <incaReport> root, found <{root}>"
                )));
            }
            return Ok(EnvelopeView {
                address,
                report_xml: Cow::Borrowed(report),
                trace: frame.trace,
                validated: false,
            });
        }
        let env = Envelope::decode(payload)?;
        Ok(EnvelopeView {
            address: env.address,
            report_xml: Cow::Owned(env.report_xml),
            trace: env.trace,
            validated: true,
        })
    }

    /// Converts into an owned [`Envelope`].
    pub fn into_envelope(self) -> Envelope {
        Envelope {
            address: self.address,
            report_xml: self.report_xml.into_owned(),
            trace: self.trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inca_report::ReportBuilder;

    fn sample() -> Envelope {
        let report = ReportBuilder::new("version.srb", "1.0")
            .host("dslogin.sdsc.edu")
            .body_value("packageVersion", "3.2.1")
            .success()
            .unwrap();
        Envelope::new(
            "reporter=version.srb,resource=dslogin,site=sdsc,vo=teragrid".parse().unwrap(),
            report.to_xml(),
        )
    }

    #[test]
    fn body_mode_roundtrip() {
        let env = sample();
        let decoded = Envelope::decode(&env.encode(EnvelopeMode::Body)).unwrap();
        assert_eq!(decoded, env);
    }

    #[test]
    fn attachment_mode_roundtrip() {
        let env = sample();
        let decoded = Envelope::decode(&env.encode(EnvelopeMode::Attachment)).unwrap();
        assert_eq!(decoded, env);
    }

    #[test]
    fn binary_mode_roundtrip() {
        let env = sample();
        let decoded = Envelope::decode(&env.encode(EnvelopeMode::Binary)).unwrap();
        assert_eq!(decoded, env);
    }

    #[test]
    fn view_borrows_binary_and_owns_xml() {
        let env = sample();
        let binary = env.encode(EnvelopeMode::Binary);
        let view = EnvelopeView::decode(&binary).unwrap();
        assert!(matches!(view.report_xml, Cow::Borrowed(_)));
        assert!(!view.validated);
        assert_eq!(view.report_xml, env.report_xml);
        assert_eq!(view.address, env.address);

        let body = env.encode(EnvelopeMode::Body);
        let view = EnvelopeView::decode(&body).unwrap();
        assert!(matches!(view.report_xml, Cow::Owned(_)));
        assert!(view.validated);
        assert_eq!(view.clone().into_envelope(), env);
    }

    #[test]
    fn view_rejects_unbalanced_or_wrong_root_binary_reports() {
        let broken = Envelope::new("a=1".parse().unwrap(), "<incaReport><x></incaReport>");
        assert!(matches!(
            EnvelopeView::decode(&broken.encode(EnvelopeMode::Binary)),
            Err(WireError::BadReport(_))
        ));
        let wrong_root = Envelope::new("a=1".parse().unwrap(), "<notAReport/>");
        assert!(matches!(
            EnvelopeView::decode(&wrong_root.encode(EnvelopeMode::Binary)),
            Err(WireError::BadReport(_))
        ));
    }

    #[test]
    fn trace_context_roundtrips_in_both_modes() {
        let ctx = TraceContext { trace_id: 0xfeed, parent_span_id: 0x42 };
        let env = sample().with_trace(ctx);
        for mode in [EnvelopeMode::Body, EnvelopeMode::Attachment, EnvelopeMode::Binary] {
            let decoded = Envelope::decode(&env.encode(mode)).unwrap();
            assert_eq!(decoded.trace, Some(ctx));
            assert_eq!(decoded, env);
        }
    }

    #[test]
    fn body_mode_grows_with_escaping() {
        // Every '<' in the report doubles to '&lt;' etc., so the body
        // encoding is strictly larger than the attachment encoding.
        let env = sample();
        let body = env.encode(EnvelopeMode::Body).len();
        let attach = env.encode(EnvelopeMode::Attachment).len();
        assert!(body > attach, "body {body} should exceed attachment {attach}");
    }

    #[test]
    fn reports_with_special_chars_survive_both_modes() {
        let report = ReportBuilder::new("r", "1")
            .body_value("err", "a<b&c \"quoted\" 'single' &amp; literal")
            .success()
            .unwrap();
        let env = Envelope::new("a=1".parse().unwrap(), report.to_xml());
        for mode in [EnvelopeMode::Body, EnvelopeMode::Attachment, EnvelopeMode::Binary] {
            let decoded = Envelope::decode(&env.encode(mode)).unwrap();
            assert_eq!(decoded.report_xml, env.report_xml);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Envelope::decode(b"junk").is_err());
        assert!(Envelope::decode(b"<soapEnvelope mode=\"body\"/>").is_err());
        assert!(Envelope::decode(b"<other/>").is_err());
    }

    #[test]
    fn decode_rejects_length_mismatch() {
        let env = sample();
        let mut bytes = env.encode(EnvelopeMode::Attachment);
        bytes.pop(); // truncate one byte of the attachment
        assert!(matches!(Envelope::decode(&bytes), Err(WireError::Malformed(_))));
    }

    #[test]
    fn decode_rejects_invalid_inner_report() {
        let env = Envelope::new("a=1".parse().unwrap(), "<notAReport/>");
        for mode in [EnvelopeMode::Body, EnvelopeMode::Attachment, EnvelopeMode::Binary] {
            assert!(matches!(
                Envelope::decode(&env.encode(mode)),
                Err(WireError::BadReport(_))
            ));
        }
    }

    #[test]
    fn decode_rejects_bad_address() {
        let report_xml = sample().report_xml;
        let payload = format!(
            "<soapEnvelope mode=\"body\"><address>no-pairs-here</address><body>{}</body></soapEnvelope>",
            escape_text(&report_xml)
        );
        assert!(matches!(
            Envelope::decode(payload.as_bytes()),
            Err(WireError::BadBranch(_))
        ));
    }
}
