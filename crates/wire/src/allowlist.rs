//! The centralized controller's host allowlist.
//!
//! "When the centralized controller receives an incoming connection
//! from a distributed controller, it checks the host against a list of
//! hostnames to see whether it should accept the connection" (§3.2.1).
//! Entries are exact hostnames or leading-wildcard patterns
//! (`*.teragrid.org`), matched case-insensitively as DNS names are.

/// A list of hosts permitted to submit reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HostAllowlist {
    exact: Vec<String>,
    /// Suffixes (including the leading dot) from `*.domain` patterns.
    suffixes: Vec<String>,
    /// Whether the list allows everyone (`*`).
    allow_all: bool,
}

impl HostAllowlist {
    /// An empty list that rejects everything.
    pub fn deny_all() -> Self {
        HostAllowlist::default()
    }

    /// A list that accepts any host (useful in tests and closed nets).
    pub fn allow_all() -> Self {
        HostAllowlist { allow_all: true, ..Default::default() }
    }

    /// Builds a list from entries (exact names, `*.suffix`, or `*`).
    pub fn from_entries<I, S>(entries: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut list = HostAllowlist::default();
        for entry in entries {
            list.add(entry.as_ref());
        }
        list
    }

    /// Adds one entry.
    pub fn add(&mut self, entry: &str) {
        let entry = entry.trim().to_ascii_lowercase();
        if entry.is_empty() {
            return;
        }
        if entry == "*" {
            self.allow_all = true;
        } else if let Some(suffix) = entry.strip_prefix("*.") {
            self.suffixes.push(format!(".{suffix}"));
        } else {
            self.exact.push(entry);
        }
    }

    /// Whether `host` may submit reports.
    pub fn allows(&self, host: &str) -> bool {
        if self.allow_all {
            return true;
        }
        let host = host.trim().to_ascii_lowercase();
        if self.exact.iter().any(|e| *e == host) {
            return true;
        }
        self.suffixes.iter().any(|s| host.ends_with(s.as_str()) && host.len() > s.len())
    }

    /// Number of configured entries (wildcard-all counts as one).
    pub fn len(&self) -> usize {
        self.exact.len() + self.suffixes.len() + usize::from(self.allow_all)
    }

    /// Whether no entry is configured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deny_all_rejects() {
        let list = HostAllowlist::deny_all();
        assert!(!list.allows("tg-login1.sdsc.teragrid.org"));
        assert!(list.is_empty());
    }

    #[test]
    fn allow_all_accepts() {
        let list = HostAllowlist::allow_all();
        assert!(list.allows("anything.example.com"));
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn exact_match() {
        let list = HostAllowlist::from_entries(["rachel.psc.edu", "lemieux.psc.edu"]);
        assert!(list.allows("rachel.psc.edu"));
        assert!(list.allows("lemieux.psc.edu"));
        assert!(!list.allows("other.psc.edu"));
        assert_eq!(list.len(), 2);
    }

    #[test]
    fn wildcard_suffix() {
        let list = HostAllowlist::from_entries(["*.teragrid.org"]);
        assert!(list.allows("tg-login1.sdsc.teragrid.org"));
        assert!(list.allows("tg-viz-login1.uc.teragrid.org"));
        assert!(!list.allows("teragrid.org"), "bare suffix must not match");
        assert!(!list.allows("evil-teragrid.org"));
        assert!(!list.allows("tg-login1.sdsc.teragrid.org.evil.com"));
    }

    #[test]
    fn case_insensitive() {
        let list = HostAllowlist::from_entries(["Rachel.PSC.edu", "*.TeraGrid.Org"]);
        assert!(list.allows("rachel.psc.edu"));
        assert!(list.allows("RACHEL.PSC.EDU"));
        assert!(list.allows("tg-login1.ncsa.teragrid.org"));
    }

    #[test]
    fn teragrid_deployment_list() {
        // The ten Table 2 machines under one pattern set.
        let list = HostAllowlist::from_entries([
            "*.teragrid.org",
            "rachel.psc.edu",
            "lemieux.psc.edu",
            "cycle.cc.purdue.edu",
            "dslogin.sdsc.edu",
        ]);
        for host in [
            "tg-viz-login1.uc.teragrid.org",
            "tg-login2.uc.teragrid.org",
            "tg-login1.caltech.teragrid.org",
            "tg-login1.ncsa.teragrid.org",
            "rachel.psc.edu",
            "lemieux.psc.edu",
            "cycle.cc.purdue.edu",
            "tg-login.rcs.purdue.edu",
            "tg-login1.sdsc.teragrid.org",
            "dslogin.sdsc.edu",
        ] {
            // tg-login.rcs.purdue.edu is NOT covered by the patterns above.
            if host == "tg-login.rcs.purdue.edu" {
                assert!(!list.allows(host));
            } else {
                assert!(list.allows(host), "{host} should be allowed");
            }
        }
    }

    #[test]
    fn empty_entries_ignored() {
        let list = HostAllowlist::from_entries(["", "  ", "real.host.org"]);
        assert_eq!(list.len(), 1);
        assert!(list.allows("real.host.org"));
    }
}
