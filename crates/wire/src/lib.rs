//! Wire protocols between Inca components.
//!
//! Two hops carry reports in the paper's architecture (§3.1.3, §3.2.1):
//!
//! 1. **distributed controller → centralized controller**: a plain TCP
//!    connection carrying the report and its branch identifier. Here
//!    that is a length-prefixed frame ([`frame`]) around an XML client
//!    message ([`message`]).
//! 2. **centralized controller → depot**: a "Web services interface".
//!    The 2004 implementation used SOAP/Axis, and §5.2.2 measures the
//!    envelope-unpacking cost growing with report size. [`envelope`]
//!    reproduces that interface: body mode escapes and embeds the
//!    report (unpacking must unescape and re-parse it — the measured
//!    cost), while attachment mode implements the paper's proposed
//!    optimization of shipping the report as a raw attachment.
//!    [`binframe`] goes one step further than the paper: a
//!    length-prefixed binary section format whose decoder *borrows*
//!    the report bytes out of the payload (zero copy), negotiated per
//!    frame against the XML envelope by a magic byte no XML document
//!    can start with ([`EnvelopeView::decode`] handles mixed traffic).
//!
//! [`allowlist`] implements the centralized controller's host check:
//! "it checks the host against a list of hostnames to see whether it
//! should accept the connection".
//!
//! This crate is pure codec — no I/O, no clocks — which is what lets
//! the server instrument both hops: envelope-unpack time lands in the
//! `inca_depot_unpack_seconds` histogram and decode failures in
//! `inca_controller_rejected_total{reason="decode"}` (see
//! `docs/OBSERVABILITY.md` at the repository root).

pub mod allowlist;
pub mod binframe;
pub mod envelope;
pub mod frame;
pub mod message;

pub use allowlist::HostAllowlist;
pub use binframe::{
    decode_binary, encode_binary, is_binary_frame, put_section, BinaryFrame, SectionReader,
    BINARY_MAGIC, BINARY_VERSION, SECTION_ADDRESS, SECTION_REPORT, SECTION_TRACE,
};
pub use envelope::{Envelope, EnvelopeMode, EnvelopeView};
pub use frame::{read_frame, write_frame, FrameError, MAX_FRAME_LEN};
pub use message::{ClientMessage, ServerResponse, WireError};
