//! # inca-rs
//!
//! A from-scratch Rust reproduction of **"The Inca Test Harness and
//! Reporting Framework"** (Smallen et al., SC 2004): a generic system
//! for automated testing, data collection, verification and monitoring
//! of *VO service agreements*, as deployed on the 2004 TeraGrid.
//!
//! This facade crate re-exports the whole workspace under stable
//! module names. Start with [`harness::teragrid_deployment`] and
//! [`harness::SimRun`] for an end-to-end simulated deployment, or see
//! the `examples/` directory:
//!
//! ```
//! use inca::prelude::*;
//!
//! // A tiny end-to-end run: one hour of the TeraGrid-like deployment.
//! let start = Timestamp::from_gmt(2004, 7, 7, 0, 0, 0);
//! let deployment = teragrid_deployment(42, start, start + 3_600);
//! let outcome = SimRun::new(deployment, SimOptions::default()).run();
//! assert!(outcome.final_page.verified_count() > 0);
//! ```
//!
//! ## Architecture (paper §3, Figure 1)
//!
//! | Paper component | Crate |
//! |---|---|
//! | Reporter specification (header/body/footer, branch ids) | [`report`] |
//! | Reporters (version, unit, env, probes, benchmarks) | [`reporters`] |
//! | Distributed controller (cron, fork, kill, forward) | [`controller`] |
//! | Centralized controller + depot + query interface | [`server`] |
//! | Service agreements + compliance metrics | [`agreement`] |
//! | Data consumers (status pages, availability, bandwidth) | [`consumer`] |
//! | Substrates: XML, cron, RRD, wire, simulated VO | [`xml`], [`cron`], [`rrd`], [`wire`], [`sim`] |
//! | Deployments, simulation, experiments | [`harness`] |
//! | Observability: tracing spans + Prometheus metrics | [`obs`] |
//! | Self-monitoring: SLO rules, alerts, health page | [`health`] |

pub use inca_agreement as agreement;
pub use inca_consumer as consumer;
pub use inca_controller as controller;
pub use inca_core as harness;
pub use inca_cron as cron;
pub use inca_health as health;
pub use inca_obs as obs;
pub use inca_report as report;
pub use inca_reporters as reporters;
pub use inca_rrd as rrd;
pub use inca_server as server;
pub use inca_sim as sim;
pub use inca_wire as wire;
pub use inca_xml as xml;

/// Commonly-used items for quick starts.
pub mod prelude {
    pub use inca_agreement::{verify_resource, Agreement, Category, ComplianceSummary};
    pub use inca_consumer::{build_status_page, render_status_page, AvailabilityTracker};
    pub use inca_controller::{DistributedController, Spec, SpecEntry};
    pub use inca_core::{teragrid_deployment, Deployment, SimOptions, SimRun};
    pub use inca_health::{default_rules, HealthMonitor, SloRule};
    pub use inca_obs::Obs;
    pub use inca_report::{Body, BranchId, Report, ReportBuilder, Timestamp};
    pub use inca_reporters::{Reporter, ReporterContext};
    pub use inca_rrd::{ArchivePolicy, ConsolidationFn};
    pub use inca_server::{CacheBackend, CentralizedController, Depot, QueryInterface, RopeCache};
    pub use inca_sim::{ServiceKind, Vo, VoResource};
    pub use inca_wire::envelope::{Envelope, EnvelopeMode};
    pub use inca_xml::{Element, IncaPath};
}
